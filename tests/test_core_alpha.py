"""Tests for alpha selection and the predicted-core-ratio rule."""

import numpy as np
import pytest

from repro.clustering import DBSCAN
from repro.core import predicted_core_ratio, select_alpha
from repro.core.alpha import AlphaCandidate
from repro.estimators import ExactCardinalityEstimator, SamplingCardinalityEstimator
from repro.exceptions import InvalidParameterError
from repro.index import BruteForceIndex

from repro.testing import make_blobs_on_sphere


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs_on_sphere(40, 3, 16, spread=0.3, seed=0)
    return X


class TestPredictedCoreRatio:
    def test_oracle_matches_true_ratio(self, data):
        eps, tau = 0.5, 5
        index = BruteForceIndex().build(data)
        true_ratio = np.count_nonzero(
            index.range_count_many(data, eps) >= tau
        ) / data.shape[0]
        ratio = predicted_core_ratio(ExactCardinalityEstimator(), data, eps, tau)
        assert ratio == pytest.approx(true_ratio)

    def test_alpha_monotone(self, data):
        est = ExactCardinalityEstimator()
        r1 = predicted_core_ratio(est, data, 0.5, 5, alpha=1.0)
        r2 = predicted_core_ratio(est, data, 0.5, 5, alpha=2.0)
        assert r2 <= r1

    def test_range(self, data):
        ratio = predicted_core_ratio(ExactCardinalityEstimator(), data, 0.5, 5)
        assert 0.0 <= ratio <= 1.0


class TestSelectAlpha:
    def test_returns_candidate_from_grid(self, data):
        gt = DBSCAN(eps=0.5, tau=5).fit(data)
        est = SamplingCardinalityEstimator(sample_size=40, seed=0).fit(data)
        best, candidates = select_alpha(
            data, gt.labels, est, eps=0.5, tau=5, alpha_grid=(1.0, 2.0), seed=0
        )
        assert best in (1.0, 2.0)
        assert len(candidates) == 2
        assert all(isinstance(c, AlphaCandidate) for c in candidates)

    def test_oracle_alpha_one_perfect_quality(self, data):
        gt = DBSCAN(eps=0.5, tau=5).fit(data)
        _, candidates = select_alpha(
            data,
            gt.labels,
            ExactCardinalityEstimator(),
            eps=0.5,
            tau=5,
            alpha_grid=(1.0,),
            seed=0,
        )
        assert candidates[0].ari == pytest.approx(1.0)
        assert candidates[0].ami == pytest.approx(1.0)

    def test_quality_bar_falls_back_to_best_ami(self, data):
        gt = DBSCAN(eps=0.5, tau=5).fit(data)
        est = SamplingCardinalityEstimator(sample_size=40, seed=0).fit(data)
        best, candidates = select_alpha(
            data,
            gt.labels,
            est,
            eps=0.5,
            tau=5,
            alpha_grid=(50.0, 100.0),  # both destroy quality
            min_ami=0.99,
            seed=0,
        )
        best_candidate = max(candidates, key=lambda c: c.ami)
        assert best == best_candidate.alpha

    def test_empty_grid_raises(self, data):
        with pytest.raises(InvalidParameterError):
            select_alpha(
                data,
                np.zeros(data.shape[0], dtype=int),
                ExactCardinalityEstimator(),
                eps=0.5,
                tau=5,
                alpha_grid=(),
            )
