"""Property-based tests for the sharded backend's CSR merge kernels.

The kernels (:func:`rows_to_csr` / :func:`csr_to_rows` /
:func:`merge_shard_rows` / :func:`merge_knn_rows` /
:func:`shard_offsets` in :mod:`repro.index.sharded`) are the exactness
core of the sharded backend: whatever random dataset is split into
whatever random row shards, re-running the per-shard queries and merging
must reassemble *exactly* the unsharded neighbor rows — sorted, deduped,
globally indexed. Hypothesis drives the randomness; every strategy is
seeded by the shared deterministic profile, so failures replay.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import normalize_rows
from repro.index import BruteForceIndex
from repro.index.sharded import (
    concat_shard_rows,
    csr_to_rows,
    merge_knn_rows,
    merge_shard_rows,
    rows_to_csr,
    shard_offsets,
)

MAX_EXAMPLES = 40


def dataset(seed: int, n: int, dim: int) -> np.ndarray:
    return normalize_rows(np.random.default_rng(seed).normal(size=(n, dim)))


def split_rows(offsets: np.ndarray, seed: int, eps: float, X: np.ndarray):
    """Per-shard brute-force hit rows plus each shard's global start."""
    per_shard, starts = [], []
    for s in range(len(offsets) - 1):
        lo, hi = int(offsets[s]), int(offsets[s + 1])
        if hi == lo:
            continue
        shard_index = BruteForceIndex().build(X[lo:hi])
        per_shard.append(shard_index.batch_range_query(X, eps))
        starts.append(lo)
    return per_shard, starts


class TestShardOffsets:
    @given(
        n=st.integers(0, 500),
        n_shards=st.integers(1, 40),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_offsets_partition_exactly(self, n, n_shards):
        offsets = shard_offsets(n, n_shards)
        sizes = np.diff(offsets)
        assert offsets[0] == 0 and offsets[-1] == n
        assert len(sizes) == n_shards
        assert (sizes >= 0).all()
        # Balanced: shard sizes differ by at most one row.
        assert sizes.max() - sizes.min() <= 1 if n_shards else True


class TestCsrRoundtrip:
    @given(
        seed=st.integers(0, 10_000),
        n_rows=st.integers(0, 30),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_rows_to_csr_roundtrips(self, seed, n_rows):
        rng = np.random.default_rng(seed)
        rows = [
            rng.integers(0, 1000, size=rng.integers(0, 12)).astype(np.int64)
            for _ in range(n_rows)
        ]
        indptr, flat = rows_to_csr(rows)
        assert indptr.dtype == np.int64 and flat.dtype == np.int64
        assert indptr[-1] == sum(len(r) for r in rows)
        back = csr_to_rows(indptr, flat)
        assert len(back) == n_rows
        for original, restored in zip(rows, back):
            assert np.array_equal(original, restored)


class TestMergeReassemblesUnshardedRows:
    # eps is either exactly 0 or bounded away from it: a zero distance is
    # computed as exactly 0.0 by a one-row shard (GEMV) but can come out
    # ~1e-16 from the full-matrix GEMM (different reduction order), so an
    # eps *inside that sub-ulp band* legitimately classifies the pair
    # differently per path. Real eps values are nowhere near 1e-15.
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 60),
        dim=st.integers(2, 8),
        n_shards=st.integers(1, 12),
        eps=st.one_of(st.just(0.0), st.floats(1e-6, 1.5)),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_random_contiguous_splits(self, seed, n, dim, n_shards, eps):
        X = dataset(seed, n, dim)
        expected = BruteForceIndex().build(X).batch_range_query(X, eps)
        per_shard, starts = split_rows(shard_offsets(n, n_shards), seed, eps, X)
        merged = merge_shard_rows(per_shard, starts, n_queries=n)
        assert len(merged) == n
        for got, exp in zip(merged, expected):
            assert np.array_equal(got, np.sort(exp))
            # Sorted and deduplicated by construction of the kernel.
            assert np.array_equal(got, np.unique(got))
        # The hot-path kernel (no sort/dedup) agrees on disjoint sorted
        # shards — the shape ShardedIndex always produces.
        fast = concat_shard_rows(per_shard, starts, n_queries=n)
        for got, exp in zip(fast, merged):
            assert np.array_equal(got, exp)

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 40),
        n_shards=st.integers(1, 8),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_uneven_random_cut_points(self, seed, n, n_shards):
        """Arbitrary (not balanced) contiguous cuts reassemble too."""
        rng = np.random.default_rng(seed)
        X = dataset(seed + 1, n, 6)
        eps = 0.8
        cuts = np.sort(rng.integers(0, n + 1, size=n_shards - 1))
        offsets = np.concatenate([[0], cuts, [n]]).astype(np.int64)
        expected = BruteForceIndex().build(X).batch_range_query(X, eps)
        per_shard, starts = split_rows(offsets, seed, eps, X)
        merged = merge_shard_rows(per_shard, starts, n_queries=n)
        for got, exp in zip(merged, expected):
            assert np.array_equal(got, np.sort(exp))

    @given(seed=st.integers(0, 10_000), n_queries=st.integers(0, 20))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_overlapping_shards_deduplicate(self, seed, n_queries):
        """The kernel's dedup guarantee holds for overlapping splits."""
        rng = np.random.default_rng(seed)
        rows_a = [
            rng.integers(0, 15, size=rng.integers(0, 8)).astype(np.int64)
            for _ in range(n_queries)
        ]
        rows_b = [
            rng.integers(0, 15, size=rng.integers(0, 8)).astype(np.int64)
            for _ in range(n_queries)
        ]
        # Both "shards" start at global row 0: maximal overlap.
        merged = merge_shard_rows([rows_a, rows_b], [0, 0], n_queries=n_queries)
        for got, a, b in zip(merged, rows_a, rows_b):
            assert np.array_equal(got, np.unique(np.concatenate([a, b])))

    def test_no_shards_yields_empty_rows(self):
        merged = merge_shard_rows([], [], n_queries=3)
        assert [r.size for r in merged] == [0, 0, 0]
        idx_rows, dist_rows = merge_knn_rows([], [], [], k=4, n_queries=2)
        assert [r.size for r in idx_rows] == [0, 0]
        assert [r.size for r in dist_rows] == [0, 0]


class TestKnnMerge:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 50),
        n_shards=st.integers(1, 8),
        k=st.integers(1, 12),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_per_shard_candidate_merge_is_global_topk(self, seed, n, n_shards, k):
        X = dataset(seed, n, 6)
        n_queries = min(n, 10)
        Q = X[:n_queries]
        offsets = shard_offsets(n, n_shards)
        per_shard_idx, per_shard_dist, starts = [], [], []
        for s in range(n_shards):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            if hi == lo:
                continue
            index = BruteForceIndex().build(X[lo:hi])
            idx_rows, dist_rows = index.batch_knn_query(Q, min(k, hi - lo))
            per_shard_idx.append(idx_rows)
            per_shard_dist.append(dist_rows)
            starts.append(lo)
        got_idx, got_dist = merge_knn_rows(
            per_shard_idx, per_shard_dist, starts, k, n_queries=n_queries
        )
        # Reference: full distance rows, ordered by (distance, index).
        dists = np.maximum(0.0, 1.0 - Q @ X.T)
        for i in range(n_queries):
            order = np.lexsort((np.arange(n), dists[i]))[:k]
            assert np.array_equal(got_idx[i], order), i
            np.testing.assert_allclose(got_dist[i], dists[i][order], atol=1e-12)
