"""Tests for the registry facade and the legacy-kwarg deprecation shims.

Two contracts:

* ``make_clusterer`` / ``repro.cluster`` build every registered
  algorithm by name and thread one ``ExecutionConfig`` through it;
* the removed legacy spellings (``index_factory=``, ``batch_queries=``,
  ``sharded_queries(...)``, ``set_sharding(...)``) each raise a typed
  :class:`~repro.exceptions.RemovedAPIError` naming the first-class
  ``ExecutionConfig`` replacement.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro import ExecutionConfig, IndexSpec, ShardingConfig, cluster, make_clusterer
from repro.clustering import (
    DBSCAN,
    BlockDBSCAN,
    DBSCANPlusPlus,
    KNNBlockDBSCAN,
    RhoApproxDBSCAN,
)
from repro.core import LAFDBSCAN, LAFDBSCANPlusPlus
from repro.estimators import ExactCardinalityEstimator
from repro.exceptions import InvalidParameterError, RemovedAPIError
from repro.index import CoverTree, sharded_queries

EPS = 0.5
TAU = 4


def _deprecation_count(record) -> int:
    return sum(issubclass(w.category, DeprecationWarning) for w in record)


class TestMakeClusterer:
    @pytest.mark.parametrize(
        "name,cls,params",
        [
            ("dbscan", DBSCAN, {}),
            ("dbscan++", DBSCANPlusPlus, {"p": 0.5, "seed": 0}),
            ("knn-block", KNNBlockDBSCAN, {"seed": 0}),
            ("block-dbscan", BlockDBSCAN, {}),
            ("rho-approx", RhoApproxDBSCAN, {"rho": 1.0}),
            ("laf-dbscan", LAFDBSCAN, {"estimator": ExactCardinalityEstimator()}),
            (
                "laf-dbscan++",
                LAFDBSCANPlusPlus,
                {"estimator": ExactCardinalityEstimator(), "p": 0.5},
            ),
        ],
    )
    def test_builds_every_registered_clusterer(self, name, cls, params):
        clusterer = make_clusterer(name, eps=EPS, tau=TAU, **params)
        assert isinstance(clusterer, cls)

    def test_names_are_case_insensitive(self):
        assert isinstance(
            make_clusterer("DBSCAN++", eps=EPS, tau=TAU, p=0.5), DBSCANPlusPlus
        )

    def test_aliases_resolve(self):
        assert isinstance(
            make_clusterer("dbscanpp", eps=EPS, tau=TAU, p=0.5), DBSCANPlusPlus
        )

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidParameterError, match="unknown clusterer"):
            make_clusterer("optics", eps=EPS, tau=TAU)

    def test_execution_threads_through(self):
        cfg = ExecutionConfig(batch_queries=False)
        clusterer = make_clusterer("dbscan", eps=EPS, tau=TAU, execution=cfg)
        assert clusterer.execution is cfg

    def test_clusterer_names_lists_the_registry(self):
        assert "dbscan" in repro.clusterer_names()
        assert "laf-dbscan++" in repro.clusterer_names()


class TestClusterFacade:
    def test_one_call_matches_direct_fit(self, clusterable_data):
        direct = DBSCAN(eps=EPS, tau=TAU).fit(clusterable_data)
        result = cluster(clusterable_data, algo="dbscan", eps=EPS, tau=TAU)
        assert np.array_equal(direct.labels, result.labels)

    def test_execution_reaches_the_fit(self, clusterable_data):
        result = cluster(
            clusterable_data,
            algo="dbscan",
            eps=EPS,
            tau=TAU,
            execution=ExecutionConfig(sharding=ShardingConfig(n_shards=3)),
        )
        assert result.stats["shard_live_shards"] == 3
        assert result.stats["shard_inner_builds"] == 3

    def test_laf_method_with_estimator(self, clusterable_data):
        result = cluster(
            clusterable_data,
            algo="laf-dbscan",
            eps=EPS,
            tau=TAU,
            estimator=ExactCardinalityEstimator(),
        )
        baseline = DBSCAN(eps=EPS, tau=TAU).fit(clusterable_data)
        assert np.array_equal(result.labels, baseline.labels)


class TestEngineRoutedSharding:
    """Every engine-routed clusterer honors ExecutionConfig.sharding."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda e: DBSCAN(eps=EPS, tau=TAU, execution=e),
            lambda e: DBSCANPlusPlus(eps=EPS, tau=TAU, p=0.5, seed=0, execution=e),
            lambda e: BlockDBSCAN(eps=EPS, tau=TAU, execution=e),
            lambda e: RhoApproxDBSCAN(eps=EPS, tau=TAU, rho=1.0, execution=e),
            lambda e: LAFDBSCAN(
                eps=EPS,
                tau=TAU,
                estimator=ExactCardinalityEstimator(),
                seed=0,
                execution=e,
            ),
            lambda e: LAFDBSCANPlusPlus(
                eps=EPS,
                tau=TAU,
                estimator=ExactCardinalityEstimator(),
                p=0.5,
                seed=0,
                execution=e,
            ),
        ],
        ids=["dbscan", "dbscan++", "block", "rho", "laf", "laf++"],
    )
    def test_sharded_fit_matches_default(self, factory, clusterable_data):
        baseline = factory(None).fit(clusterable_data)
        sharded = factory(ExecutionConfig(sharding=ShardingConfig(n_shards=3))).fit(
            clusterable_data
        )
        assert np.array_equal(baseline.labels, sharded.labels)
        assert sharded.stats["shard_live_shards"] == 3


class TestRemovedLegacyAPI:
    """The PR 5 deprecation shims completed their cycle: typed errors now.

    Every removed spelling raises :class:`RemovedAPIError` (a
    ``TypeError``) whose message names the first-class replacement.
    """

    def test_index_factory_raises_pointing_at_index_spec(self):
        with pytest.raises(RemovedAPIError, match=r"IndexSpec"):
            DBSCAN(eps=EPS, tau=TAU, index_factory=lambda: CoverTree(base=1.8))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda **kw: DBSCAN(eps=EPS, tau=TAU, **kw),
            lambda **kw: DBSCANPlusPlus(eps=EPS, tau=TAU, p=0.5, seed=0, **kw),
            lambda **kw: BlockDBSCAN(eps=EPS, tau=TAU, **kw),
            lambda **kw: RhoApproxDBSCAN(eps=EPS, tau=TAU, rho=1.0, **kw),
            lambda **kw: LAFDBSCAN(
                eps=EPS, tau=TAU, estimator=ExactCardinalityEstimator(), seed=0, **kw
            ),
            lambda **kw: LAFDBSCANPlusPlus(
                eps=EPS,
                tau=TAU,
                estimator=ExactCardinalityEstimator(),
                p=0.5,
                seed=0,
                **kw,
            ),
        ],
        ids=["dbscan", "dbscan++", "block", "rho", "laf", "laf++"],
    )
    def test_batch_queries_kwarg_raises_on_every_clusterer(self, factory):
        with pytest.raises(RemovedAPIError, match=r"ExecutionConfig\(batch_queries"):
            factory(batch_queries=False)

    def test_default_valued_batch_queries_still_raises(self):
        # The removal keys on the kwarg being *passed*, not its value.
        with pytest.raises(RemovedAPIError, match="batch_queries"):
            DBSCAN(eps=EPS, tau=TAU, batch_queries=True)

    def test_removed_api_error_is_a_type_error(self):
        # Callers that guarded the legacy kwargs with ``except TypeError``
        # (the natural guard for a gone kwarg) keep working.
        with pytest.raises(TypeError):
            DBSCAN(eps=EPS, tau=TAU, batch_queries=True)

    def test_modern_construction_does_not_warn(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            DBSCAN(eps=EPS, tau=TAU, execution=ExecutionConfig(batch_queries=False))
        assert _deprecation_count(record) == 0

    def test_sharded_queries_raises_pointing_at_execution_config(self):
        with pytest.raises(RemovedAPIError, match="ExecutionConfig"):
            with sharded_queries(n_shards=3):
                pass

    def test_set_sharding_raises_pointing_at_execution_config(self):
        from repro.index import set_sharding

        with pytest.raises(RemovedAPIError, match="ExecutionConfig"):
            set_sharding(ShardingConfig(n_shards=3))

    def test_sharding_config_probe_reports_no_ambient_state(self):
        # The read-side probe stays importable for old diagnostics code
        # and truthfully answers that no ambient scope can exist anymore.
        from repro.index import sharding_config

        assert sharding_config() is None

    def test_explicit_sharding_false_stays_first_class(self, clusterable_data):
        # sharding=False remains the explicit opt-out (recorded on the
        # wire); with the ambient shim gone it behaves like the default.
        default = DBSCAN(eps=EPS, tau=TAU).fit(clusterable_data)
        opted_out = DBSCAN(
            eps=EPS, tau=TAU, execution=ExecutionConfig(sharding=False)
        ).fit(clusterable_data)
        assert "shard_live_shards" not in opted_out.stats
        assert np.array_equal(default.labels, opted_out.labels)


class TestExecutionResolution:
    def test_euclidean_metric_threads_into_named_brute_force(self):
        """A named spec must not silently drop the clusterer's metric."""
        rng = np.random.default_rng(3)
        X = rng.normal(size=(120, 6))
        default = DBSCAN(eps=0.8, tau=3, metric="euclidean").fit(X)
        spec = DBSCAN(
            eps=0.8,
            tau=3,
            metric="euclidean",
            execution=ExecutionConfig(index=IndexSpec("brute_force")),
        ).fit(X)
        assert np.array_equal(default.labels, spec.labels)
        assert np.array_equal(default.core_mask, spec.core_mask)

    def test_explicit_matching_metric_kwarg_accepted(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(120, 6))
        default = DBSCAN(eps=0.8, tau=3, metric="euclidean").fit(X)
        spec = DBSCAN(
            eps=0.8,
            tau=3,
            metric="euclidean",
            execution=ExecutionConfig(
                index=IndexSpec("brute_force", {"metric": "euclidean"})
            ),
        ).fit(X)
        assert np.array_equal(default.labels, spec.labels)

    def test_contradictory_metric_kwarg_rejected(self):
        # A cosine clusterer with a euclidean brute-force spec must not
        # silently cluster in the wrong metric.
        clusterer = DBSCAN(
            eps=0.5,
            tau=3,
            execution=ExecutionConfig(
                index=IndexSpec("brute_force", {"metric": "euclidean"})
            ),
        )
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 6))
        X /= np.linalg.norm(X, axis=1, keepdims=True)
        with pytest.raises(InvalidParameterError, match="contradicts"):
            clusterer.fit(X)

    def test_ground_truth_ignores_index_override(self, clusterable_data):
        # The reference run must stay exact even when the suite's
        # execution names an approximate backend.
        from repro.experiments.runner import ground_truth

        exact = ground_truth(clusterable_data, EPS, TAU)
        overridden = ground_truth(
            clusterable_data,
            EPS,
            TAU,
            execution=ExecutionConfig(
                index=IndexSpec("kmeans_tree", {"checks_ratio": 0.05, "seed": 0}),
                sharding=ShardingConfig(n_shards=2),
            ),
        )
        assert np.array_equal(exact.labels, overridden.labels)
        # The exactness-preserving knobs still apply (it ran sharded).
        assert overridden.stats["shard_live_shards"] == 2

    def test_cosine_tied_backend_rejected_under_euclidean(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 6))
        clusterer = DBSCAN(
            eps=0.8,
            tau=3,
            metric="euclidean",
            execution=ExecutionConfig(index=IndexSpec("cover_tree")),
        )
        with pytest.raises(InvalidParameterError, match="cosine"):
            clusterer.fit(X)

    def test_sharding_with_per_point_path_rejected(self):
        with pytest.raises(InvalidParameterError, match="batched engine"):
            ExecutionConfig(batch_queries=False, sharding=ShardingConfig(n_shards=4))

    def test_engine_block_default_matches_cache_default(self):
        from repro.engine_config import DEFAULT_ENGINE_BLOCK
        from repro.index.engine import DEFAULT_QUERY_BLOCK

        assert DEFAULT_ENGINE_BLOCK == DEFAULT_QUERY_BLOCK
