"""Property-based round-trip tests for index persistence.

The persistence contract is *bit identity*: for every backend and every
query form, ``load(save(index))`` must answer exactly what the original
answered — same indices, same distances, down to the last ulp — because
a worker reattaching a shard artifact must be indistinguishable from the
process that built it. Hypothesis drives random datasets across all four
inner backends, sharded and unsharded, including the awkward cases:
``eps=0`` (strict ``<`` yields no self-hits), duplicated points, empty
query batches, and single-point datasets.

(The tree and grid backends cannot build an *empty* dataset — their
constructors need at least one point — so ``n >= 1`` throughout; the
empty-batch case covers the zero-query direction instead.)
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import normalize_rows
from repro.exceptions import NotFittedError
from repro.index import BruteForceIndex, CoverTree, KMeansTree
from repro.index.base import NeighborIndex
from repro.index.grid import GridIndex
from repro.index.sharded import ShardedIndex
from repro.persistence import load_index, save_index

MAX_EXAMPLES = 40

#: name -> (constructor, supports knn)
BACKENDS = {
    "brute_force": (lambda: BruteForceIndex(), True),
    "cover_tree": (lambda: CoverTree(), True),
    "kmeans_tree": (lambda: KMeansTree(seed=0), True),
    "grid": (lambda: GridIndex(eps=0.4), False),
}


def dataset(seed: int, n: int, dim: int, dup: bool) -> np.ndarray:
    X = normalize_rows(np.random.default_rng(seed).normal(size=(n, dim)))
    if dup and n > 1:
        X[n // 2] = X[0]  # exact duplicate rows
    return X


def is_memory_mapped(arr) -> bool:
    """Whether ``arr`` is (a view of) a ``np.memmap``.

    ``np.asarray`` on a memmap returns a plain ``ndarray`` view whose
    ``.base`` chain ends at the map — still zero-copy.
    """
    while arr is not None:
        if isinstance(arr, np.memmap):
            return True
        arr = arr.base
    return False


def assert_rows_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def assert_identical_answers(original, loaded, Q, eps, knn):
    assert_rows_equal(
        original.batch_range_query(Q, eps), loaded.batch_range_query(Q, eps)
    )
    assert np.array_equal(
        original.batch_range_count(Q, eps), loaded.batch_range_count(Q, eps)
    )
    if knn:
        ai, ad = original.batch_knn_query(Q, 4)
        bi, bd = loaded.batch_knn_query(Q, 4)
        assert_rows_equal(ai, bi)
        assert_rows_equal(ad, bd)  # distances bit-identical too
    empty = np.empty((0, Q.shape[1]))
    assert loaded.batch_range_query(empty, eps) == []
    assert loaded.batch_range_count(empty, eps).size == 0


@pytest.mark.parametrize("name", sorted(BACKENDS))
class TestInnerBackendRoundTrip:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 120),
        dim=st.integers(2, 24),
        eps=st.sampled_from([0.0, 0.05, 0.4, 1.2]),
        dup=st.booleans(),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_bit_identical_queries(
        self, name, tmp_path_factory, seed, n, dim, eps, dup
    ):
        make, knn = BACKENDS[name]
        X = dataset(seed, n, dim, dup)
        Q = dataset(seed + 1, min(n, 17), dim, dup=False)
        original = make().build(X)
        path = tmp_path_factory.mktemp("artifact") / name
        save_index(original, path)
        loaded = load_index(path)
        assert type(loaded) is type(original)
        assert_identical_answers(original, loaded, Q, eps, knn)
        # Queries drawn from the indexed points themselves (self-hits,
        # duplicates) must round-trip too.
        assert_identical_answers(original, loaded, X[: min(n, 8)], eps, knn)

    def test_loaded_points_are_memory_mapped(self, name, tmp_path):
        make, _ = BACKENDS[name]
        X = dataset(3, 40, 8, dup=False)
        path = tmp_path / name
        save_index(make().build(X), path)
        loaded = load_index(path)
        assert is_memory_mapped(loaded.points)
        assert not loaded.points.flags.writeable
        loaded_copy = load_index(path, mmap=False)
        assert not is_memory_mapped(loaded_copy.points)

    def test_unbuilt_index_refuses_to_save(self, name, tmp_path):
        make, _ = BACKENDS[name]
        with pytest.raises(NotFittedError):
            save_index(make(), tmp_path / name)


class TestShardedRoundTrip:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 120),
        dim=st.integers(2, 16),
        n_shards=st.integers(1, 6),
        inner=st.sampled_from(sorted(BACKENDS)),
        executor=st.sampled_from(["serial", "thread"]),
        eps=st.sampled_from([0.0, 0.4, 1.2]),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_bit_identical_queries(
        self, tmp_path_factory, seed, n, dim, n_shards, inner, executor, eps
    ):
        inner_kwargs = {"eps": 0.4} if inner == "grid" else None
        X = dataset(seed, n, dim, dup=False)
        Q = dataset(seed + 1, min(n, 13), dim, dup=False)
        original = ShardedIndex(
            inner=inner,
            inner_kwargs=inner_kwargs,
            n_shards=n_shards,
            executor=executor,
        ).build(X)
        path = tmp_path_factory.mktemp("artifact") / "sharded"
        save_index(original, path)
        loaded = load_index(path)
        assert isinstance(loaded, ShardedIndex)
        assert loaded.n_live_shards == original.n_live_shards
        knn = inner != "grid"
        assert_identical_answers(original, loaded, Q, eps, knn)
        original.close()
        loaded.close()

    def test_points_stored_once_and_mmapped(self, tmp_path):
        X = dataset(7, 60, 8, dup=False)
        original = ShardedIndex(n_shards=4).build(X)
        path = tmp_path / "sharded"
        save_index(original, path)
        # One top-level points.npy; shard artifacts hold no point copies.
        assert (path / "points.npy").is_file()
        for shard_dir in sorted((path / "shards").iterdir()):
            assert not (shard_dir / "points.npy").exists()
        loaded = load_index(path)
        assert is_memory_mapped(loaded.points)
        # Each shard's slice views the same memory map — never a copy.
        shard = loaded.shard_indexes()[0]
        assert is_memory_mapped(shard.points)
        original.close()
        loaded.close()

    def test_save_load_via_index_methods(self, tmp_path):
        X = dataset(9, 30, 6, dup=False)
        original = ShardedIndex(n_shards=2).build(X)
        original.save(tmp_path / "s")
        loaded = ShardedIndex.load(tmp_path / "s")
        assert isinstance(loaded, ShardedIndex)
        assert_rows_equal(
            original.batch_range_query(X, 0.4), loaded.batch_range_query(X, 0.4)
        )
        original.close()
        loaded.close()


class TestLoadClassmethodTyping:
    def test_base_class_loads_any_kind(self, tmp_path):
        X = dataset(1, 20, 6, dup=False)
        CoverTree().build(X).save(tmp_path / "ct")
        assert isinstance(NeighborIndex.load(tmp_path / "ct"), CoverTree)

    def test_concrete_class_rejects_other_kind(self, tmp_path):
        from repro.exceptions import PersistenceError

        X = dataset(1, 20, 6, dup=False)
        CoverTree().build(X).save(tmp_path / "ct")
        with pytest.raises(PersistenceError, match="CoverTree"):
            BruteForceIndex.load(tmp_path / "ct")
