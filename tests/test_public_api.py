"""Contract tests for the top-level public API.

A downstream user should be able to rely on ``repro``'s exports and the
documented object protocols without importing submodules.
"""

import inspect

import numpy as np

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_clusterers_exported(self):
        for name in (
            "DBSCAN",
            "DBSCANPlusPlus",
            "KNNBlockDBSCAN",
            "BlockDBSCAN",
            "RhoApproxDBSCAN",
            "LAFDBSCAN",
            "LAFDBSCANPlusPlus",
        ):
            assert inspect.isclass(getattr(repro, name))

    def test_estimators_exported(self):
        for name in (
            "RMICardinalityEstimator",
            "MLPRegressor",
            "ExactCardinalityEstimator",
            "SamplingCardinalityEstimator",
            "KDECardinalityEstimator",
            "RadialHistogramEstimator",
        ):
            assert inspect.isclass(getattr(repro, name))

    def test_metrics_exported(self):
        labels = np.array([0, 0, 1, 1])
        assert repro.adjusted_rand_index(labels, labels) == 1.0
        assert repro.adjusted_mutual_info(labels, labels) == 1.0
        assert repro.noise_ratio(np.array([-1, 0])) == 0.5

    def test_exception_hierarchy(self):
        assert issubclass(repro.InvalidParameterError, repro.ReproError)
        assert issubclass(repro.DataValidationError, repro.ReproError)
        assert issubclass(repro.NotFittedError, repro.ReproError)
        assert issubclass(repro.InvalidParameterError, ValueError)
        assert issubclass(repro.NotFittedError, RuntimeError)


class TestClustererProtocol:
    """Every exported clusterer honors the Clusterer contract."""

    def _instances(self):
        oracle = repro.ExactCardinalityEstimator()
        yield repro.DBSCAN(eps=0.5, tau=3)
        yield repro.DBSCANPlusPlus(eps=0.5, tau=3, p=0.5, seed=0)
        yield repro.KNNBlockDBSCAN(eps=0.5, tau=3, seed=0)
        yield repro.BlockDBSCAN(eps=0.5, tau=3)
        yield repro.RhoApproxDBSCAN(eps=0.5, tau=3, rho=0.5)
        yield repro.LAFDBSCAN(eps=0.5, tau=3, estimator=oracle)
        yield repro.LAFDBSCANPlusPlus(eps=0.5, tau=3, estimator=oracle, p=0.5)

    def test_fit_returns_clustering_result(self, unit_vectors_small):
        for clusterer in self._instances():
            result = clusterer.fit(unit_vectors_small)
            assert isinstance(result, repro.ClusteringResult), type(clusterer)
            assert result.labels.shape == (unit_vectors_small.shape[0],)
            assert result.labels.dtype == np.int64

    def test_labels_are_canonical_and_bounded(self, unit_vectors_small):
        for clusterer in self._instances():
            result = clusterer.fit(unit_vectors_small)
            labels = result.labels
            assert labels.min() >= -1
            non_noise = np.unique(labels[labels >= 0])
            assert list(non_noise) == list(range(len(non_noise))), type(clusterer)

    def test_fit_predict_shortcut(self, unit_vectors_small):
        labels = repro.DBSCAN(eps=0.5, tau=3).fit_predict(unit_vectors_small)
        assert labels.shape == (unit_vectors_small.shape[0],)


class TestDocstrings:
    """Every public class and function carries a docstring."""

    def test_public_objects_documented(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_modules_documented(self):
        import importlib
        import pkgutil

        missing = []
        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"
