"""Regression tests for the violations reprolint surfaced on first run.

Each test pins one fix: frozen public registries (RPL003), pickle-free
estimator persistence (RPL002), and the loud BLAS-pinning fallback that
replaced two silently-swallowed exception handlers (RPL007).
"""

from __future__ import annotations

import sys
import types

import numpy as np
import pytest

from repro.api import CLUSTERERS
from repro.data.datasets import DATASET_SPECS
from repro.estimators.mlp import MLPRegressor, _reject_object_arrays
from repro.exceptions import PersistenceError
from repro.index import sharded as _sharded
from repro.remote import worker as _worker


class TestFrozenRegistries:
    def test_clusterer_registry_is_read_only(self):
        with pytest.raises(TypeError):
            CLUSTERERS["rogue"] = object  # type: ignore[index]

    def test_dataset_registry_is_read_only(self):
        with pytest.raises(TypeError):
            DATASET_SPECS["rogue"] = None  # type: ignore[index]

    def test_registries_still_resolve(self):
        assert "dbscan" in CLUSTERERS
        assert "MS-50k" in DATASET_SPECS


class TestPickleFreePersistence:
    def test_object_arrays_rejected_before_savez(self):
        arrays = {"w": np.array([{"nested": "dict"}], dtype=object)}
        with pytest.raises(PersistenceError, match="object-dtype"):
            _reject_object_arrays(arrays)

    def test_numeric_arrays_accepted(self):
        _reject_object_arrays({"w": np.zeros((2, 2)), "b": np.arange(3)})

    def test_mlp_roundtrip_survives_allow_pickle_false(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(64, 5))
        y = X.sum(axis=1)
        model = MLPRegressor(hidden_layers=(8,), epochs=2, seed=0).fit(X, y)
        path = tmp_path / "mlp.npz"
        model.save(str(path))
        restored = MLPRegressor.load(str(path))
        np.testing.assert_allclose(restored.predict(X), model.predict(X))

    def test_load_rejects_pickled_payload(self, tmp_path):
        """A tampered artifact with a pickled array must not deserialize."""
        path = tmp_path / "evil.npz"
        np.savez(
            path,
            hidden_layers=np.array([8], dtype=np.int64),
            feature_mean=np.array([{"payload": "pickled"}], dtype=object),
            feature_std=np.ones(5),
            W0=np.zeros((5, 8)),
            b0=np.zeros(8),
            W1=np.zeros((8, 1)),
            b1=np.zeros(1),
        )
        with pytest.raises(ValueError, match="pickle"):
            MLPRegressor.load(str(path))


class TestBlasPinningFallback:
    def test_missing_threadpoolctl_returns_none(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "threadpoolctl", None)
        assert _sharded._pin_blas_single_thread() is None

    def test_broken_threadpoolctl_warns_instead_of_swallowing(self, monkeypatch):
        fake = types.ModuleType("threadpoolctl")

        def _boom(limits):
            raise RuntimeError("no BLAS found")

        fake.threadpool_limits = _boom
        monkeypatch.setitem(sys.modules, "threadpoolctl", fake)
        with pytest.warns(RuntimeWarning, match="could not pin BLAS"):
            assert _sharded._pin_blas_single_thread() is None

    def test_working_threadpoolctl_returns_limiter(self, monkeypatch):
        fake = types.ModuleType("threadpoolctl")
        sentinel = object()
        fake.threadpool_limits = lambda limits: sentinel
        monkeypatch.setitem(sys.modules, "threadpoolctl", fake)
        assert _sharded._pin_blas_single_thread() is sentinel

    def test_remote_worker_delegates_to_shared_helper(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            _sharded, "_pin_blas_single_thread", lambda: calls.append(1)
        )
        _worker._pin_blas()
        assert calls == [1]
