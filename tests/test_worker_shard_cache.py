"""Worker-side shard-cache bounds: LRU eviction, pinning, rebuild proof.

A long-lived warm worker caches every shard index it ever builds; the
``max_cached_shards`` / ``max_cached_bytes`` caps bound that cache with
LRU eviction. The contracts under test:

* eviction follows **recency of attach**, never touches an entry pinned
  by an in-flight query, and closes victims outside the holder lock;
* ``n_evictions`` / ``cached_bytes`` in :meth:`ShardHolder.stats` make
  the cache observable, and an evicted shard is simply rebuilt (and
  counted) on its next attach;
* end to end, a capped pool still produces **bit-identical** labels —
  eviction costs rebuilds (``shard_inner_builds > 0`` on a refit that
  would be free under an unbounded cache), never correctness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import DBSCAN
from repro.engine_config import ExecutionConfig
from repro.exceptions import InvalidParameterError
from repro.index.sharded import ShardingConfig
from repro.remote.pool import WorkerPool
from repro.remote.worker import ShardHolder
from repro.testing import make_blobs_on_sphere

EPS = 0.55
TAU = 4

FINGERPRINT = "test-dataset-fingerprint"


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    X, _ = make_blobs_on_sphere(20, 3, 10, spread=0.2, seed=7)
    return X


def shard_spec(shard_id: int, lo: int, hi: int) -> dict:
    return {
        "dataset": FINGERPRINT,
        "artifact": None,
        "inner": "brute_force",
        "inner_kwargs": {},
        "shard_id": shard_id,
        "lo": lo,
        "hi": hi,
    }


def holder_with_data(data: np.ndarray, **caps) -> ShardHolder:
    holder = ShardHolder(**caps)
    holder.put_dataset(FINGERPRINT, data)
    return holder


class TestShardHolderLRU:
    def test_unbounded_by_default(self, data):
        holder = holder_with_data(data)
        for i in range(4):
            holder.attach(shard_spec(i, i * 10, (i + 1) * 10))
        stats = holder.stats()
        assert stats["indexes"] == 4
        assert stats["evictions"] == 0
        assert stats["cached_bytes"] > 0

    def test_cap_evicts_least_recently_attached(self, data):
        holder = holder_with_data(data, max_cached_shards=2)
        a, b, c = (shard_spec(i, i * 10, (i + 1) * 10) for i in range(3))
        holder.attach(a)
        holder.attach(b)
        # Touch a: it becomes most-recent, so admitting c must evict b.
        _, rebuilt = holder.attach(a)
        assert not rebuilt
        holder.attach(c)
        assert holder.stats()["evictions"] == 1
        assert holder.stats()["indexes"] == 2
        _, rebuilt_a = holder.attach(a)
        _, rebuilt_b = holder.attach(b)
        assert not rebuilt_a  # survived as most-recent
        assert rebuilt_b  # was the LRU victim, rebuilt on re-attach

    def test_pinned_entries_survive_overshoot(self, data):
        holder = holder_with_data(data, max_cached_shards=1)
        a = shard_spec(0, 0, 10)
        b = shard_spec(1, 10, 20)
        with holder.acquire(a):
            # a is pinned by the in-flight query: admitting b overshoots
            # the cap, and the only evictable entry is b itself.
            holder.attach(b)
            assert holder.stats()["evictions"] == 1
            _, rebuilt = holder.attach(a)
            assert not rebuilt
        # Unpinned now: the next admission may finally evict a.
        holder.attach(b)
        assert holder.stats()["indexes"] == 1
        _, rebuilt = holder.attach(a)
        assert rebuilt

    def test_nested_pins_require_matching_releases(self, data):
        holder = holder_with_data(data, max_cached_shards=1)
        a = shard_spec(0, 0, 10)
        b = shard_spec(1, 10, 20)
        with holder.acquire(a), holder.acquire(a):
            pass  # inner release must not unpin the outer hold early
        holder.attach(b)
        _, rebuilt = holder.attach(a)
        assert rebuilt  # fully released => evictable

    def test_bytes_cap(self, data):
        one_shard_bytes = data[:10].astype(np.float64).nbytes
        holder = holder_with_data(
            data, max_cached_bytes=int(one_shard_bytes * 1.5)
        )
        holder.attach(shard_spec(0, 0, 10))
        assert holder.stats()["cached_bytes"] == one_shard_bytes
        holder.attach(shard_spec(1, 10, 20))
        stats = holder.stats()
        assert stats["evictions"] == 1
        assert stats["indexes"] == 1
        assert stats["cached_bytes"] == one_shard_bytes

    def test_caps_validated(self):
        with pytest.raises(InvalidParameterError, match="max_cached_shards"):
            ShardHolder(max_cached_shards=0)
        with pytest.raises(InvalidParameterError, match="max_cached_bytes"):
            ShardHolder(max_cached_bytes=0)


class TestCappedPoolEndToEnd:
    def test_capped_pool_bit_identical_and_rebuilds(self, data):
        serial = DBSCAN(eps=EPS, tau=TAU).fit(data)
        with WorkerPool.spawn_local(1, max_cached_shards=1) as pool:
            execution = ExecutionConfig(
                sharding=ShardingConfig(
                    n_shards=3, executor=pool.executor_spec()
                )
            )
            first = DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
            second = DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
        assert np.array_equal(first.labels, serial.labels)
        assert np.array_equal(second.labels, serial.labels)
        # With three shards funneled through a one-slot cache, the refit
        # cannot ride the warm path an unbounded worker would give for
        # free (the warm-reuse suite proves that baseline is zero).
        assert second.stats["shard_inner_builds"] > 0
