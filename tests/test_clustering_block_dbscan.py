"""Tests for BLOCK-DBSCAN."""

import numpy as np
import pytest

from repro.clustering import DBSCAN, BlockDBSCAN
from repro.exceptions import InvalidParameterError
from repro.index import BruteForceIndex
from repro.metrics import adjusted_rand_index


class TestParameters:
    def test_invalid_rnt(self):
        with pytest.raises(InvalidParameterError):
            BlockDBSCAN(eps=0.5, tau=3, rnt=0)

    def test_invalid_base_propagates(self):
        with pytest.raises(InvalidParameterError):
            BlockDBSCAN(eps=0.5, tau=3, base=1.0).fit(np.eye(3))


class TestCorrectness:
    def test_blobs_match_dbscan(self, blob_data):
        X, _ = blob_data
        eps, tau = 0.5, 4
        exact = DBSCAN(eps=eps, tau=tau).fit(X)
        block = BlockDBSCAN(eps=eps, tau=tau).fit(X)
        assert adjusted_rand_index(exact.labels, block.labels) > 0.95

    def test_clusterable_close_to_dbscan(self, clusterable_data):
        eps, tau = 0.5, 5
        exact = DBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        block = BlockDBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        assert adjusted_rand_index(exact.labels, block.labels) > 0.9

    def test_core_claims_are_sound(self, clusterable_data):
        eps, tau = 0.5, 5
        block = BlockDBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        index = BruteForceIndex().build(clusterable_data)
        counts = index.range_count_many(clusterable_data, eps)
        claimed = np.flatnonzero(block.core_mask)
        assert (counts[claimed] >= tau).all()

    @pytest.mark.parametrize("base", [1.3, 2.0, 4.0])
    def test_base_sweep_all_correct_on_blobs(self, blob_data, base):
        X, _ = blob_data
        exact = DBSCAN(eps=0.5, tau=4).fit(X)
        block = BlockDBSCAN(eps=0.5, tau=4, base=base).fit(X)
        assert adjusted_rand_index(exact.labels, block.labels) > 0.9


class TestBlocks:
    def test_fewer_range_queries_than_two_per_point(self, blob_data):
        X, _ = blob_data
        result = BlockDBSCAN(eps=0.5, tau=4).fit(X)
        # Each point costs at most one half-radius query (plus full
        # queries for sparse points); dense data needs far fewer.
        assert result.stats["range_queries"] < X.shape[0]

    def test_block_stats_present(self, clusterable_data):
        result = BlockDBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        assert {"range_queries", "n_core", "n_blocks"} <= set(result.stats)

    def test_rnt_one_may_miss_merges_but_runs(self, clusterable_data):
        result = BlockDBSCAN(eps=0.5, tau=5, rnt=1).fit(clusterable_data)
        assert result.labels.shape == (clusterable_data.shape[0],)

    def test_deterministic(self, clusterable_data):
        a = BlockDBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        b = BlockDBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        assert np.array_equal(a.labels, b.labels)

    def test_singleton_blocks_from_sparse_regions(self, clusterable_data):
        result = BlockDBSCAN(eps=0.3, tau=3).fit(clusterable_data)
        # With a small radius some points are individually resolved.
        assert result.stats["n_blocks"] >= result.n_clusters
