"""Tests for noise ratio, cluster counts and Table 6 missed-cluster stats."""

import numpy as np
import pytest

from repro.metrics import (
    MissedClusterStats,
    cluster_sizes,
    missed_cluster_stats,
    n_clusters,
    noise_ratio,
)


class TestNoiseRatio:
    def test_no_noise(self):
        assert noise_ratio(np.array([0, 1, 2])) == 0.0

    def test_all_noise(self):
        assert noise_ratio(np.array([-1, -1])) == 1.0

    def test_fraction(self):
        assert noise_ratio(np.array([-1, 0, 0, 1])) == 0.25

    def test_empty(self):
        assert noise_ratio(np.array([], dtype=int)) == 0.0


class TestNClusters:
    def test_counts_distinct_non_noise(self):
        assert n_clusters(np.array([-1, 0, 0, 3, 7])) == 3

    def test_all_noise_zero(self):
        assert n_clusters(np.array([-1, -1])) == 0


class TestClusterSizes:
    def test_basic(self):
        sizes = cluster_sizes(np.array([0, 0, 1, -1, 1, 1]))
        assert sizes == {0: 2, 1: 3}

    def test_excludes_noise(self):
        assert -1 not in cluster_sizes(np.array([-1, 0]))


class TestMissedClusterStats:
    def test_nothing_missed(self):
        gt = np.array([0, 0, 1, 1, -1])
        pred = np.array([0, 0, 1, 1, -1])
        stats = missed_cluster_stats(gt, pred)
        assert stats.missed_clusters == 0
        assert stats.total_clusters == 2
        assert stats.missed_points == 0
        assert stats.total_cluster_points == 4
        assert stats.avg_missed_cluster_size == 0.0
        assert stats.missed_point_fraction == 0.0

    def test_one_cluster_fully_missed(self):
        gt = np.array([0, 0, 0, 1, 1])
        pred = np.array([-1, -1, -1, 0, 0])  # cluster 0 entirely noise
        stats = missed_cluster_stats(gt, pred)
        assert stats.missed_clusters == 1
        assert stats.missed_points == 3
        assert stats.avg_missed_cluster_size == 3.0
        assert stats.missed_point_fraction == pytest.approx(3 / 5)

    def test_partially_lost_cluster_not_missed(self):
        gt = np.array([0, 0, 0])
        pred = np.array([-1, -1, 5])  # one survivor -> not fully missed
        stats = missed_cluster_stats(gt, pred)
        assert stats.missed_clusters == 0

    def test_renamed_cluster_not_missed(self):
        gt = np.array([0, 0, 1, 1])
        pred = np.array([9, 9, 4, 4])
        assert missed_cluster_stats(gt, pred).missed_clusters == 0

    def test_gt_noise_ignored(self):
        gt = np.array([-1, -1, 0, 0])
        pred = np.array([-1, 2, -1, -1])
        stats = missed_cluster_stats(gt, pred)
        assert stats.total_clusters == 1
        assert stats.missed_clusters == 1
        assert stats.total_cluster_points == 2

    def test_as_row_format(self):
        stats = MissedClusterStats(
            missed_clusters=63,
            total_clusters=92,
            missed_points=209,
            total_cluster_points=19358,
        )
        row = stats.as_row()
        assert row["MC/TC"] == "63/92"
        assert row["MP/TPC"] == "209/19358"
        assert row["ASMC"] == pytest.approx(3.32, abs=0.01)
