"""Tests for the map E and Algorithm 2 (UpdatePartialNeighbors)."""

import numpy as np

from repro.core import PartialNeighborMap


class TestRegistration:
    def test_register_creates_empty_set(self):
        E = PartialNeighborMap(10)
        E.register_stop_point(3)
        assert 3 in E
        assert E.neighbors_of(3) == set()
        assert len(E) == 1

    def test_register_idempotent(self):
        """Algorithm 1 line 8: 'if P not in E then E(P) := {}' — a second
        registration must not clear accumulated neighbors."""
        E = PartialNeighborMap(10)
        E.register_stop_point(3)
        E.update(7, np.array([3]))
        E.register_stop_point(3)
        assert E.neighbors_of(3) == {7}

    def test_unregistered_not_contained(self):
        E = PartialNeighborMap(5)
        assert 2 not in E
        assert E.neighbors_of(2) == set()


class TestUpdate:
    def test_only_recorded_points_updated(self):
        """Algorithm 2: neighbors not in E are ignored."""
        E = PartialNeighborMap(10)
        E.register_stop_point(4)
        E.update(1, np.array([2, 3, 4]))
        assert E.neighbors_of(4) == {1}
        assert E.neighbors_of(2) == set()
        assert E.neighbors_of(3) == set()

    def test_accumulates_across_queries(self):
        E = PartialNeighborMap(10)
        E.register_stop_point(5)
        E.update(0, np.array([5]))
        E.update(1, np.array([5]))
        E.update(2, np.array([5, 9]))
        assert E.neighbors_of(5) == {0, 1, 2}

    def test_duplicate_updates_are_set_semantics(self):
        E = PartialNeighborMap(10)
        E.register_stop_point(5)
        E.update(0, np.array([5]))
        E.update(0, np.array([5]))
        assert E.neighbors_of(5) == {0}

    def test_self_neighbor_excluded(self):
        # A stop point later executing a query must not record itself.
        E = PartialNeighborMap(10)
        E.register_stop_point(5)
        E.update(5, np.array([5, 6]))
        assert E.neighbors_of(5) == set()

    def test_empty_neighbor_array(self):
        E = PartialNeighborMap(10)
        E.register_stop_point(1)
        E.update(0, np.array([], dtype=np.int64))
        assert E.neighbors_of(1) == set()

    def test_subset_invariant(self):
        """E(P) only ever contains points that found P as a neighbor —
        i.e., a subset of P's true neighborhood by symmetry."""
        rng = np.random.default_rng(0)
        from repro.distances import normalize_rows
        from repro.index import BruteForceIndex

        X = normalize_rows(rng.normal(size=(40, 8)))
        index = BruteForceIndex().build(X)
        eps = 0.6
        E = PartialNeighborMap(40)
        for p in range(0, 40, 3):
            E.register_stop_point(p)
        for q in range(40):
            if q not in E:
                E.update(q, index.range_query(X[q], eps))
        for p, partial in E.items():
            true_neighbors = set(index.range_query(X[p], eps).tolist())
            assert partial <= true_neighbors


class TestIterationAndCandidates:
    def test_insertion_order_preserved(self):
        E = PartialNeighborMap(10)
        for p in (7, 2, 9):
            E.register_stop_point(p)
        assert list(E) == [7, 2, 9]

    def test_false_negative_candidates(self):
        E = PartialNeighborMap(10)
        E.register_stop_point(1)
        E.register_stop_point(2)
        E.update(0, np.array([1, 2]))
        E.update(3, np.array([1]))
        E.update(4, np.array([1]))
        assert E.false_negative_candidates(tau=3) == [1]
        assert E.false_negative_candidates(tau=1) == [1, 2]
        assert E.false_negative_candidates(tau=5) == []

    def test_items_view(self):
        E = PartialNeighborMap(10)
        E.register_stop_point(4)
        E.update(1, np.array([4]))
        items = dict(E.items())
        assert items == {4: {1}}
