"""Tests for the benchmark workload preparation module."""

import pytest

from repro.data.datasets import DATASET_SPECS
from repro.experiments.workloads import (
    Workload,
    clear_cache,
    prepare_workload,
    prepare_workloads,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def tiny(name="MS-50k", **kw):
    defaults = {"scale": 0.003, "seed": 0, "epochs": 3, "n_train_queries": 40}
    defaults.update(kw)
    return prepare_workload(name, **defaults)


class TestPrepareWorkload:
    def test_bundle_fields(self):
        wl = tiny()
        assert isinstance(wl, Workload)
        assert wl.name == "MS-50k"
        assert wl.alpha == DATASET_SPECS["MS-50k"].alpha
        assert wl.X_train.shape[1] == 768
        assert wl.X_test.shape[1] == 768

    def test_estimator_is_fitted_and_usable(self):
        wl = tiny()
        wl.estimator.bind(wl.X_test)
        counts = wl.estimator.estimate_many(wl.X_test[:3], 0.5)
        assert counts.shape == (3,)

    def test_memoization_identity(self):
        a = tiny()
        b = tiny()
        assert a is b

    def test_cache_key_includes_settings(self):
        a = tiny(epochs=3)
        b = tiny(epochs=4)
        assert a is not b

    def test_clear_cache(self):
        a = tiny()
        clear_cache()
        b = tiny()
        assert a is not b

    def test_prepare_many(self):
        workloads = prepare_workloads(
            ("MS-50k", "MS-100k"), scale=0.003, seed=0, epochs=3, n_train_queries=40
        )
        assert set(workloads) == {"MS-50k", "MS-100k"}
        assert (
            workloads["MS-100k"].X_train.shape[0]
            > workloads["MS-50k"].X_train.shape[0]
        )

    def test_split_is_paper_ratio(self):
        wl = tiny()
        total = wl.X_train.shape[0] + wl.X_test.shape[0]
        assert wl.X_train.shape[0] == round(0.8 * total)
