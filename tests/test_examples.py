"""Every example script must run end to end (at reduced scale)."""

import os
import runpy
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = [
    "quickstart.py",
    "passage_embedding_pipeline.py",
    "tradeoff_tuning.py",
    "custom_estimator_plugin.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    """Run the example in-process at tiny scale; it must print output."""
    os.environ["REPRO_EXAMPLE_SCALE"] = "0.008"
    try:
        runpy.run_path(os.path.join(EXAMPLES_DIR, script), run_name="__main__")
    finally:
        os.environ.pop("REPRO_EXAMPLE_SCALE", None)
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 3, f"{script} produced almost no output"


def test_examples_directory_complete():
    """The four documented examples exist and nothing is stale."""
    present = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))
    assert present == sorted(EXAMPLES)


def test_quickstart_subprocess_smoke():
    """The quickstart also works as a plain `python examples/...` call."""
    env = dict(os.environ, REPRO_EXAMPLE_SCALE="0.006")
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "speedup" in proc.stdout
