"""Tests for Algorithm 3 (PostProcessing)."""

import numpy as np

from repro.core import PartialNeighborMap, post_process


def build_E(n, entries):
    """entries: {stop_point: [partial neighbors]}"""
    E = PartialNeighborMap(n)
    for p, neighbors in entries.items():
        E.register_stop_point(p)
        for q in neighbors:
            E.update(q, np.array([p]))
    return E


class TestNoFalseNegatives:
    def test_below_tau_untouched(self):
        labels = np.array([0, 0, 1, 1, -1])
        E = build_E(5, {4: [0, 2]})  # only 2 partial neighbors < tau=3
        outcome = post_process(labels, E, tau=3, seed=0)
        assert np.array_equal(outcome.labels, labels)
        assert outcome.n_false_negatives == 0
        assert outcome.n_merges == 0

    def test_empty_E(self):
        labels = np.array([0, 1, -1])
        outcome = post_process(labels, PartialNeighborMap(3), tau=2, seed=0)
        assert np.array_equal(outcome.labels, labels)

    def test_input_not_mutated(self):
        labels = np.array([0, 0, 1, 1, -1])
        E = build_E(5, {4: [0, 1, 2, 3]})
        post_process(labels, E, tau=3, seed=0)
        assert labels[4] == -1


class TestMerging:
    def test_split_cluster_is_repaired(self):
        # Points 0,1 in cluster 0; points 2,3 in cluster 1; point 4 is a
        # false stop point adjacent to all of them -> one merged cluster.
        labels = np.array([0, 0, 1, 1, -1])
        E = build_E(5, {4: [0, 1, 2, 3]})
        outcome = post_process(labels, E, tau=3, seed=0)
        assert outcome.n_false_negatives == 1
        assert outcome.n_merges == 1
        merged = outcome.labels
        assert merged[0] == merged[1] == merged[2] == merged[3] == merged[4]

    def test_false_negative_point_joins_destination(self):
        labels = np.array([0, 0, 0, -1])
        E = build_E(4, {3: [0, 1, 2]})
        outcome = post_process(labels, E, tau=3, seed=0)
        assert outcome.labels[3] == outcome.labels[0]

    def test_three_way_merge(self):
        labels = np.array([0, 1, 2, -1])
        E = build_E(4, {3: [0, 1, 2]})
        outcome = post_process(labels, E, tau=3, seed=0)
        assert outcome.n_merges == 2
        assert len(set(outcome.labels.tolist())) == 1

    def test_noise_partial_neighbors_stay_noise(self):
        labels = np.array([0, 0, -1, -1, -1])
        # Stop point 4 has neighbors {0, 1, 2}: 2 is noise and must not
        # be pulled into the cluster by the merge.
        E = build_E(5, {4: [0, 1, 2]})
        outcome = post_process(labels, E, tau=3, seed=0)
        assert outcome.labels[2] == -1
        assert outcome.labels[4] == outcome.labels[0]

    def test_all_noise_neighbors_no_merge(self):
        labels = np.array([-1, -1, -1, -1])
        E = build_E(4, {3: [0, 1, 2]})
        outcome = post_process(labels, E, tau=3, seed=0)
        assert outcome.n_false_negatives == 1
        assert outcome.n_merges == 0
        assert np.array_equal(outcome.labels, labels)

    def test_chained_merges_compose(self):
        # Two false stop points each bridging a different pair of the
        # same three clusters; union-find must chain them.
        labels = np.array([0, 0, 1, 1, 2, 2, -1, -1])
        E = build_E(8, {6: [0, 1, 2, 3], 7: [2, 3, 4, 5]})
        outcome = post_process(labels, E, tau=3, seed=0)
        cluster_ids = set(outcome.labels[outcome.labels >= 0].tolist())
        assert len(cluster_ids) == 1

    def test_deterministic_given_seed(self):
        labels = np.array([0, 0, 1, 1, 2, 2, -1])
        E = build_E(7, {6: [0, 2, 4]})
        a = post_process(labels, E, tau=3, seed=5)
        b = post_process(labels, E, tau=3, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_unrelated_clusters_untouched(self):
        labels = np.array([0, 0, 1, 1, 2, 2, -1])
        E = build_E(7, {6: [0, 1, 2]})  # bridges clusters 0 and 1 only
        outcome = post_process(labels, E, tau=3, seed=0)
        assert outcome.labels[0] == outcome.labels[2]
        # Cluster 2 remains distinct.
        assert outcome.labels[4] != outcome.labels[0]
