"""Tests for ClusteringResult and label canonicalization."""

import numpy as np
import pytest

from repro.clustering import ClusteringResult
from repro.clustering.base import Clusterer, canonicalize_labels
from repro.exceptions import InvalidParameterError


class TestCanonicalizeLabels:
    def test_first_appearance_order(self):
        labels = np.array([5, 5, 2, 2, 9])
        assert canonicalize_labels(labels).tolist() == [0, 0, 1, 1, 2]

    def test_noise_preserved(self):
        labels = np.array([-1, 3, -1, 3])
        assert canonicalize_labels(labels).tolist() == [-1, 0, -1, 0]

    def test_idempotent(self):
        labels = np.array([0, 1, -1, 2, 1])
        once = canonicalize_labels(labels)
        assert np.array_equal(once, canonicalize_labels(once))

    def test_all_noise(self):
        labels = np.full(4, -1)
        assert canonicalize_labels(labels).tolist() == [-1] * 4

    def test_negative_internal_sentinels_not_special(self):
        # Only -1 is noise; other ids map in appearance order.
        labels = np.array([7, -1, 7, 100])
        assert canonicalize_labels(labels).tolist() == [0, -1, 0, 1]


class TestClusteringResult:
    def test_n_clusters_and_noise(self):
        result = ClusteringResult(labels=np.array([0, 0, 1, -1]))
        assert result.n_clusters == 2
        assert result.noise_ratio == 0.25
        assert result.n_points == 4

    def test_cluster_members(self):
        result = ClusteringResult(labels=np.array([0, 1, 0, -1]))
        assert result.cluster_members(0).tolist() == [0, 2]

    def test_empty_stats_default(self):
        result = ClusteringResult(labels=np.array([0]))
        assert result.stats == {}

    def test_all_noise(self):
        result = ClusteringResult(labels=np.array([-1, -1]))
        assert result.n_clusters == 0
        assert result.noise_ratio == 1.0


class TestClustererValidation:
    class _Dummy(Clusterer):
        def fit(self, X):
            return ClusteringResult(labels=np.zeros(len(X), dtype=np.int64))

    def test_valid_params_accepted(self):
        c = self._Dummy(eps=0.5, tau=3)
        assert c.eps == 0.5
        assert c.tau == 3

    @pytest.mark.parametrize("eps", [0.0, -0.5, 2.5])
    def test_invalid_eps(self, eps):
        with pytest.raises(InvalidParameterError):
            self._Dummy(eps=eps, tau=3)

    @pytest.mark.parametrize("tau", [0, -2])
    def test_invalid_tau(self, tau):
        with pytest.raises(InvalidParameterError):
            self._Dummy(eps=0.5, tau=tau)

    def test_fit_predict_returns_labels(self):
        c = self._Dummy(eps=0.5, tau=3)
        labels = c.fit_predict(np.ones((3, 2)))
        assert labels.shape == (3,)
