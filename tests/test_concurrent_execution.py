"""Thread-safety regression: concurrent fits with different configs.

The redesign's core promise: execution policy lives in the
``ExecutionConfig`` each clusterer holds, never in module state, so two
threads fitting concurrently with *different* sharding settings cannot
corrupt each other. Before the redesign a process-wide mutable global
(`_ACTIVE_SHARDING`) made exactly that interleaving unsafe.

These tests are deliberately self-contained (no shared fixtures, no
ambient state) so they stay valid under ``pytest -p no:randomly`` and
``pytest -n auto`` alike.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import ExecutionConfig, ShardingConfig
from repro.clustering import DBSCAN
from repro.index.sharded import sharded_queries, sharding_config
from repro.testing import make_blobs_on_sphere

EPS = 0.5
TAU = 4
N_FITS_PER_THREAD = 3


def _data() -> np.ndarray:
    X, _ = make_blobs_on_sphere(30, 3, 16, spread=0.25, seed=7)
    return X


class TestConcurrentFits:
    def test_different_sharding_configs_do_not_interfere(self):
        """1-shard and 4-shard fits interleave; each keeps its own config.

        Both threads run several fits back to back (maximizing overlap
        via a start barrier) and each result must match its own
        single-threaded reference labels *and* report its own
        ``shard_live_shards`` — a fit observing the other thread's shard
        count is exactly the corruption the old global allowed.
        """
        X = _data()
        reference = DBSCAN(eps=EPS, tau=TAU).fit(X)
        configs = {
            1: ExecutionConfig(sharding=ShardingConfig(n_shards=1)),
            4: ExecutionConfig(sharding=ShardingConfig(n_shards=4)),
        }
        barrier = threading.Barrier(len(configs))
        results: dict[int, list] = {n: [] for n in configs}
        errors: list[BaseException] = []

        def run(n_shards: int) -> None:
            try:
                barrier.wait(timeout=30)
                for _ in range(N_FITS_PER_THREAD):
                    clusterer = DBSCAN(eps=EPS, tau=TAU, execution=configs[n_shards])
                    results[n_shards].append(clusterer.fit(X))
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(n,), name=f"shards-{n}")
            for n in configs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        for n_shards, fits in results.items():
            assert len(fits) == N_FITS_PER_THREAD
            for result in fits:
                assert np.array_equal(result.labels, reference.labels)
                # Each fit reports *its own* execution, not the other
                # thread's: live shards == its config's shard count.
                assert result.stats["shard_live_shards"] == n_shards
                assert result.stats["shard_inner_builds"] == n_shards

    def test_sharded_and_unsharded_fits_interleave(self):
        """An unsharded fit next to a sharded one never picks up shards."""
        X = _data()
        reference = DBSCAN(eps=EPS, tau=TAU).fit(X)
        barrier = threading.Barrier(2)
        outputs: dict[str, list] = {"sharded": [], "plain": []}
        errors: list[BaseException] = []

        def run(kind: str) -> None:
            try:
                execution = (
                    ExecutionConfig(sharding=ShardingConfig(n_shards=3))
                    if kind == "sharded"
                    else None
                )
                barrier.wait(timeout=30)
                for _ in range(N_FITS_PER_THREAD):
                    outputs[kind].append(
                        DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(X)
                    )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(kind,)) for kind in ("sharded", "plain")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        for result in outputs["sharded"]:
            assert np.array_equal(result.labels, reference.labels)
            assert result.stats["shard_live_shards"] == 3
        for result in outputs["plain"]:
            assert np.array_equal(result.labels, reference.labels)
            assert "shard_live_shards" not in result.stats


class TestThreadLocalShim:
    def test_removed_shim_raises_in_every_thread(self):
        """The ambient scope is gone for good: the shim raises a typed
        error on any thread, and the read-side probe reports no state."""
        from repro.exceptions import RemovedAPIError

        with pytest.raises(RemovedAPIError, match="ExecutionConfig"):
            with sharded_queries(n_shards=4):
                pass

        observed: list = ["unset"]

        def probe() -> None:
            try:
                with sharded_queries(n_shards=4):
                    pass
            except RemovedAPIError:
                observed[0] = sharding_config()

        t = threading.Thread(target=probe)
        t.start()
        t.join(timeout=30)
        assert observed[0] is None
        assert sharding_config() is None
