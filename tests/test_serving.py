"""Serving-subsystem correctness: batching must be invisible.

The contract under test: labels served through the micro-batched async
path are bit-identical to sequential ``ClusterModel.predict`` calls, no
matter how concurrent submissions interleave, how request sizes mix, or
which requests get cancelled or timed out along the way — and overload
surfaces as typed backpressure, never a deadlock or unbounded queue.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

import repro
from repro.exceptions import (
    DataValidationError,
    DeadlineExceededError,
    InvalidParameterError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serving import MicroBatcher, ModelServer
from repro.serving.stats import Histogram, ServingStats
from repro.testing import make_blobs_on_sphere

EPS = 0.45
TAU = 4


@pytest.fixture(scope="module")
def model():
    X, _ = make_blobs_on_sphere(100, 4, 16, seed=3)
    with repro.fit_model(X, "dbscan", eps=EPS, tau=TAU) as m:
        yield m


@pytest.fixture(scope="module")
def queries():
    # Same seed as the training blobs => same cluster centers, so the
    # wider spread yields a mix of cluster labels and noise.
    Q, _ = make_blobs_on_sphere(60, 4, 16, seed=3, spread=0.3)
    return Q


def run(coro):
    return asyncio.run(coro)


class TestMicroBatcherCore:
    def test_single_and_multi_row_match_predict(self, model, queries):
        async def main():
            async with ModelServer(max_batch_rows=32, max_wait_ms=1.0) as srv:
                srv.add_model("m", model)
                one = await srv.submit("m", queries[0])
                few = await srv.submit("m", queries[:5])
                return one, few

        one, few = run(main())
        assert np.array_equal(one, model.predict(queries[0]))
        assert np.array_equal(few, model.predict(queries[:5]))

    def test_zero_row_request(self, model, queries):
        async def main():
            async with ModelServer() as srv:
                srv.add_model("m", model)
                return await srv.submit("m", queries[:0])

        out = run(main())
        assert out.shape == (0,)
        assert out.dtype == np.int64

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fuzzed_concurrent_clients_bit_identical(self, model, queries, seed):
        """Interleaved submissions of mixed sizes == sequential predict."""
        rng = np.random.default_rng(seed)
        requests = []
        lo = 0
        while lo < queries.shape[0]:
            n = int(rng.integers(1, 7))
            requests.append(queries[lo : lo + n])
            lo += n
        delays = rng.uniform(0.0, 0.004, size=len(requests))

        async def client(rows, delay):
            await asyncio.sleep(delay)
            return await srv.submit("m", rows)

        async def main():
            async with srv:
                srv.add_model("m", model)
                return await asyncio.gather(
                    *(client(r, d) for r, d in zip(requests, delays))
                )

        srv = ModelServer(max_batch_rows=16, max_wait_ms=1.0)
        outs = run(main())
        for rows, got in zip(requests, outs):
            assert np.array_equal(got, model.predict(rows))

    def test_requests_actually_coalesce(self, model, queries):
        async def main():
            async with ModelServer(max_batch_rows=64, max_wait_ms=5.0) as srv:
                srv.add_model("m", model)
                await asyncio.gather(
                    *(srv.submit("m", queries[i]) for i in range(60))
                )
                return srv.stats()["m"]

        snap = run(main())
        assert snap["counters"]["requests"] == 60
        assert snap["counters"]["batches"] < 60
        assert snap["batch_rows"]["mean"] > 1.0

    def test_oversized_request_never_split_but_served(self, model, queries):
        async def main():
            async with ModelServer(max_batch_rows=4, max_queue_rows=8) as srv:
                srv.add_model("m", model)
                return await srv.submit("m", queries[:50]), srv.stats()["m"]

        got, snap = run(main())
        assert np.array_equal(got, model.predict(queries[:50]))
        # One kernel call for the oversized request: requests are demuxed
        # per future, never split across kernel calls.
        assert snap["counters"]["batches"] == 1

    def test_multi_tenant_routing(self, queries):
        X, _ = make_blobs_on_sphere(100, 4, 16, seed=3)
        with repro.fit_model(X, "dbscan", eps=EPS, tau=TAU) as loose:
            with repro.fit_model(X, "dbscan", eps=0.05, tau=TAU) as strict:

                async def main():
                    async with ModelServer(max_wait_ms=1.0) as srv:
                        srv.add_model("loose", loose).add_model("strict", strict)
                        a, b = await asyncio.gather(
                            srv.submit("loose", queries[:40]),
                            srv.submit("strict", queries[:40]),
                        )
                        return a, b

                a, b = run(main())
                assert np.array_equal(a, loose.predict(queries[:40]))
                assert np.array_equal(b, strict.predict(queries[:40]))
                assert not np.array_equal(a, b)


class TestBackpressureAndDeadlines:
    def _slow_batcher(self, delay_s: float = 0.02, **kwargs) -> MicroBatcher:
        def slow_predict(X):
            time.sleep(delay_s)
            return np.zeros(X.shape[0], dtype=np.int64)

        return MicroBatcher(slow_predict, n_features=4, **kwargs)

    def test_overload_returns_typed_error_without_deadlock(self):
        rows = np.full((1, 4), 0.5)

        async def main():
            batcher = self._slow_batcher(
                max_batch_rows=4, max_wait_ms=0.1, max_queue_rows=6
            )
            try:
                results = await asyncio.gather(
                    *(batcher.submit(rows) for _ in range(60)),
                    return_exceptions=True,
                )
            finally:
                await batcher.aclose()
            return results, batcher.stats.snapshot()

        results, snap = run(asyncio.wait_for(main(), timeout=30.0))
        rejected = [r for r in results if isinstance(r, ServerOverloadedError)]
        served = [r for r in results if isinstance(r, np.ndarray)]
        assert rejected, "queue cap never triggered backpressure"
        assert served, "backpressure starved every request"
        assert len(rejected) + len(served) == 60
        assert snap["counters"]["rejected_overload"] == len(rejected)
        for r in served:
            assert np.array_equal(r, np.zeros(1, dtype=np.int64))

    def test_deadline_exceeded_is_typed_and_isolated(self):
        rows = np.full((1, 4), 0.5)

        async def main():
            batcher = self._slow_batcher(delay_s=0.05, max_wait_ms=0.1)
            try:
                with pytest.raises(DeadlineExceededError):
                    await batcher.submit(rows, timeout_s=0.005)
                # The next request on the same batcher still completes.
                ok = await batcher.submit(rows, timeout_s=10.0)
            finally:
                await batcher.aclose()
            return ok, batcher.stats.snapshot()

        ok, snap = run(main())
        assert np.array_equal(ok, np.zeros(1, dtype=np.int64))
        assert snap["counters"]["deadline_missed"] >= 1

    def test_cancelled_request_does_not_poison_batch(self, model, queries):
        async def main():
            async with ModelServer(max_batch_rows=64, max_wait_ms=20.0) as srv:
                srv.add_model("m", model)
                doomed = asyncio.ensure_future(srv.submit("m", queries[0]))
                alive = asyncio.ensure_future(srv.submit("m", queries[1]))
                await asyncio.sleep(0.002)
                doomed.cancel()
                label = await alive
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                return label, srv.stats()["m"]

        label, snap = run(main())
        assert np.array_equal(label, model.predict(queries[1]))
        assert snap["counters"]["cancelled"] >= 1

    def test_per_request_validation_does_not_poison_batch(self, model, queries):
        bad = np.full(16, 0.5)  # not unit-norm: cosine validate rejects

        async def main():
            async with ModelServer(max_wait_ms=1.0) as srv:
                srv.add_model("m", model)
                with pytest.raises(DataValidationError):
                    await srv.submit("m", bad)
                with pytest.raises(InvalidParameterError):
                    await srv.submit("m", queries[0][:7])  # wrong dim
                return await srv.submit("m", queries[:3])

        got = run(main())
        assert np.array_equal(got, model.predict(queries[:3]))


class TestLifecycle:
    def test_submit_after_close_raises(self, model, queries):
        async def main():
            srv = ModelServer()
            srv.add_model("m", model)
            await srv.aclose()
            with pytest.raises(ServerClosedError):
                await srv.submit("m", queries[0])

        run(main())

    def test_aclose_drains_pending(self, model, queries):
        async def main():
            srv = ModelServer(max_batch_rows=1024, max_wait_ms=5_000.0)
            srv.add_model("m", model)
            pending = [
                asyncio.ensure_future(srv.submit("m", queries[i]))
                for i in range(10)
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            await srv.aclose()  # must flush, not strand, the queue
            return await asyncio.gather(*pending)

        outs = run(main())
        got = np.concatenate(outs)
        assert np.array_equal(got, model.predict(queries[:10]))

    def test_unknown_model(self, model, queries):
        async def main():
            async with ModelServer() as srv:
                srv.add_model("m", model)
                with pytest.raises(InvalidParameterError, match="unknown model"):
                    await srv.submit("nope", queries[0])
                with pytest.raises(InvalidParameterError, match="already"):
                    srv.add_model("m", model)

        run(main())

    def test_reload_swaps_without_dropping(self, model, queries, tmp_path):
        X, _ = make_blobs_on_sphere(100, 4, 16, seed=3)
        with repro.fit_model(X, "dbscan", eps=EPS, tau=TAU) as loose:
            loose.save(tmp_path / "loose")
        with repro.fit_model(X, "dbscan", eps=0.05, tau=TAU) as strict:
            strict.save(tmp_path / "strict")
        with repro.load_model(tmp_path / "loose") as ref_loose:
            expect_loose = ref_loose.predict(queries)
        with repro.load_model(tmp_path / "strict") as ref_strict:
            expect_strict = ref_strict.predict(queries)
        assert not np.array_equal(expect_loose, expect_strict)

        async def main():
            async with ModelServer(max_wait_ms=1.0) as srv:
                srv.add_model("m", tmp_path / "loose")
                before = await srv.submit("m", queries)
                # Requests in flight across the swap must complete (with
                # whichever model their kernel started under), never
                # drop or error.
                overlapping = [
                    asyncio.ensure_future(srv.submit("m", queries))
                    for _ in range(8)
                ]
                await asyncio.sleep(0)
                await srv.reload("m", tmp_path / "strict")
                during = await asyncio.gather(*overlapping)
                after = await srv.submit("m", queries)
                return before, during, after, srv.stats()["m"]

        before, during, after, snap = run(main())
        assert np.array_equal(before, expect_loose)
        assert np.array_equal(after, expect_strict)
        for got in during:
            assert np.array_equal(got, expect_loose) or np.array_equal(
                got, expect_strict
            )
        assert snap["counters"]["reloads"] == 1

    def test_reload_dim_change_rejected(self, model, tmp_path):
        X8, _ = make_blobs_on_sphere(50, 4, 8, seed=5)
        with repro.fit_model(X8, "dbscan", eps=EPS, tau=TAU) as other:
            other.save(tmp_path / "dim8")

        async def main():
            async with ModelServer() as srv:
                srv.add_model("m", model)
                with pytest.raises(InvalidParameterError, match="dimensionality"):
                    await srv.reload("m", tmp_path / "dim8")

        run(main())


class TestStats:
    def test_snapshot_is_json_safe_and_ordered(self, model, queries):
        async def main():
            async with ModelServer(max_wait_ms=1.0) as srv:
                srv.add_model("m", model)
                await asyncio.gather(
                    *(srv.submit("m", queries[i : i + 3]) for i in range(0, 60, 3))
                )
                return srv.stats()

        stats = run(main())
        snap = stats["m"]
        json.dumps(stats)  # JSON-safe end to end
        assert set(snap["counters"]) >= {
            "requests",
            "rows",
            "batches",
            "rejected_overload",
            "deadline_missed",
            "cancelled",
            "errors",
            "reloads",
        }
        for hist in ("queue_wait_ms", "assembly_ms", "kernel_ms", "e2e_ms"):
            h = snap[hist]
            assert h["p50"] <= h["p95"] <= h["p99"] <= h["max"]
        assert snap["counters"]["rows"] == 60
        assert snap["e2e_ms"]["count"] == snap["counters"]["requests"]

    def test_histogram_quantiles(self):
        h = Histogram((1.0, 2.0, 4.0, 8.0))
        for v in [0.5] * 50 + [3.0] * 45 + [7.0] * 5:
            h.record(v)
        assert h.count == 100
        assert h.quantile(0.5) <= 1.0
        assert 2.0 < h.quantile(0.95) <= 4.0
        assert h.quantile(0.99) <= 8.0
        assert h.max == 7.0
        assert h.quantile(1.0) == 7.0  # clamped to observed max

    def test_stats_counters_reject_unknown(self):
        stats = ServingStats()
        with pytest.raises(KeyError):
            stats.count("nope")
