"""Tests for the RMI cardinality estimator."""

import numpy as np
import pytest

from repro.estimators import RMICardinalityEstimator
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.index import BruteForceIndex

from repro.testing import make_blobs_on_sphere


@pytest.fixture(scope="module")
def fitted():
    """A small RMI fitted on clusterable data (shared; read-only)."""
    X, _ = make_blobs_on_sphere(60, 3, 24, spread=0.4, seed=0)
    est = RMICardinalityEstimator(
        hidden_layers=(64, 32), epochs=120, learning_rate=2e-3, seed=0
    ).fit(X)
    return est, X


class TestConstruction:
    def test_paper_configuration(self):
        est = RMICardinalityEstimator.paper_configuration()
        assert est.stages == (1, 2, 4)
        assert est.hidden_layers == (512, 512, 256, 128)
        assert est.epochs == 200
        assert est.batch_size == 512

    def test_paper_configuration_overrides(self):
        est = RMICardinalityEstimator.paper_configuration(epochs=3)
        assert est.epochs == 3
        assert est.hidden_layers == (512, 512, 256, 128)

    def test_invalid_stages(self):
        with pytest.raises(InvalidParameterError):
            RMICardinalityEstimator(stages=())
        with pytest.raises(InvalidParameterError):
            RMICardinalityEstimator(stages=(2, 4))  # root must be single
        with pytest.raises(InvalidParameterError):
            RMICardinalityEstimator(stages=(1, 0))

    def test_n_models(self):
        assert RMICardinalityEstimator(stages=(1, 2, 4)).n_models == 7

    def test_predict_before_fit(self):
        est = RMICardinalityEstimator()
        with pytest.raises(NotFittedError):
            est.predict_fraction(np.ones((1, 4)), 0.5)
        with pytest.raises(NotFittedError):
            est.stage_model(0, 0)


class TestFitAndPredict:
    def test_estimates_correlate_with_truth(self, fitted):
        # Evaluate at a radius where true counts actually vary across
        # queries (at small radii every blob point sees its whole blob,
        # making per-query correlation meaningless).
        est, X = fitted
        index = BruteForceIndex().build(X)
        est.bind(X)
        eps = 0.6
        predicted = est.estimate_many(X, eps)
        actual = index.range_count_many(X, eps).astype(float)
        assert actual.std() > 5  # the radius is discriminative
        corr = np.corrcoef(predicted, actual)[0, 1]
        assert corr > 0.5, f"prediction correlation too weak: {corr:.3f}"

    def test_mean_estimates_track_truth_across_radii(self, fitted):
        est, X = fitted
        index = BruteForceIndex().build(X)
        est.bind(X)
        for eps in (0.3, 0.5, 0.7):
            predicted = est.estimate_many(X, eps).mean()
            actual = index.range_count_many(X, eps).mean()
            assert predicted == pytest.approx(actual, rel=0.4), eps

    def test_fractions_clipped_to_unit_interval(self, fitted):
        est, X = fitted
        fracs = est.predict_fraction(X[:20], 0.5)
        assert (fracs >= 0).all()

    def test_counts_scale_with_bound_size(self, fitted):
        est, X = fitted
        est.bind(X)
        full = est.estimate_many(X[:5], 0.5)
        est.bind(X[:90])
        half = est.estimate_many(X[:5], 0.5)
        assert np.allclose(half, full * 90 / X.shape[0], rtol=1e-9)

    def test_estimate_scalar_form(self, fitted):
        est, X = fitted
        est.bind(X)
        single = est.estimate(X[0], 0.5)
        many = est.estimate_many(X[:1], 0.5)[0]
        assert single == pytest.approx(many)

    def test_stage_models_all_fitted(self, fitted):
        est, _ = fitted
        for stage, n in enumerate(est.stages):
            for i in range(n):
                assert est.stage_model(stage, i).is_fitted

    def test_deterministic_given_seed(self):
        X, _ = make_blobs_on_sphere(40, 2, 16, spread=0.3, seed=1)
        def build():
            return (
                RMICardinalityEstimator(
                    hidden_layers=(8,), epochs=5, n_train_queries=30, seed=9
                )
                .fit(X)
                .bind(X)
                .estimate_many(X[:6], 0.5)
            )
        assert np.allclose(build(), build())

    def test_larger_radius_larger_estimates_on_average(self, fitted):
        est, X = fitted
        est.bind(X)
        small = est.estimate_many(X, 0.2).mean()
        large = est.estimate_many(X, 0.8).mean()
        assert large > small

    def test_training_set_exposed(self, fitted):
        est, X = fitted
        assert est.training_set_ is not None
        assert est.training_set_.n_reference == X.shape[0]

    def test_unbound_estimate_raises(self):
        X, _ = make_blobs_on_sphere(30, 2, 8, seed=2)
        est = RMICardinalityEstimator(hidden_layers=(8,), epochs=2, seed=0).fit(X)
        with pytest.raises(NotFittedError):
            est.estimate_many(X[:2], 0.5)


class TestRouting:
    def test_routing_partitions_all_examples(self):
        X, _ = make_blobs_on_sphere(40, 2, 12, spread=0.5, seed=3)
        est = RMICardinalityEstimator(
            stages=(1, 2, 4), hidden_layers=(8,), epochs=3, seed=0
        ).fit(X)
        # Internal routing: every leaf index must be within range.
        from repro.estimators.training_data import make_features

        feats = make_features(X, 0.5)
        preds = est._predict_log_counts(feats)
        assert np.isfinite(preds).all()

    def test_two_stage_variant(self):
        X, _ = make_blobs_on_sphere(30, 2, 8, spread=0.4, seed=4)
        est = RMICardinalityEstimator(
            stages=(1, 3), hidden_layers=(8,), epochs=3, seed=0
        ).fit(X)
        est.bind(X)
        assert est.estimate_many(X[:4], 0.5).shape == (4,)

    def test_single_stage_variant(self):
        X, _ = make_blobs_on_sphere(30, 2, 8, spread=0.4, seed=5)
        est = RMICardinalityEstimator(
            stages=(1,), hidden_layers=(8,), epochs=3, seed=0
        ).fit(X)
        est.bind(X)
        assert est.estimate_many(X[:4], 0.5).shape == (4,)
