"""Tests for Rand index and adjusted Rand index.

Reference values computed by hand from the Hubert & Arabie formula (and
matching sklearn's adjusted_rand_score).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import adjusted_rand_index, rand_index

labelings = hnp.arrays(
    dtype=np.int64, shape=st.integers(2, 40), elements=st.integers(-1, 5)
)


class TestRandIndex:
    def test_identical(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert rand_index(labels, labels) == 1.0

    def test_permuted_labels_still_perfect(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 3, 3])
        assert rand_index(a, b) == 1.0

    def test_known_value(self):
        # pairs: total C(4,2)=6; agreements counted by hand = 2
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        # same-cluster-in-both pairs: 0; same-in-a: 2; same-in-b: 2
        # agreements = 6 + 2*0 - 2 - 2 = 2 -> RI = 2/6
        assert rand_index(a, b) == pytest.approx(2 / 6)

    def test_single_point_convention(self):
        assert rand_index(np.array([0]), np.array([0])) == 1.0


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        labels = np.array([0, 1, 0, 1, 2])
        assert adjusted_rand_index(labels, labels) == 1.0

    def test_permutation_invariance(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 60)
        b = rng.integers(0, 3, 60)
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))

    def test_known_value_sklearn_cross_check(self):
        # sklearn.metrics.adjusted_rand_score([0,0,1,1],[0,0,1,2]) == 0.5714285714...
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 0, 1, 2])
        assert adjusted_rand_index(a, b) == pytest.approx(0.57142857, abs=1e-8)

    def test_known_negative_value(self):
        # Adversarial split scores below chance.
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 1, 2, 0, 1, 2])
        assert adjusted_rand_index(a, b) < 0.0

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(42)
        a = rng.integers(0, 5, 3000)
        b = rng.integers(0, 5, 3000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    def test_degenerate_all_one_cluster(self):
        a = np.zeros(10, dtype=int)
        assert adjusted_rand_index(a, a) == 1.0

    def test_degenerate_all_singletons(self):
        a = np.arange(10)
        assert adjusted_rand_index(a, a) == 1.0

    def test_half_split(self):
        # sklearn.metrics.adjusted_rand_score([0,0,1,1],[0,1,1,1]) == 0.0
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(0.0, abs=1e-12)

    @given(labelings)
    @settings(max_examples=40, deadline=None)
    def test_self_agreement_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(labelings, labelings)
    @settings(max_examples=40, deadline=None)
    def test_bounded_above_by_one(self, a, b):
        if a.shape != b.shape:
            return
        assert adjusted_rand_index(a, b) <= 1.0 + 1e-9
