"""Tests for original DBSCAN against an independent reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import DBSCAN
from repro.distances import normalize_rows
from repro.engine_config import ExecutionConfig, IndexSpec
from repro.exceptions import DataValidationError
from repro.index import BruteForceIndex
from repro.metrics import adjusted_rand_index

from repro.testing import canonical, reference_dbscan


class TestAgainstReference:
    @pytest.mark.parametrize("eps,tau", [(0.3, 3), (0.5, 3), (0.55, 5), (0.8, 8)])
    def test_matches_reference_on_blobs(self, clusterable_data, eps, tau):
        ours = DBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        ref = reference_dbscan(clusterable_data, eps, tau)
        # Cluster structure must agree exactly (ARI = 1 handles label
        # permutation; border ties can differ, so compare via ARI).
        assert adjusted_rand_index(canonical(ref), ours.labels) > 0.99

    def test_core_points_match_definition(self, clusterable_data):
        eps, tau = 0.5, 4
        result = DBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        index = BruteForceIndex().build(clusterable_data)
        counts = index.range_count_many(clusterable_data, eps)
        assert np.array_equal(result.core_mask, counts >= tau)

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        X = normalize_rows(rng.normal(size=(50, 8)))
        ours = DBSCAN(eps=0.6, tau=4).fit(X)
        ref = reference_dbscan(X, 0.6, 4)
        assert adjusted_rand_index(canonical(ref), ours.labels) > 0.99


class TestInvariants:
    def test_every_cluster_contains_a_core_point(self, clusterable_data):
        result = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        for cluster_id in range(result.n_clusters):
            members = result.cluster_members(cluster_id)
            assert result.core_mask[members].any()

    def test_core_points_never_noise(self, clusterable_data):
        result = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        assert (result.labels[result.core_mask] != -1).all()

    def test_noise_has_no_core_neighbor(self, clusterable_data):
        eps, tau = 0.5, 5
        result = DBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        index = BruteForceIndex().build(clusterable_data)
        for p in np.flatnonzero(result.labels == -1):
            neighbors = index.range_query(clusterable_data[p], eps)
            assert not result.core_mask[neighbors].any()

    def test_labels_are_canonical(self, clusterable_data):
        result = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        non_noise = result.labels[result.labels != -1]
        if non_noise.size:
            assert set(np.unique(non_noise)) == set(range(result.n_clusters))

    def test_one_range_query_per_point(self, clusterable_data):
        result = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        assert result.stats["range_queries"] == clusterable_data.shape[0]

    def test_cluster_connectivity_through_core_points(self, blob_data):
        """Any two same-cluster points connect via a core-point path."""
        X, _ = blob_data
        eps, tau = 0.5, 4
        result = DBSCAN(eps=eps, tau=tau).fit(X)
        index = BruteForceIndex().build(X)
        for cluster_id in range(result.n_clusters):
            members = result.cluster_members(cluster_id)
            # BFS over core points from the first core member.
            cores = [m for m in members if result.core_mask[m]]
            seen = {cores[0]}
            queue = [cores[0]]
            while queue:
                p = queue.pop()
                for q in index.range_query(X[p], eps):
                    if q in seen or result.labels[q] != cluster_id:
                        continue
                    seen.add(int(q))
                    if result.core_mask[q]:
                        queue.append(int(q))
            assert seen == set(members.tolist())


class TestBehaviour:
    def test_recovers_generative_blobs(self, blob_data):
        X, y = blob_data
        result = DBSCAN(eps=0.5, tau=4).fit(X)
        assert result.n_clusters == 3
        assert adjusted_rand_index(y, result.labels) > 0.95

    def test_tau_one_no_noise(self, unit_vectors_small):
        # With tau=1 every point is core (it neighbors itself).
        result = DBSCAN(eps=0.3, tau=1).fit(unit_vectors_small)
        assert result.noise_ratio == 0.0

    def test_tiny_eps_all_noise_at_high_tau(self, unit_vectors_small):
        result = DBSCAN(eps=1e-6, tau=2).fit(unit_vectors_small)
        assert result.noise_ratio == 1.0

    def test_eps_large_single_cluster(self, unit_vectors_small):
        result = DBSCAN(eps=2.0, tau=3).fit(unit_vectors_small)
        assert result.n_clusters == 1
        assert result.noise_ratio == 0.0

    def test_cover_tree_index_gives_same_result(self, clusterable_data):
        brute = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        tree = DBSCAN(
            eps=0.5,
            tau=5,
            execution=ExecutionConfig(index=IndexSpec("cover_tree")),
        ).fit(clusterable_data)
        assert np.array_equal(brute.labels, tree.labels)

    def test_duck_typed_custom_index_without_is_built_seam(self, clusterable_data):
        """A custom factory exposing only build()/queries keeps working.

        Such an index has no ``is_built`` property, so the clusterer
        must build it itself (the pre-deferred-path contract) instead of
        handing it to the engine unbuilt.
        """

        class DuckIndex:
            def __init__(self):
                self.n_builds = 0

            def build(self, X):
                self.n_builds += 1
                self.X = X
                return self

            def batch_range_query(self, Q, eps):
                import numpy as _np

                return [
                    _np.flatnonzero(1.0 - self.X @ q < eps)
                    for q in _np.atleast_2d(Q)
                ]

            def range_query(self, q, eps):
                return self.batch_range_query(q, eps)[0]

        made: list[DuckIndex] = []

        def factory():
            index = DuckIndex()
            made.append(index)
            return index

        brute = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        duck = DBSCAN(
            eps=0.5,
            tau=5,
            execution=ExecutionConfig(index=IndexSpec.custom(factory)),
        ).fit(clusterable_data)
        assert np.array_equal(brute.labels, duck.labels)
        assert [d.n_builds for d in made] == [1]

    def test_rejects_unnormalized(self):
        with pytest.raises(DataValidationError):
            DBSCAN(eps=0.5, tau=3).fit(np.ones((10, 4)))

    def test_deterministic(self, clusterable_data):
        a = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        b = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        assert np.array_equal(a.labels, b.labels)
