"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.workloads import clear_cache


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


FAST = ["--scale", "0.003", "--epochs", "3"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quality_defaults(self):
        args = build_parser().parse_args(["quality"])
        assert args.command == "quality"
        assert args.eps == 0.55
        assert args.tau == 5
        assert args.datasets == ["MS-50k", "MS-100k", "MS-150k"]

    def test_missed_alpha_override(self):
        args = build_parser().parse_args(["missed", "--alpha", "2.5"])
        assert args.alpha == 2.5

    def test_sharding_flags(self):
        args = build_parser().parse_args(
            [
                "timing",
                "--shards",
                "4",
                "--shard-executor",
                "process",
                "--shard-workers",
                "2",
                "--shard-query-block",
                "512",
            ]
        )
        assert args.shards == 4
        assert args.shard_executor == "process"
        assert args.shard_workers == 2
        assert args.shard_query_block == 512

    def test_shard_query_block_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timing", "--shard-query-block", "0"])

    def test_sharding_defaults_off(self):
        args = build_parser().parse_args(["timing"])
        assert args.shards is None
        # Unset on the parser; execution_from_args falls back to serial
        # (the flag must stay distinguishable from an explicit "serial"
        # so --pool-address can detect contradictions).
        assert args.shard_executor is None
        assert args.pool_address is None

    def test_invalid_shard_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timing", "--shard-executor", "gpu"])

    def test_per_point_with_shards_is_a_usage_error(self, capsys):
        # The flags map into one ExecutionConfig, whose validation
        # rejects the contradiction as a clean usage error (exit 2).
        with pytest.raises(SystemExit) as excinfo:
            main(["timing", "--per-point", "--shards", "2"])
        assert excinfo.value.code == 2
        assert "batched engine" in capsys.readouterr().err

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize"])


class TestCommands:
    def test_grid(self, capsys):
        code = main(
            ["grid", "--datasets", "MS-50k", *FAST, "--eps-values", "0.5"]
            + ["--tau-values", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(noise ratio, #clusters)" in out
        assert "(0.5, 3)" in out

    def test_quality_with_json(self, capsys, tmp_path):
        path = str(tmp_path / "rows.json")
        code = main(["quality", "--datasets", "MS-50k", *FAST, "--json", path])
        assert code == 0
        out = capsys.readouterr().out
        assert "ARI @" in out and "AMI @" in out
        with open(path) as f:
            rows = json.load(f)
        assert {r["method"] for r in rows} == {
            "KNN-BLOCK", "BLOCK-DBSCAN", "DBSCAN++", "LAF-DBSCAN", "LAF-DBSCAN++",
        }

    def test_timing(self, capsys):
        code = main(["timing", "--datasets", "MS-50k", *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "time (s)" in out
        assert "speedups:" in out

    def test_tradeoff(self, capsys):
        code = main(["tradeoff", "--dataset", "MS-50k", *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "trade-off on MS-50k" in out
        assert "LAF-DBSCAN" in out

    def test_missed(self, capsys):
        code = main(["missed", "--dataset", "MS-50k", *FAST, "--alpha", "1.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MC/TC" in out

    def test_grid_with_engine_sharding(self, capsys):
        from repro.index import sharding_config

        code = main(
            ["grid", "--datasets", "MS-50k", *FAST]
            + ["--eps-values", "0.5", "--tau-values", "3"]
            + ["--shards", "3", "--shard-executor", "thread"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(noise ratio, #clusters)" in out
        # The configuration was scoped to the command, not left behind.
        assert sharding_config() is None
