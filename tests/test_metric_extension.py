"""Tests for the Euclidean-metric extension (the paper's future work).

The paper: "our method does not have a hard constraint on the distance
metric, so we may explore Euclidean distance in future work". These
tests exercise that path end to end: metric registry, brute-force index,
DBSCAN, LAF-DBSCAN (lossless with the oracle), and a learned RMI trained
on a data-driven Euclidean radius grid.
"""

import numpy as np
import pytest

from repro.clustering import DBSCAN
from repro.core import LAFDBSCAN
from repro.distances import COSINE, EUCLIDEAN, get_metric, suggest_radii
from repro.estimators import (
    ExactCardinalityEstimator,
    RMICardinalityEstimator,
    build_training_set,
)
from repro.exceptions import InvalidParameterError
from repro.index import BruteForceIndex
from repro.metrics import adjusted_rand_index


def make_euclidean_blobs(n_per=40, n_clusters=3, dim=8, seed=0):
    """Plain (non-normalized!) Gaussian blobs in Euclidean space."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, size=(n_clusters, dim))
    parts, labels = [], []
    for c, center in enumerate(centers):
        parts.append(center + 0.4 * rng.normal(size=(n_per, dim)))
        labels.append(np.full(n_per, c))
    X = np.vstack(parts)
    y = np.concatenate(labels)
    order = rng.permutation(X.shape[0])
    return X[order], y[order]


class TestMetricRegistry:
    def test_get_by_name(self):
        assert get_metric("cosine") is COSINE
        assert get_metric("euclidean") is EUCLIDEAN

    def test_instance_passthrough(self):
        assert get_metric(COSINE) is COSINE

    def test_unknown_metric(self):
        with pytest.raises(InvalidParameterError):
            get_metric("manhattan")

    def test_eps_bounds(self):
        COSINE.check_eps(1.9)
        with pytest.raises(InvalidParameterError):
            COSINE.check_eps(2.1)
        EUCLIDEAN.check_eps(50.0)  # unbounded domain
        with pytest.raises(InvalidParameterError):
            EUCLIDEAN.check_eps(0.0)

    def test_euclidean_accepts_unnormalized(self):
        X, _ = make_euclidean_blobs()
        EUCLIDEAN.validate(X)  # must not raise

    def test_suggest_radii_spans_data(self):
        X, _ = make_euclidean_blobs()
        radii = suggest_radii(X, "euclidean", n_radii=5, seed=0)
        assert len(radii) == 5
        assert all(r > 0 for r in radii)
        assert list(radii) == sorted(radii)
        # The grid must bracket the within-blob distance scale (~0.4*sqrt(8)).
        assert radii[0] < 3.0 < radii[-1]


class TestEuclideanBruteForce:
    def test_range_query_matches_naive(self):
        X, _ = make_euclidean_blobs(seed=1)
        index = BruteForceIndex(metric="euclidean").build(X)
        q = X[5]
        eps = 2.0
        expected = set(np.flatnonzero(np.linalg.norm(X - q, axis=1) < eps).tolist())
        assert set(index.range_query(q, eps).tolist()) == expected

    def test_batched_counts_match(self):
        X, _ = make_euclidean_blobs(seed=2)
        index = BruteForceIndex(metric="euclidean").build(X)
        counts = index.range_count_many(X[:10], 2.0)
        singles = [index.range_count(q, 2.0) for q in X[:10]]
        assert counts.tolist() == singles

    def test_multi_eps_monotone(self):
        X, _ = make_euclidean_blobs(seed=3)
        index = BruteForceIndex(metric="euclidean").build(X)
        grid = index.range_count_multi_eps(X[:8], np.array([0.5, 2.0, 10.0]))
        assert (np.diff(grid, axis=1) >= 0).all()


class TestEuclideanDBSCAN:
    def test_recovers_blobs(self):
        X, y = make_euclidean_blobs(seed=4)
        result = DBSCAN(eps=2.0, tau=4, metric="euclidean").fit(X)
        assert result.n_clusters == 3
        assert adjusted_rand_index(y, result.labels) > 0.95

    def test_eps_above_two_valid(self):
        X, y = make_euclidean_blobs(seed=5)
        result = DBSCAN(eps=5.0, tau=4, metric="euclidean").fit(X)
        assert result.labels.shape == (X.shape[0],)

    def test_cosine_still_rejects_unnormalized(self):
        X, _ = make_euclidean_blobs()
        from repro.exceptions import DataValidationError

        with pytest.raises(DataValidationError):
            DBSCAN(eps=0.5, tau=3).fit(X)


class TestEuclideanLAF:
    def test_oracle_lossless_in_euclidean(self):
        X, _ = make_euclidean_blobs(seed=6)
        exact = DBSCAN(eps=2.0, tau=4, metric="euclidean").fit(X)
        laf = LAFDBSCAN(
            eps=2.0,
            tau=4,
            estimator=ExactCardinalityEstimator(metric="euclidean"),
            alpha=1.0,
            metric="euclidean",
        ).fit(X)
        assert np.array_equal(exact.labels, laf.labels)
        assert laf.stats["skipped_queries"] >= 0

    def test_learned_rmi_euclidean_end_to_end(self):
        X, y = make_euclidean_blobs(n_per=60, seed=7)
        radii = suggest_radii(X, "euclidean", n_radii=7, seed=0)
        estimator = RMICardinalityEstimator(
            hidden_layers=(32, 16),
            epochs=40,
            radii=radii,
            metric="euclidean",
            seed=0,
        ).fit(X)
        exact = DBSCAN(eps=2.0, tau=4, metric="euclidean").fit(X)
        laf = LAFDBSCAN(
            eps=2.0, tau=4, estimator=estimator, alpha=1.0, metric="euclidean"
        ).fit(X)
        assert adjusted_rand_index(exact.labels, laf.labels) > 0.7

    def test_training_set_euclidean_radii_validated(self):
        X, _ = make_euclidean_blobs()
        ts = build_training_set(X, radii=(1.0, 5.0), metric="euclidean")
        assert ts.radii == (1.0, 5.0)
        # Cosine would reject radii above 2.
        with pytest.raises(InvalidParameterError):
            build_training_set(X, radii=(5.0,), metric="cosine")
