"""Tests for RMI save/load and the components helper."""

import numpy as np
import pytest

from repro.clustering.components import connected_components_within
from repro.distances import normalize_rows
from repro.estimators import RMICardinalityEstimator
from repro.exceptions import NotFittedError

from repro.testing import make_blobs_on_sphere


class TestRMIPersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        X, _ = make_blobs_on_sphere(40, 2, 12, spread=0.4, seed=0)
        est = RMICardinalityEstimator(
            hidden_layers=(16, 8), epochs=10, n_train_queries=60, seed=0
        ).fit(X)
        return est, X

    def test_round_trip_predictions_identical(self, fitted, tmp_path):
        est, X = fitted
        path = str(tmp_path / "rmi.npz")
        est.save(path)
        loaded = RMICardinalityEstimator.load(path)
        est.bind(X)
        loaded.bind(X)
        assert np.allclose(
            est.estimate_many(X[:15], 0.5), loaded.estimate_many(X[:15], 0.5)
        )

    def test_round_trip_architecture(self, fitted, tmp_path):
        est, X = fitted
        path = str(tmp_path / "rmi.npz")
        est.save(path)
        loaded = RMICardinalityEstimator.load(path)
        assert loaded.stages == est.stages
        assert loaded.hidden_layers == est.hidden_layers

    def test_loaded_transfers_to_other_data(self, fitted, tmp_path):
        # The paper's transfer argument: reuse on similar distributions.
        est, X = fitted
        path = str(tmp_path / "rmi.npz")
        est.save(path)
        loaded = RMICardinalityEstimator.load(path)
        other, _ = make_blobs_on_sphere(30, 2, 12, spread=0.4, seed=9)
        loaded.bind(other)
        counts = loaded.estimate_many(other[:5], 0.5)
        assert counts.shape == (5,)
        assert np.isfinite(counts).all()

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            RMICardinalityEstimator().save(str(tmp_path / "x.npz"))


class TestConnectedComponentsWithin:
    def test_two_far_groups(self):
        rng = np.random.default_rng(0)
        a = normalize_rows(np.array([1.0, 0.0, 0.0]) + 0.01 * rng.normal(size=(5, 3)))
        b = normalize_rows(np.array([-1.0, 0.0, 0.0]) + 0.01 * rng.normal(size=(5, 3)))
        labels = connected_components_within(np.vstack([a, b]), eps=0.5)
        assert len(set(labels[:5].tolist())) == 1
        assert len(set(labels[5:].tolist())) == 1
        assert labels[0] != labels[5]

    def test_chain_connectivity(self):
        # Points on a great-circle arc, each within eps of its neighbor
        # but not of the far end: one chained component.
        angles = np.linspace(0.0, 1.2, 7)
        X = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        step_gap = 1.0 - np.cos(angles[1] - angles[0])
        end_gap = 1.0 - np.cos(angles[-1] - angles[0])
        eps = step_gap * 1.5
        assert eps < end_gap
        labels = connected_components_within(X, eps=eps)
        assert len(set(labels.tolist())) == 1

    def test_all_singletons(self):
        X = np.eye(4)
        labels = connected_components_within(X, eps=0.5)
        assert len(set(labels.tolist())) == 4

    def test_matches_naive_union_find(self):
        from repro.clustering import UnionFind

        rng = np.random.default_rng(3)
        X = normalize_rows(rng.normal(size=(40, 6)))
        eps = 0.6
        fast = connected_components_within(X, eps)
        uf = UnionFind(40)
        dists = 1.0 - X @ X.T
        for i in range(40):
            for j in range(i + 1, 40):
                if dists[i, j] < eps:
                    uf.union(i, j)
        for i in range(40):
            for j in range(40):
                assert (fast[i] == fast[j]) == uf.connected(i, j)
