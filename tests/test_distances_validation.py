"""Tests for input validation helpers."""

import numpy as np
import pytest

from repro.distances import (
    check_finite_2d,
    check_unit_norm,
    is_unit_normalized,
    normalize_rows,
)
from repro.exceptions import DataValidationError


class TestCheckFinite2d:
    def test_accepts_valid(self):
        X = np.ones((3, 4))
        out = check_finite_2d(X)
        assert out.shape == (3, 4)

    def test_converts_lists(self):
        out = check_finite_2d([[1.0, 2.0], [3.0, 4.0]])
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError, match="2-dimensional"):
            check_finite_2d(np.ones(5))

    def test_rejects_3d(self):
        with pytest.raises(DataValidationError):
            check_finite_2d(np.ones((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError, match="non-empty"):
            check_finite_2d(np.ones((0, 4)))

    def test_rejects_nan(self):
        X = np.ones((3, 3))
        X[1, 1] = np.nan
        with pytest.raises(DataValidationError, match="NaN"):
            check_finite_2d(X)

    def test_rejects_inf(self):
        X = np.ones((3, 3))
        X[0, 2] = np.inf
        with pytest.raises(DataValidationError):
            check_finite_2d(X)

    def test_error_uses_custom_name(self):
        with pytest.raises(DataValidationError, match="queries"):
            check_finite_2d(np.ones(3), name="queries")


class TestUnitNormChecks:
    def test_is_unit_normalized_true(self):
        rng = np.random.default_rng(0)
        X = normalize_rows(rng.normal(size=(10, 6)))
        assert is_unit_normalized(X)

    def test_is_unit_normalized_false(self):
        assert not is_unit_normalized(np.ones((3, 3)))

    def test_check_unit_norm_passes_through(self):
        rng = np.random.default_rng(1)
        X = normalize_rows(rng.normal(size=(5, 4)))
        assert check_unit_norm(X) is not None

    def test_check_unit_norm_rejects_and_reports_magnitude(self):
        with pytest.raises(DataValidationError, match="normalize_rows"):
            check_unit_norm(2.0 * np.eye(3))

    def test_tolerates_float32_noise(self):
        rng = np.random.default_rng(2)
        X = normalize_rows(rng.normal(size=(8, 5))).astype(np.float32)
        assert is_unit_normalized(np.asarray(X, dtype=np.float64))
