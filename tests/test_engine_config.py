"""Tests for IndexSpec / ExecutionConfig: validation and serialization.

The serialization contract matters beyond tidiness: ``to_dict`` /
``from_dict`` is the wire format the distributed follow-on needs to
ship an execution policy to a remote worker, so the round-trip must be
JSON-safe, lossless, and strict about unknown keys.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine_config import DEFAULT_ENGINE_BLOCK, ExecutionConfig, IndexSpec
from repro.exceptions import InvalidParameterError
from repro.index import BruteForceIndex, CoverTree, GridIndex, KMeansTree
from repro.index.sharded import ShardingConfig


class TestIndexSpec:
    @pytest.mark.parametrize(
        "name,kwargs,cls",
        [
            ("brute_force", {}, BruteForceIndex),
            ("cover_tree", {"base": 1.7}, CoverTree),
            ("kmeans_tree", {"checks_ratio": 1.0, "seed": 0}, KMeansTree),
            ("grid", {"eps": 0.5, "rho": 1.0}, GridIndex),
        ],
    )
    def test_make_resolves_registered_backends(self, name, kwargs, cls):
        index = IndexSpec(name, kwargs).make()
        assert isinstance(index, cls)
        assert not index.is_built

    def test_kwargs_reach_the_constructor(self):
        tree = IndexSpec("cover_tree", {"base": 1.7}).make()
        assert tree.base == 1.7

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown index backend"):
            IndexSpec("faiss")

    def test_non_callable_factory_rejected(self):
        with pytest.raises(InvalidParameterError, match="callable"):
            IndexSpec("custom", factory="not-a-callable")

    def test_custom_factory_resolves(self):
        made = []

        def factory():
            index = BruteForceIndex()
            made.append(index)
            return index

        spec = IndexSpec.custom(factory)
        assert spec.is_custom
        assert spec.make() is made[0]

    def test_custom_factory_not_serializable(self):
        spec = IndexSpec.custom(BruteForceIndex)
        with pytest.raises(InvalidParameterError, match="not serializable"):
            spec.to_dict()

    def test_round_trip(self):
        spec = IndexSpec("cover_tree", {"base": 1.7})
        assert IndexSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(InvalidParameterError, match="unknown IndexSpec keys"):
            IndexSpec.from_dict({"name": "brute_force", "block": 64})

    def test_from_dict_requires_name(self):
        with pytest.raises(InvalidParameterError, match="missing 'name'"):
            IndexSpec.from_dict({"kwargs": {}})

    def test_equality_is_by_value(self):
        assert IndexSpec("grid", {"eps": 0.5}) == IndexSpec("grid", {"eps": 0.5})
        assert IndexSpec("grid", {"eps": 0.5}) != IndexSpec("grid", {"eps": 0.6})

    def test_specs_are_hashable_value_types(self):
        # Equal specs hash equal (usable as dict keys / set members)
        # even though kwargs is a dict internally.
        a = IndexSpec("cover_tree", {"base": 1.8})
        b = IndexSpec("cover_tree", {"base": 1.8})
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"
        assert len({a, b}) == 1
        cfg = ExecutionConfig(index=a, sharding=ShardingConfig(n_shards=2))
        assert cfg in {ExecutionConfig(index=b, sharding=ShardingConfig(n_shards=2))}

    def test_specs_pickle(self):
        import pickle

        cfg = ExecutionConfig(
            index=IndexSpec("cover_tree", {"base": 1.8}),
            sharding=ShardingConfig(n_shards=2),
        )
        assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestExecutionConfigValidation:
    def test_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.index is None
        assert cfg.sharding is None
        assert cfg.batch_queries is True
        assert cfg.query_block == DEFAULT_ENGINE_BLOCK
        assert cfg.cache_eviction == "serve"
        assert cfg.evict_on_fetch is True

    def test_keep_eviction_policy(self):
        assert ExecutionConfig(cache_eviction="keep").evict_on_fetch is False

    def test_rejects_bad_query_block(self):
        with pytest.raises(InvalidParameterError, match="query_block"):
            ExecutionConfig(query_block=0)

    def test_rejects_bad_eviction_policy(self):
        with pytest.raises(InvalidParameterError, match="cache_eviction"):
            ExecutionConfig(cache_eviction="lru")

    def test_rejects_non_spec_index(self):
        with pytest.raises(InvalidParameterError, match="IndexSpec"):
            ExecutionConfig(index="brute_force")

    def test_rejects_non_config_sharding(self):
        with pytest.raises(InvalidParameterError, match="ShardingConfig"):
            ExecutionConfig(sharding=4)


class TestExecutionConfigSerialization:
    def full_config(self) -> ExecutionConfig:
        return ExecutionConfig(
            index=IndexSpec("kmeans_tree", {"checks_ratio": 1.0, "seed": 3}),
            sharding=ShardingConfig(
                n_shards=4, executor="process", n_workers=2, query_block=512
            ),
            query_block=256,
            cache_eviction="keep",
        )

    def test_round_trip_is_lossless(self):
        cfg = self.full_config()
        assert ExecutionConfig.from_dict(cfg.to_dict()) == cfg

    def test_round_trip_of_defaults(self):
        cfg = ExecutionConfig()
        assert ExecutionConfig.from_dict(cfg.to_dict()) == cfg

    def test_round_trip_of_per_point_config(self):
        cfg = ExecutionConfig(batch_queries=False, cache_eviction="keep")
        assert ExecutionConfig.from_dict(cfg.to_dict()) == cfg

    def test_dict_is_json_safe(self):
        cfg = self.full_config()
        payload = json.dumps(cfg.to_dict())
        assert ExecutionConfig.from_dict(json.loads(payload)) == cfg

    def test_from_dict_rejects_unknown_top_level_keys(self):
        with pytest.raises(InvalidParameterError, match="unknown ExecutionConfig"):
            ExecutionConfig.from_dict({"batch_queries": True, "gpu": True})

    def test_from_dict_rejects_unknown_sharding_keys(self):
        payload = self.full_config().to_dict()
        payload["sharding"]["replication"] = 2
        with pytest.raises(InvalidParameterError, match="unknown ShardingConfig"):
            ExecutionConfig.from_dict(payload)

    def test_from_dict_rejects_unknown_index_keys(self):
        payload = self.full_config().to_dict()
        payload["index"]["metric"] = "cosine"
        with pytest.raises(InvalidParameterError, match="unknown IndexSpec"):
            ExecutionConfig.from_dict(payload)

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(InvalidParameterError, match="mapping"):
            ExecutionConfig.from_dict([("batch_queries", True)])

    def test_from_dict_validates_reconstructed_values(self):
        payload = self.full_config().to_dict()
        payload["sharding"]["executor"] = "gpu"
        with pytest.raises(InvalidParameterError):
            ExecutionConfig.from_dict(payload)

    def test_from_dict_is_strict_about_field_types(self):
        # A stringly-typed payload must fail loudly, never coerce:
        # bool("false") is True, which would silently flip the path.
        with pytest.raises(InvalidParameterError, match="batch_queries"):
            ExecutionConfig.from_dict({"batch_queries": "false"})
        with pytest.raises(InvalidParameterError, match="query_block"):
            ExecutionConfig.from_dict({"query_block": "abc"})
        with pytest.raises(InvalidParameterError, match="query_block"):
            ExecutionConfig.from_dict({"query_block": True})
        with pytest.raises(InvalidParameterError, match="cache_eviction"):
            ExecutionConfig.from_dict({"cache_eviction": 3})

    def test_sharding_opt_out_round_trips(self):
        cfg = ExecutionConfig(sharding=False)
        payload = json.loads(json.dumps(cfg.to_dict()))
        assert payload["sharding"] is False
        assert ExecutionConfig.from_dict(payload) == cfg

    def test_deserialized_config_drives_a_fit(self):
        """The wire format reconstructs a config a clusterer can run."""
        from repro.clustering import DBSCAN
        from repro.testing import make_blobs_on_sphere

        X, _ = make_blobs_on_sphere(20, 3, 8, spread=0.2, seed=0)
        cfg = ExecutionConfig(
            index=IndexSpec("cover_tree", {"base": 1.6}),
            sharding=ShardingConfig(n_shards=2),
        )
        wired = ExecutionConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        baseline = DBSCAN(eps=0.5, tau=4).fit(X)
        result = DBSCAN(eps=0.5, tau=4, execution=wired).fit(X)
        assert np.array_equal(baseline.labels, result.labels)
        assert result.stats["shard_live_shards"] == 2
