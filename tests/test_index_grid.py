"""Tests for the rho-approximate grid index, especially the sandwich."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import normalize_rows
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.index import BruteForceIndex, GridIndex


def random_unit(n, dim, seed):
    rng = np.random.default_rng(seed)
    return normalize_rows(rng.normal(size=(n, dim)))


@pytest.fixture(scope="module")
def grid_and_data():
    X = random_unit(150, 24, seed=1)
    return GridIndex(eps=0.5, rho=0.5).build(X), X


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            GridIndex(eps=0.0)
        with pytest.raises(InvalidParameterError):
            GridIndex(eps=2.5)
        with pytest.raises(InvalidParameterError):
            GridIndex(eps=0.5, rho=0.0)

    def test_unbuilt_raises(self):
        with pytest.raises(NotFittedError):
            GridIndex(eps=0.5).approx_range_count(np.zeros(3))

    def test_cells_partition_points(self, grid_and_data):
        grid, X = grid_and_data
        all_points = np.concatenate(grid.cell_points)
        assert sorted(all_points.tolist()) == list(range(X.shape[0]))

    def test_cell_of_consistent(self, grid_and_data):
        grid, X = grid_and_data
        for p in (0, 50, 149):
            cell = grid.cell_of(p)
            assert p in grid.cell_points[cell]

    def test_cell_sizes_sum(self, grid_and_data):
        grid, X = grid_and_data
        assert grid.cell_sizes().sum() == X.shape[0]

    def test_high_dim_one_point_per_cell(self):
        # In high dimensions the cell side is tiny: the degenerate regime
        # the paper blames for rho-approx's slowness.
        X = random_unit(80, 256, seed=2)
        grid = GridIndex(eps=0.5, rho=1.0).build(X)
        assert grid.n_cells == 80

    def test_cell_members_within_diagonal(self, grid_and_data):
        # All points sharing a cell are mutually within eps (cosine).
        grid, X = grid_and_data
        for members in grid.cell_points:
            if members.size < 2:
                continue
            pts = X[members]
            d = 1.0 - pts @ pts.T
            assert d.max() < 0.5 + 1e-9


class TestSandwichGuarantee:
    @pytest.mark.parametrize("rho", [0.1, 0.5, 1.0])
    def test_count_sandwich(self, rho):
        X = random_unit(120, 16, seed=4)
        eps = 0.45
        grid = GridIndex(eps=eps, rho=rho).build(X)
        brute = BruteForceIndex().build(X)
        eps_outer = min(2.0, ((1 + rho) ** 2) * eps)  # euclid scaling -> cosine
        for qi in range(0, 120, 9):
            inner = brute.range_count(X[qi], eps)
            outer = brute.range_count(X[qi], eps_outer)
            approx = grid.approx_range_count(X[qi])
            assert inner <= approx <= outer, (qi, inner, approx, outer)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_property_sandwich(self, seed):
        X = random_unit(60, 8, seed=seed)
        eps, rho = 0.4, 0.6
        grid = GridIndex(eps=eps, rho=rho).build(X)
        brute = BruteForceIndex().build(X)
        eps_outer = min(2.0, ((1 + rho) ** 2) * eps)
        q = X[seed % 60]
        inner = brute.range_count(q, eps)
        outer = brute.range_count(q, eps_outer)
        assert inner <= grid.approx_range_count(q) <= outer


class TestExactQueries:
    def test_exact_range_query_matches_brute(self, grid_and_data):
        grid, X = grid_and_data
        brute = BruteForceIndex().build(X)
        for qi in (0, 30, 99):
            got = set(grid.exact_range_query(X[qi]).tolist())
            expected = set(brute.range_query(X[qi], 0.5).tolist())
            assert got == expected

    def test_exact_range_query_custom_eps(self, grid_and_data):
        grid, X = grid_and_data
        brute = BruteForceIndex().build(X)
        got = set(grid.exact_range_query(X[5], eps=0.3).tolist())
        assert got == set(brute.range_query(X[5], 0.3).tolist())

    def test_cells_within_includes_close_cells(self, grid_and_data):
        grid, X = grid_and_data
        # A cell is always within any positive distance of itself.
        nearby = grid.cells_within(0, 0.1)
        assert 0 in nearby.tolist()
