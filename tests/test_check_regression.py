"""Unit tests for the CI benchmark-regression gate and atomic JSON writes.

``benchmarks/check_regression.py`` is loaded by file path (the
``benchmarks/`` directory is not a package); the tests drive it over
synthetic baseline/fresh pairs in a tmp dir, including the acceptance
scenario: a synthetic slowdown beyond 25% must fail the gate.
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys

import pytest

from repro.experiments.reporting import save_json

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "check_regression.py"
)

spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
sys.modules[spec.name] = check_regression
spec.loader.exec_module(check_regression)


def write_rows(directory, name, rows):
    directory.mkdir(exist_ok=True)
    (directory / name).write_text(json.dumps({"rows": rows}) + "\n")


@pytest.fixture
def dirs(tmp_path):
    baselines = tmp_path / "baselines"
    out = tmp_path / "out"
    return baselines, out


BASE_ROW = {"n": 8000, "dim": 16, "query_speedup": 4.0, "scalar_query_s": 6.0}


class TestGateVerdicts:
    def test_unchanged_metrics_pass(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(out, "bench.json", [BASE_ROW])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 0
        )

    def test_synthetic_25_percent_slowdown_fails(self, dirs):
        # A batched path 25% slower than baseline at fixed scalar time
        # drops the speedup from 4.0 to 4.0/1.25 = 3.2 — a 20% metric
        # drop, inside tolerance. Make the slowdown bite harder: 40%
        # slower -> speedup 2.857, a 28.6% drop, beyond the 25% gate.
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(out, "bench.json", [dict(BASE_ROW, query_speedup=4.0 / 1.4)])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 1
        )

    def test_drop_within_threshold_passes(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(out, "bench.json", [dict(BASE_ROW, query_speedup=3.1)])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 0
        )

    def test_threshold_is_configurable(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(out, "bench.json", [dict(BASE_ROW, query_speedup=3.5)])
        args = ["--baselines", str(baselines), "--out", str(out)]
        assert check_regression.main(args + ["--threshold", "0.05"]) == 1
        assert check_regression.main(args + ["--threshold", "0.25"]) == 0

    def test_improvements_pass(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(out, "bench.json", [dict(BASE_ROW, query_speedup=9.0)])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 0
        )

    def test_untracked_timings_are_ignored(self, dirs):
        # Absolute seconds vary across runners; only *_speedup gates.
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(out, "bench.json", [dict(BASE_ROW, scalar_query_s=60.0)])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 0
        )


class TestCpuAwareSkips:
    """Multi-core baselines must not gate smaller machines."""

    CPU_ROW = dict(BASE_ROW, usable_cpus=4)

    def test_fewer_cpus_than_baseline_skips_regression(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [self.CPU_ROW])
        # A crash on 1 CPU of a ratio anchored on 4 CPUs: not gated.
        write_rows(
            out, "bench.json", [dict(self.CPU_ROW, usable_cpus=1, query_speedup=0.9)]
        )
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 0
        )

    def test_equal_or_more_cpus_still_gates(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [self.CPU_ROW])
        write_rows(
            out, "bench.json", [dict(self.CPU_ROW, usable_cpus=8, query_speedup=0.9)]
        )
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 1
        )

    def test_baseline_without_cpu_field_gates_normally(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(
            out, "bench.json", [dict(BASE_ROW, usable_cpus=1, query_speedup=0.9)]
        )
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 1
        )

    def test_fewer_cpus_does_not_excuse_a_missing_row(self, dirs):
        # The skip is about incomparable ratios, not absent benchmarks:
        # a vanished fresh row still fails.
        baselines, out = dirs
        write_rows(baselines, "bench.json", [self.CPU_ROW])
        write_rows(out, "bench.json", [dict(self.CPU_ROW, n=123, usable_cpus=1)])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 1
        )


class TestGateRobustness:
    def test_missing_fresh_file_fails(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        out.mkdir()
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 1
        )

    def test_missing_fresh_row_fails(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(out, "bench.json", [dict(BASE_ROW, n=2000)])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 1
        )

    def test_extra_fresh_rows_do_not_fail(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        write_rows(out, "bench.json", [BASE_ROW, dict(BASE_ROW, n=16000)])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 0
        )

    def test_rows_matched_by_identity_not_position(self, dirs):
        baselines, out = dirs
        row_a = dict(BASE_ROW, n=2000, query_speedup=8.0)
        write_rows(baselines, "bench.json", [row_a, BASE_ROW])
        write_rows(out, "bench.json", [BASE_ROW, row_a])
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 0
        )

    def test_truncated_fresh_json_fails_cleanly(self, dirs):
        baselines, out = dirs
        write_rows(baselines, "bench.json", [BASE_ROW])
        out.mkdir()
        (out / "bench.json").write_text('{"rows": [{"n": 8000, "query_')
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 1
        )

    def test_empty_baselines_dir_fails(self, dirs):
        baselines, out = dirs
        baselines.mkdir()
        out.mkdir()
        assert (
            check_regression.main(["--baselines", str(baselines), "--out", str(out)])
            == 1
        )


class TestAtomicSaveJson:
    """The writers the gate reads from must never leave torn files."""

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "result.json"
        save_json(str(path), {"rows": [{"n": 1}]})
        assert json.loads(path.read_text()) == {"rows": [{"n": 1}]}

    def test_overwrite_replaces_whole_document(self, tmp_path):
        path = tmp_path / "result.json"
        save_json(str(path), {"rows": list(range(1000))})
        save_json(str(path), {"rows": [1]})
        assert json.loads(path.read_text()) == {"rows": [1]}

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "result.json"
        save_json(str(path), {"ok": True})
        assert os.listdir(tmp_path) == ["result.json"]

    def test_failed_serialization_leaves_no_artifacts(self, tmp_path):
        path = tmp_path / "result.json"
        with pytest.raises(TypeError):
            save_json(str(path), {"bad": object()})
        assert os.listdir(tmp_path) == []
