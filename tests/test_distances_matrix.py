"""Tests for batched/blockwise distance matrices."""

import numpy as np
import pytest

from repro.distances import (
    cosine_distance,
    cosine_distance_matrix,
    euclidean_distance_matrix,
    iter_distance_blocks,
    normalize_rows,
    pairwise_cosine_within,
)
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def matrices():
    rng = np.random.default_rng(5)
    Q = normalize_rows(rng.normal(size=(17, 8)))
    X = normalize_rows(rng.normal(size=(29, 8)))
    return Q, X


class TestCosineDistanceMatrix:
    def test_shape(self, matrices):
        Q, X = matrices
        assert cosine_distance_matrix(Q, X).shape == (17, 29)

    def test_entries_match_scalar(self, matrices):
        Q, X = matrices
        D = cosine_distance_matrix(Q, X)
        for i in (0, 7, 16):
            for j in (0, 13, 28):
                assert D[i, j] == pytest.approx(cosine_distance(Q[i], X[j]), abs=1e-12)

    def test_self_matrix_zero_diagonal(self, matrices):
        _, X = matrices
        D = pairwise_cosine_within(X)
        assert np.allclose(np.diag(D), 0.0, atol=1e-12)
        assert np.allclose(D, D.T, atol=1e-12)


class TestEuclideanDistanceMatrix:
    def test_matches_norm(self, matrices):
        Q, X = matrices
        D = euclidean_distance_matrix(Q, X)
        brute = np.linalg.norm(Q[:, None, :] - X[None, :, :], axis=2)
        assert np.allclose(D, brute, atol=1e-9)

    def test_no_negative_under_rounding(self):
        X = np.ones((5, 4)) / 2.0
        D = euclidean_distance_matrix(X, X)
        assert (D >= 0).all()


class TestIterDistanceBlocks:
    def test_concatenation_equals_full_matrix(self, matrices):
        Q, X = matrices
        full = cosine_distance_matrix(Q, X)
        parts = []
        for start, stop, block in iter_distance_blocks(Q, X, block_size=5):
            assert block.shape == (stop - start, X.shape[0])
            parts.append(block)
        assert np.allclose(np.vstack(parts), full)

    def test_block_boundaries_cover_exactly(self, matrices):
        Q, X = matrices
        spans = [(s, e) for s, e, _ in iter_distance_blocks(Q, X, block_size=4)]
        assert spans[0][0] == 0
        assert spans[-1][1] == Q.shape[0]
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert prev_end == next_start

    def test_single_block_when_large(self, matrices):
        Q, X = matrices
        blocks = list(iter_distance_blocks(Q, X, block_size=1000))
        assert len(blocks) == 1

    def test_invalid_block_size(self, matrices):
        Q, X = matrices
        with pytest.raises(InvalidParameterError):
            list(iter_distance_blocks(Q, X, block_size=0))
