"""reprolint: good/bad snippet pairs per rule, pragmas, CLI, self-clean."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from reprolint import Finding, all_rule_codes, lint_source
from reprolint.cli import main as reprolint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(findings: list[Finding]) -> list[str]:
    return [f.code for f in findings]


def lint(source: str, path: str = "src/repro/mod.py") -> list[Finding]:
    return lint_source(source, path)


# ---------------------------------------------------------------------------
# RPL001 resource lifecycle
# ---------------------------------------------------------------------------


class TestResourceLifecycle:
    def test_unscoped_shared_memory_flagged(self):
        src = (
            "def f(name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    return 1\n"
        )
        assert codes(lint(src)) == ["RPL001"]

    def test_discarded_resource_call_flagged(self):
        src = "def f():\n    socket.socket()\n"
        assert codes(lint(src)) == ["RPL001"]

    def test_with_statement_ok(self):
        src = (
            "def f():\n"
            "    with socket.socket() as s:\n"
            "        s.connect(('h', 1))\n"
        )
        assert codes(lint(src)) == []

    def test_engine_call_outside_with_flagged(self):
        src = "def f(self, X):\n    eng = self._engine(X)\n    return 1\n"
        assert codes(lint(src)) == ["RPL001"]

    def test_engine_call_as_with_item_ok(self):
        src = (
            "def f(self, X):\n"
            "    with self._engine(X) as eng:\n"
            "        return eng.query()\n"
        )
        assert codes(lint(src)) == []

    def test_closed_in_finally_ok(self):
        src = (
            "def f(name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    try:\n"
            "        return shm.buf[0]\n"
            "    finally:\n"
            "        shm.close()\n"
        )
        assert codes(lint(src)) == []

    def test_returned_resource_ok(self):
        # handing the resource to the caller transfers ownership
        src = (
            "def connect(h, p):\n"
            "    sock = socket.create_connection((h, p))\n"
            "    return sock\n"
        )
        assert codes(lint(src)) == []

    def test_attribute_binding_ok(self):
        # self._shm has an owner with its own close(); not a local leak
        src = "def open(self, n):\n    self._shm = SharedMemory(create=True, size=n)\n"
        assert codes(lint(src)) == []

    def test_executor_flagged(self):
        src = "def f():\n    pool = ProcessPoolExecutor(4)\n    pool.submit(g)\n"
        assert codes(lint(src)) == ["RPL001"]


# ---------------------------------------------------------------------------
# RPL002 pickle safety
# ---------------------------------------------------------------------------


class TestPickleSafety:
    def test_pickle_import_flagged(self):
        assert codes(lint("import pickle\n")) == ["RPL002"]

    def test_pickle_from_import_flagged(self):
        assert codes(lint("from pickle import dumps\n")) == ["RPL002"]

    def test_np_load_without_kwarg_flagged(self):
        assert codes(lint("data = np.load(p)\n")) == ["RPL002"]

    def test_np_load_allow_pickle_true_flagged(self):
        assert codes(lint("data = np.load(p, allow_pickle=True)\n")) == ["RPL002"]

    def test_np_load_allow_pickle_false_ok(self):
        assert codes(lint("data = np.load(p, allow_pickle=False)\n")) == []

    def test_np_savez_always_flagged(self):
        assert codes(lint("np.savez(p, x=a)\n")) == ["RPL002"]

    def test_out_of_scope_path_not_flagged(self):
        assert codes(lint_source("import pickle\n", "benchmarks/bench.py")) == []


# ---------------------------------------------------------------------------
# RPL003 module-level mutable state
# ---------------------------------------------------------------------------


class TestModuleState:
    def test_module_level_dict_flagged(self):
        assert codes(lint("STATE = {}\n")) == ["RPL003"]

    def test_annotated_module_level_dict_flagged(self):
        assert codes(lint("_CACHE: dict = {}\n")) == ["RPL003"]

    def test_registry_suffix_ok(self):
        assert codes(lint("_INDEX_REGISTRY: dict = {}\n")) == []

    def test_dunder_all_ok(self):
        assert codes(lint("__all__ = ['a', 'b']\n")) == []

    def test_frozen_constant_ok(self):
        assert codes(lint("LIMITS = (1, 2, 3)\nNAME = 'x'\n")) == []

    def test_function_local_dict_ok(self):
        assert codes(lint("def f():\n    cache = {}\n    return cache\n")) == []


# ---------------------------------------------------------------------------
# RPL004 typed errors
# ---------------------------------------------------------------------------


class TestTypedErrors:
    def test_ad_hoc_runtime_error_flagged(self):
        assert codes(lint("raise RuntimeError('boom')\n")) == ["RPL004"]

    def test_repro_exception_ok(self):
        assert codes(lint("raise InvalidParameterError('bad eps')\n")) == []

    def test_builtin_whitelist_ok(self):
        src = "raise ValueError('x')\nraise TypeError('y')\nraise NotImplementedError\n"
        assert codes(lint(src)) == []

    def test_reraise_variable_ok(self):
        src = "try:\n    f()\nexcept ValueError as exc:\n    raise exc\n"
        assert codes(lint(src)) == []

    def test_bare_raise_ok(self):
        src = "try:\n    f()\nexcept ValueError:\n    raise\n"
        assert codes(lint(src)) == []

    def test_dotted_whitelist_ok(self):
        assert codes(lint("raise argparse.ArgumentTypeError('x')\n")) == []

    def test_exceptions_module_attribute_ok(self):
        assert codes(lint("raise exceptions.PersistenceError('x')\n")) == []

    def test_out_of_scope_not_flagged(self):
        assert codes(lint_source("raise RuntimeError('x')\n", "tests/t.py")) == []


# ---------------------------------------------------------------------------
# RPL005 wire safety
# ---------------------------------------------------------------------------


class TestWireSafety:
    def test_sendall_outside_protocol_flagged(self):
        src = "def f(sock, buf):\n    sock.sendall(buf)\n"
        assert codes(lint_source(src, "src/repro/remote/pool.py")) == ["RPL005"]

    def test_sendall_inside_protocol_ok(self):
        src = "def f(sock, buf):\n    sock.sendall(buf)\n"
        assert codes(lint_source(src, "src/repro/remote/protocol.py")) == []

    def test_sendall_in_tests_flagged_too(self):
        src = "def f(sock):\n    sock.sendall(b'x')\n"
        assert codes(lint_source(src, "tests/test_x.py")) == ["RPL005"]


# ---------------------------------------------------------------------------
# RPL006 global RNG state
# ---------------------------------------------------------------------------


class TestGlobalRandom:
    def test_global_np_random_call_flagged(self):
        assert codes(lint("x = np.random.rand(3)\n")) == ["RPL006"]

    def test_seed_call_flagged(self):
        assert codes(lint("np.random.seed(0)\n")) == ["RPL006"]

    def test_default_rng_ok(self):
        assert codes(lint("rng = np.random.default_rng(0)\n")) == []

    def test_generator_annotation_ok(self):
        assert codes(lint("def f(rng: np.random.Generator): ...\n")) == []

    def test_out_of_scope_not_flagged(self):
        assert codes(lint_source("np.random.rand(3)\n", "benchmarks/b.py")) == []


# ---------------------------------------------------------------------------
# RPL007 swallowed exceptions
# ---------------------------------------------------------------------------


class TestSwallowedExceptions:
    def test_bare_except_flagged(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert codes(lint(src)) == ["RPL007"]

    def test_blind_except_pass_flagged(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert codes(lint(src)) == ["RPL007"]

    def test_blind_except_assignment_only_flagged(self):
        src = "try:\n    f()\nexcept Exception:\n    x = None\n"
        assert codes(lint(src)) == ["RPL007"]

    def test_blind_except_with_logging_ok(self):
        src = "try:\n    f()\nexcept Exception as e:\n    log.warning(e)\n"
        assert codes(lint(src)) == []

    def test_blind_except_reraise_ok(self):
        src = (
            "try:\n"
            "    f()\n"
            "except Exception as e:\n"
            "    raise ValueError('ctx') from e\n"
        )
        assert codes(lint(src)) == []

    def test_typed_swallow_ok(self):
        # swallowing a *specific* type is a deliberate, reviewable choice
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert codes(lint(src)) == []


# ---------------------------------------------------------------------------
# RPL008 float equality
# ---------------------------------------------------------------------------


class TestFloatEquality:
    def test_float_equality_flagged(self):
        assert codes(lint("ok = d == 0.0\n")) == ["RPL008"]

    def test_float_inequality_flagged(self):
        assert codes(lint("ok = d != 1.5\n")) == ["RPL008"]

    def test_clamp_idiom_exempt(self):
        assert codes(lint("norms[norms == 0.0] = 1.0\n")) == []

    def test_integer_equality_ok(self):
        assert codes(lint("ok = n == 0\n")) == []

    def test_threshold_comparison_ok(self):
        assert codes(lint("ok = abs(d) <= 1e-12\n")) == []


# ---------------------------------------------------------------------------
# Pragmas and engine behavior
# ---------------------------------------------------------------------------


class TestPragmas:
    def test_line_pragma_suppresses(self):
        src = "STATE = {}  # reprolint: disable=RPL003 -- justified\n"
        assert codes(lint(src)) == []

    def test_line_pragma_wrong_code_does_not_suppress(self):
        src = "STATE = {}  # reprolint: disable=RPL008\n"
        assert codes(lint(src)) == ["RPL003"]

    def test_file_pragma_suppresses_everywhere(self):
        src = (
            "# reprolint: disable-file=RPL003\n"
            "STATE = {}\n"
            "OTHER = {}\n"
        )
        assert codes(lint(src)) == []

    def test_pragma_in_string_literal_ignored(self):
        src = "x = 'reprolint: disable=RPL003'\nSTATE = {}\n"
        assert codes(lint(src)) == ["RPL003"]

    def test_multi_code_pragma(self):
        src = "STATE = {}  # reprolint: disable=RPL003,RPL008\n"
        assert codes(lint(src)) == []


class TestEngine:
    def test_syntax_error_reported_as_rpl000(self):
        findings = lint("def f(:\n")
        assert codes(findings) == ["RPL000"]

    def test_findings_sorted_and_located(self):
        src = "A = {}\nB = {}\n"
        findings = lint(src)
        assert [f.line for f in findings] == [1, 2]
        assert findings[0].path == "src/repro/mod.py"

    def test_every_rule_has_a_code(self):
        assert all_rule_codes() == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL008",
        ]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_json_report(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import pickle\n")
        out = tmp_path / "report.json"
        rc = reprolint_main(
            [str(bad), "--format", "json", "--output", str(out)]
        )
        assert rc == 1
        report = json.loads(out.read_text())
        assert report["tool"] == "reprolint"
        assert report["counts"] == {"RPL002": 1}
        assert report["checked_files"] == 1
        assert report["findings"][0]["code"] == "RPL002"

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("X = (1, 2)\n")
        assert reprolint_main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_rule_codes():
            assert code in out

    def test_select_unknown_code_is_usage_error(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("X = 1\n")
        with pytest.raises(SystemExit) as exc:
            reprolint_main([str(good), "--select", "RPL999"])
        assert exc.value.code == 2

    def test_self_clean_on_repo(self):
        """The repo's own invariant gate: `python -m reprolint src benchmarks`."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]
        )
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", "src", "benchmarks"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
