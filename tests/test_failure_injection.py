"""Failure injection: LAF must degrade gracefully under broken estimators.

A plugin framework is judged by what happens when the plugin misbehaves.
These tests drive LAF-DBSCAN with adversarial estimators — constant-zero
(everything predicted stop), constant-infinity (nothing skipped),
anti-oracle (inverted predictions) and a NaN producer — and assert the
framework's contracts instead of crashing or corrupting labels.
"""

import numpy as np

from repro.clustering import DBSCAN
from repro.core import LAFDBSCAN, LAFDBSCANPlusPlus
from repro.estimators import CardinalityEstimator, ExactCardinalityEstimator
from repro.index import BruteForceIndex
from repro.metrics import adjusted_rand_index


class ConstantEstimator(CardinalityEstimator):
    """Predicts the same fraction for every query."""

    def __init__(self, fraction: float) -> None:
        self.fraction = fraction

    def fit(self, X_train):
        return self

    def predict_fraction(self, Q, eps):
        return np.full(np.atleast_2d(Q).shape[0], self.fraction)


class AntiOracleEstimator(CardinalityEstimator):
    """Deliberately inverted: high counts for sparse points and vice versa."""

    def fit(self, X_train):
        return self

    def bind(self, X_target):
        super().bind(X_target)
        self._index = BruteForceIndex().build(np.asarray(X_target, dtype=np.float64))
        return self

    def predict_fraction(self, Q, eps):
        true = self._index.range_count_many(np.atleast_2d(Q), eps) / self.n_target
        return 1.0 - true


class NaNEstimator(ConstantEstimator):
    def __init__(self):
        super().__init__(np.nan)


class TestConstantZero:
    """Everything predicted stop: no queries, all noise, empty E-evidence."""

    def test_all_noise_no_queries(self, clusterable_data):
        result = LAFDBSCAN(
            eps=0.5, tau=5, estimator=ConstantEstimator(0.0), alpha=1.0
        ).fit(clusterable_data)
        assert result.noise_ratio == 1.0
        assert result.stats["range_queries"] == 0
        # No queries ever ran, so E has no evidence; nothing merges.
        assert result.stats["merges"] == 0


class TestConstantMax:
    """Everything predicted core: zero skips, output equals plain DBSCAN."""

    def test_equals_dbscan(self, clusterable_data):
        exact = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        result = LAFDBSCAN(
            eps=0.5, tau=5, estimator=ConstantEstimator(1.0), alpha=1.0
        ).fit(clusterable_data)
        assert result.stats["skipped_queries"] == 0
        assert np.array_equal(result.labels, exact.labels)

    def test_laf_dbscanpp_no_skips(self, clusterable_data):
        result = LAFDBSCANPlusPlus(
            eps=0.5, tau=5, estimator=ConstantEstimator(1.0), p=0.5, seed=0
        ).fit(clusterable_data)
        assert result.stats["skipped_queries"] == 0


class TestAntiOracle:
    """Inverted predictions: worst case, but output must stay well-formed
    and post-processing must detect the false negatives it can prove."""

    def test_labels_well_formed(self, clusterable_data):
        result = LAFDBSCAN(
            eps=0.5, tau=5, estimator=AntiOracleEstimator(), alpha=1.0, seed=0
        ).fit(clusterable_data)
        labels = result.labels
        assert labels.min() >= -1
        non_noise = np.unique(labels[labels >= 0])
        assert list(non_noise) == list(range(len(non_noise)))

    def test_quality_is_poor_but_finite(self, clusterable_data):
        exact = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        result = LAFDBSCAN(
            eps=0.5, tau=5, estimator=AntiOracleEstimator(), alpha=1.0, seed=0
        ).fit(clusterable_data)
        score = adjusted_rand_index(exact.labels, result.labels)
        assert np.isfinite(score)
        oracle = LAFDBSCAN(
            eps=0.5, tau=5, estimator=ExactCardinalityEstimator(), alpha=1.0
        ).fit(clusterable_data)
        assert adjusted_rand_index(exact.labels, oracle.labels) >= score


class TestNaNEstimator:
    """NaN predictions fail the gate comparison (NaN >= x is False), so
    every point is treated as a stop point — defined, not poisoned."""

    def test_nan_treated_as_stop(self, clusterable_data):
        result = LAFDBSCAN(eps=0.5, tau=5, estimator=NaNEstimator(), alpha=1.0).fit(
            clusterable_data
        )
        assert result.noise_ratio == 1.0
        assert not np.isnan(result.labels).any()


class TestEstimatorContractViolations:
    def test_negative_fraction_clipped(self, clusterable_data):
        result = LAFDBSCAN(
            eps=0.5, tau=5, estimator=ConstantEstimator(-3.0), alpha=1.0
        ).fit(clusterable_data)
        assert result.noise_ratio == 1.0  # clipped to zero -> all stop

    def test_fraction_above_one_clipped(self, clusterable_data):
        exact = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        result = LAFDBSCAN(
            eps=0.5, tau=5, estimator=ConstantEstimator(50.0), alpha=1.0
        ).fit(clusterable_data)
        # Clipped to 1.0 -> everything predicted core -> DBSCAN output.
        assert np.array_equal(result.labels, exact.labels)
