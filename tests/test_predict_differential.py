"""Differential tests of the serving path against the fits it freezes.

The predict contract (see :class:`repro.persistence.ClusterModel` and
``docs/persistence.md``): a new point takes the label of its nearest
core point within ``eps`` (strict ``<``, ties to the smallest training
index), noise otherwise. Because every core point is at distance zero of
itself and mutually-zero-distance cores always share a cluster,
``predict(X_train)`` must reproduce the fit labels on **every core
point of every clusterer** — that is the differential anchor. Border
points are only pinned, not required to match the fit: a border in two
clusters' reach is assigned in discovery order by the fit but by
proximity by predict (both are valid DBSCAN outputs; the ambiguity is
inherent to border points).

A loaded model must predict identically to the in-memory model it was
saved from — bit-identical labels on the same queries.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.distances import normalize_rows
from repro.estimators import ExactCardinalityEstimator
from repro.persistence import ClusterModel
from repro.testing import make_blobs_on_sphere

EPS = 0.4
TAU = 3

#: algo name -> extra constructor params (full-sample for the sampling
#: methods, so the core set is deterministic and covers the blobs).
ALGOS = {
    "dbscan": {},
    "dbscan++": {"p": 1.0},
    "knn-block": {},
    "block-dbscan": {},
    "rho-approx": {},
    "laf-dbscan": {},
    "laf-dbscan++": {"p": 1.0},
}


def algo_params(algo: str) -> dict:
    params = dict(ALGOS[algo])
    if algo.startswith("laf"):
        params["estimator"] = ExactCardinalityEstimator()
    return params


@pytest.fixture(scope="module")
def blobs() -> np.ndarray:
    X, _ = make_blobs_on_sphere(20, 4, 16, seed=1)
    noise = normalize_rows(np.random.default_rng(5).normal(size=(15, 16)))
    return np.vstack([X, noise])


@pytest.mark.parametrize("algo", sorted(ALGOS))
class TestPredictReproducesFit:
    def test_train_set_cores_keep_their_labels(self, algo, blobs):
        model = repro.fit_model(blobs, algo, eps=EPS, tau=TAU, **algo_params(algo))
        with model:
            assert model.n_cores > 0  # the fixture must actually exercise cores
            predicted = model.predict(blobs)
            cores = model.core_mask
            assert np.array_equal(predicted[cores], model.labels[cores])
            # Non-core predictions are the nearest-core rule: never a
            # label the fit didn't produce, noise only outside every
            # eps-ball (checked indirectly: any point within eps of a
            # core cannot be noise).
            within = model.core_distances < EPS
            assert not np.any(predicted[within] == -1)
            assert np.all(predicted[~within] == -1)

    def test_loaded_model_predicts_identically(self, algo, blobs, tmp_path):
        queries = normalize_rows(
            np.random.default_rng(9).normal(size=(50, blobs.shape[1]))
        )
        model = repro.fit_model(blobs, algo, eps=EPS, tau=TAU, **algo_params(algo))
        with model:
            expected_train = model.predict(blobs)
            expected_new = model.predict(queries)
            model.save(tmp_path / "model")
        loaded = repro.load_model(tmp_path / "model")
        with loaded:
            assert np.array_equal(loaded.predict(blobs), expected_train)
            assert np.array_equal(loaded.predict(queries), expected_new)
            assert loaded.algo == model.algo
            assert loaded.params == model.params
            assert np.array_equal(loaded.labels, model.labels)
            assert np.array_equal(loaded.core_mask, model.core_mask)
            assert np.array_equal(loaded.core_distances, model.core_distances)


class TestPredictSemantics:
    """The pinned tie/edge behavior of the nearest-core rule."""

    def test_tie_goes_to_smallest_training_index(self):
        # Two exactly duplicated core points in *different* positions of
        # the training set but the same cluster; a query at their shared
        # location must take the first one's label (which is the same —
        # duplicates are mutually in-neighborhood). Construct instead two
        # distinct clusters equidistant from the query: the tie must
        # resolve to the smaller training index's cluster.
        theta = np.pi / 3
        a = np.array([1.0, 0.0])
        b = np.array([np.cos(2 * theta), np.sin(2 * theta)])
        mid = np.array([np.cos(theta), np.sin(theta)])
        X = np.vstack([np.tile(a, (3, 1)), np.tile(b, (3, 1))])
        model = repro.fit_model(X, "dbscan", eps=0.1, tau=3)
        with model:
            assert model.n_clusters == 2
            # mid is strictly within eps of nothing (cos distance to both
            # clusters is 1 - cos(60°) = 0.5): noise at eps=0.1 ...
            assert model.predict(mid)[0] == -1
        # ... and at eps=0.6 equidistant from both: the tie picks the
        # cluster of training index 0.
        model = repro.fit_model(X, "dbscan", eps=0.6, tau=3)
        with model:
            assert model.predict(mid)[0] == model.labels[0]

    def test_border_points_reassign_by_proximity(self):
        """A fit border point may flip to its *nearest* core's cluster.

        This is the documented fit/predict divergence: fit assigns
        borders in discovery order, predict by proximity. The test pins
        the predict side (nearest core wins) rather than demanding
        fit-equality for non-core points.
        """
        X, _ = make_blobs_on_sphere(20, 3, 8, seed=2)
        model = repro.fit_model(X, "dbscan", eps=EPS, tau=TAU)
        with model:
            predicted = model.predict(X)
            cores = np.flatnonzero(model.core_mask)
            for i in np.flatnonzero(~model.core_mask):
                d = model.metric.distance_to_many(X[i], X[cores])
                if d.min() < EPS:
                    nearest = cores[d == d.min()].min()
                    assert predicted[i] == model.labels[nearest]
                else:
                    assert predicted[i] == -1

    def test_strict_eps_boundary(self):
        """A query at distance exactly eps of every core is noise (< not <=)."""
        a = np.array([1.0, 0.0])
        X = np.tile(a, (3, 1))
        model = repro.fit_model(X, "dbscan", eps=0.5, tau=2)
        with model:
            # cos distance to the core is 1 - cos(theta); pick theta with
            # 1 - cos(theta) == 0.5 exactly.
            q = np.array([0.5, np.sqrt(3) / 2])
            assert model.predict(q)[0] == -1

    def test_single_query_and_empty_batch(self, blobs):
        model = repro.fit_model(blobs, "dbscan", eps=EPS, tau=TAU)
        with model:
            one = model.predict(blobs[0])
            assert one.shape == (1,)
            assert one[0] == model.labels[0] or not model.core_mask[0]
            assert model.predict(np.empty((0, blobs.shape[1]))).size == 0

    def test_all_noise_fit_predicts_all_noise(self):
        X = normalize_rows(np.random.default_rng(0).normal(size=(20, 32)))
        model = repro.fit_model(X, "dbscan", eps=0.01, tau=5)
        assert model.n_cores == 0
        assert np.all(model.predict(X) == -1)
        assert np.all(np.isinf(model.core_distances))

    def test_sharded_model_predicts_like_unsharded(self, blobs):
        from repro import ExecutionConfig, ShardingConfig

        sharded = repro.fit_model(
            blobs,
            "dbscan",
            eps=EPS,
            tau=TAU,
            execution=ExecutionConfig(sharding=ShardingConfig(n_shards=3)),
        )
        plain = repro.fit_model(blobs, "dbscan", eps=EPS, tau=TAU)
        queries = normalize_rows(
            np.random.default_rng(4).normal(size=(40, blobs.shape[1]))
        )
        with sharded, plain:
            assert np.array_equal(sharded.predict(queries), plain.predict(queries))

    def test_fit_model_api_equals_clusterer_fit_model(self, blobs):
        direct = repro.make_clusterer("dbscan", eps=EPS, tau=TAU).fit_model(blobs)
        facade = repro.fit_model(blobs, "dbscan", eps=EPS, tau=TAU)
        with direct, facade:
            assert isinstance(direct, ClusterModel)
            assert np.array_equal(direct.labels, facade.labels)
            assert direct.params == facade.params
