"""Tests for rho-approximate DBSCAN."""

import numpy as np
import pytest

from repro.clustering import DBSCAN, RhoApproxDBSCAN
from repro.exceptions import InvalidParameterError
from repro.index import BruteForceIndex
from repro.metrics import adjusted_rand_index



class TestParameters:
    def test_invalid_rho(self):
        with pytest.raises(InvalidParameterError):
            RhoApproxDBSCAN(eps=0.5, tau=3, rho=0.0)
        with pytest.raises(InvalidParameterError):
            RhoApproxDBSCAN(eps=0.5, tau=3, rho=-1.0)


class TestSmallRhoApproachesDBSCAN:
    def test_blobs_with_tiny_rho(self, blob_data):
        X, _ = blob_data
        eps, tau = 0.5, 4
        exact = DBSCAN(eps=eps, tau=tau).fit(X)
        approx = RhoApproxDBSCAN(eps=eps, tau=tau, rho=0.01).fit(X)
        assert adjusted_rand_index(exact.labels, approx.labels) > 0.95

    def test_clusterable_with_tiny_rho(self, clusterable_data):
        eps, tau = 0.5, 5
        exact = DBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        approx = RhoApproxDBSCAN(eps=eps, tau=tau, rho=0.01).fit(clusterable_data)
        assert adjusted_rand_index(exact.labels, approx.labels) > 0.9


class TestApproximationSemantics:
    def test_core_mask_sandwich(self, clusterable_data):
        """Cores at eps must stay core; cores invented by the relaxation
        must at least be core at eps(1+rho)-equivalent radius."""
        eps, tau, rho = 0.5, 5, 0.5
        result = RhoApproxDBSCAN(eps=eps, tau=tau, rho=rho).fit(clusterable_data)
        index = BruteForceIndex().build(clusterable_data)
        exact_counts = index.range_count_many(clusterable_data, eps)
        # Every true core is detected (counts can only grow).
        assert result.core_mask[exact_counts >= tau].all()
        # Every claimed core is justified at the relaxed radius.
        eps_outer = min(2.0, (1 + rho) ** 2 * eps)
        outer_counts = index.range_count_many(clusterable_data, eps_outer)
        claimed = np.flatnonzero(result.core_mask)
        assert (outer_counts[claimed] >= tau).all()

    def test_large_rho_merges_more(self, clusterable_data):
        eps, tau = 0.5, 5
        tight = RhoApproxDBSCAN(eps=eps, tau=tau, rho=0.05).fit(clusterable_data)
        loose = RhoApproxDBSCAN(eps=eps, tau=tau, rho=1.0).fit(clusterable_data)
        assert loose.n_clusters <= tight.n_clusters
        assert loose.noise_ratio <= tight.noise_ratio

    def test_stats_present(self, clusterable_data):
        result = RhoApproxDBSCAN(eps=0.5, tau=5, rho=0.5).fit(clusterable_data)
        assert {"count_queries", "n_cells", "n_core"} <= set(result.stats)

    def test_dense_cells_shortcut(self):
        # Identical points share one cell; with >= tau members they are
        # all core without any count queries.
        from repro.distances import normalize_rows

        X = normalize_rows(np.ones((10, 6)))
        result = RhoApproxDBSCAN(eps=0.5, tau=5, rho=0.5).fit(X)
        assert result.core_mask.all()
        assert result.n_clusters == 1
        assert result.stats["count_queries"] == 0

    def test_deterministic(self, clusterable_data):
        a = RhoApproxDBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        b = RhoApproxDBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        assert np.array_equal(a.labels, b.labels)
