"""Tests for the numpy MLP regressor."""

import numpy as np
import pytest

from repro.estimators import MLPRegressor
from repro.estimators.mlp import paper_hidden_layers
from repro.exceptions import InvalidParameterError, NotFittedError


def make_regression(n=400, d=4, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, d))
    y = X[:, 0] * 2.0 - X[:, 1] + 0.5 * X[:, 2] ** 2
    return X, y + noise * rng.normal(size=n)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            MLPRegressor(hidden_layers=(0,))
        with pytest.raises(InvalidParameterError):
            MLPRegressor(learning_rate=0.0)
        with pytest.raises(InvalidParameterError):
            MLPRegressor(batch_size=0)
        with pytest.raises(InvalidParameterError):
            MLPRegressor(epochs=0)
        with pytest.raises(InvalidParameterError):
            MLPRegressor(l2=-0.1)

    def test_paper_architecture_constant(self):
        assert paper_hidden_layers() == (512, 512, 256, 128)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict(np.ones((2, 3)))


class TestFit:
    def test_learns_linear_function(self):
        X, y = make_regression(noise=0.0)
        model = MLPRegressor(hidden_layers=(32, 16), epochs=150, seed=0).fit(X, y)
        pred = model.predict(X)
        rmse = float(np.sqrt(np.mean((pred - y) ** 2)))
        assert rmse < 0.15

    def test_loss_decreases(self):
        X, y = make_regression()
        model = MLPRegressor(hidden_layers=(16,), epochs=40, seed=1).fit(X, y)
        losses = model.history.losses
        assert losses[-1] < losses[0]
        assert model.history.n_epochs == 40

    def test_deterministic_given_seed(self):
        X, y = make_regression()
        p1 = (
            MLPRegressor(hidden_layers=(8,), epochs=10, seed=5).fit(X, y).predict(X[:5])
        )
        p2 = (
            MLPRegressor(hidden_layers=(8,), epochs=10, seed=5).fit(X, y).predict(X[:5])
        )
        assert np.allclose(p1, p2)

    def test_different_seeds_differ(self):
        X, y = make_regression()
        p1 = MLPRegressor(hidden_layers=(8,), epochs=5, seed=1).fit(X, y).predict(X[:5])
        p2 = MLPRegressor(hidden_layers=(8,), epochs=5, seed=2).fit(X, y).predict(X[:5])
        assert not np.allclose(p1, p2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            MLPRegressor().fit(np.ones((5, 2)), np.ones(4))

    def test_1d_x_raises(self):
        with pytest.raises(InvalidParameterError):
            MLPRegressor().fit(np.ones(5), np.ones(5))

    def test_constant_feature_no_nan(self):
        X, y = make_regression()
        X[:, 0] = 3.0  # zero-variance feature must not divide by zero
        model = MLPRegressor(hidden_layers=(8,), epochs=5, seed=0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_l2_regularization_shrinks_overfit(self):
        X, y = make_regression(n=50, noise=0.5, seed=3)
        free = MLPRegressor(hidden_layers=(64, 64), epochs=200, seed=0).fit(X, y)
        reg = MLPRegressor(hidden_layers=(64, 64), epochs=200, seed=0, l2=0.1).fit(X, y)
        # Regularized training loss should stay above the unregularized one.
        assert reg.history.final_loss >= free.history.final_loss


class TestPredict:
    def test_single_row(self):
        X, y = make_regression()
        model = MLPRegressor(hidden_layers=(8,), epochs=5, seed=0).fit(X, y)
        out = model.predict(X[0])
        assert out.shape == (1,)

    def test_batch_matches_loop(self):
        X, y = make_regression()
        model = MLPRegressor(hidden_layers=(8,), epochs=5, seed=0).fit(X, y)
        batch = model.predict(X[:10])
        loop = np.array([model.predict(x)[0] for x in X[:10]])
        assert np.allclose(batch, loop)


class TestCloneAndPersistence:
    def test_clone_from_copies_function(self):
        X, y = make_regression()
        parent = MLPRegressor(hidden_layers=(8,), epochs=10, seed=0).fit(X, y)
        child = MLPRegressor(hidden_layers=(8,), seed=1).clone_from(parent)
        assert np.allclose(parent.predict(X[:7]), child.predict(X[:7]))

    def test_clone_is_deep(self):
        X, y = make_regression()
        parent = MLPRegressor(hidden_layers=(8,), epochs=5, seed=0).fit(X, y)
        child = MLPRegressor(hidden_layers=(8,), seed=1).clone_from(parent)
        child._weights[0][:] = 0.0
        assert not np.allclose(parent.predict(X[:3]), child.predict(X[:3]))

    def test_clone_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().clone_from(MLPRegressor())

    def test_save_load_round_trip(self, tmp_path):
        X, y = make_regression()
        model = MLPRegressor(hidden_layers=(8, 4), epochs=10, seed=0).fit(X, y)
        path = str(tmp_path / "model.npz")
        model.save(path)
        loaded = MLPRegressor.load(path)
        assert np.allclose(model.predict(X[:9]), loaded.predict(X[:9]))

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            MLPRegressor().save(str(tmp_path / "x.npz"))
