"""Tests for the cover tree: exactness against brute force + invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import normalize_rows
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.index import BruteForceIndex, CoverTree


def random_unit(n, dim, seed):
    rng = np.random.default_rng(seed)
    return normalize_rows(rng.normal(size=(n, dim)))


@pytest.fixture(scope="module", params=[1.3, 2.0, 4.0])
def built_tree(request):
    X = random_unit(120, 10, seed=42)
    return CoverTree(base=request.param).build(X), X


class TestConstruction:
    def test_invalid_base(self):
        for bad in (1.0, 0.5, -2.0):
            with pytest.raises(InvalidParameterError):
                CoverTree(base=bad)

    def test_node_per_point(self, built_tree):
        tree, X = built_tree
        assert tree.n_nodes == X.shape[0]

    def test_invariants_hold(self, built_tree):
        tree, _ = built_tree
        tree.validate_invariants()

    def test_duplicate_points_supported(self):
        X = normalize_rows(np.ones((6, 4)))
        tree = CoverTree().build(X)
        tree.validate_invariants()
        hits = tree.range_query(X[0], eps=0.1)
        assert hits.size == 6

    def test_unbuilt_raises(self):
        with pytest.raises(NotFittedError):
            CoverTree().range_query(np.zeros(3), 0.5)


class TestRangeQueryExactness:
    @pytest.mark.parametrize("eps", [0.05, 0.2, 0.5, 0.9, 1.5])
    def test_equals_brute_force(self, built_tree, eps):
        tree, X = built_tree
        brute = BruteForceIndex().build(X)
        for qi in range(0, X.shape[0], 7):
            expected = set(brute.range_query(X[qi], eps).tolist())
            got = set(tree.range_query(X[qi], eps).tolist())
            assert got == expected

    def test_external_query_point(self, built_tree):
        tree, X = built_tree
        rng = np.random.default_rng(0)
        q = normalize_rows(rng.normal(size=X.shape[1]))
        brute = BruteForceIndex().build(X)
        assert set(tree.range_query(q, 0.6).tolist()) == set(
            brute.range_query(q, 0.6).tolist()
        )

    def test_results_sorted(self, built_tree):
        tree, X = built_tree
        hits = tree.range_query(X[0], 0.8)
        assert np.all(np.diff(hits) > 0)

    @given(st.integers(0, 10_000), st.floats(0.05, 1.8))
    @settings(max_examples=30, deadline=None)
    def test_property_equals_brute_force(self, seed, eps):
        X = random_unit(40, 6, seed=seed % 1000)
        tree = CoverTree(base=2.0).build(X)
        brute = BruteForceIndex().build(X)
        q = X[seed % 40]
        assert set(tree.range_query(q, eps).tolist()) == set(
            brute.range_query(q, eps).tolist()
        )


class TestKnnQuery:
    def test_matches_brute_force_sets(self, built_tree):
        tree, X = built_tree
        brute = BruteForceIndex().build(X)
        for qi in (0, 33, 77):
            t_idx, t_d = tree.knn_query(X[qi], k=5)
            b_idx, b_d = brute.knn_query(X[qi], k=5)
            assert np.allclose(np.sort(t_d), np.sort(b_d), atol=1e-9)

    def test_first_neighbor_is_self(self, built_tree):
        tree, X = built_tree
        idx, dists = tree.knn_query(X[11], k=3)
        assert idx[0] == 11 or dists[0] == pytest.approx(0.0, abs=1e-9)

    def test_invalid_k(self, built_tree):
        tree, X = built_tree
        with pytest.raises(InvalidParameterError):
            tree.knn_query(X[0], k=0)

    def test_k_larger_than_n(self, built_tree):
        tree, X = built_tree
        idx, _ = tree.knn_query(X[0], k=10_000)
        assert idx.size == X.shape[0]


class TestSmallBases:
    """The trade-off sweep uses bases down to 1.1; ensure they work."""

    def test_base_1_1_correct(self):
        X = random_unit(50, 8, seed=9)
        tree = CoverTree(base=1.1).build(X)
        brute = BruteForceIndex().build(X)
        assert set(tree.range_query(X[5], 0.5).tolist()) == set(
            brute.range_query(X[5], 0.5).tolist()
        )

    def test_base_5_correct(self):
        X = random_unit(50, 8, seed=10)
        tree = CoverTree(base=5.0).build(X)
        brute = BruteForceIndex().build(X)
        assert set(tree.range_query(X[5], 0.5).tolist()) == set(
            brute.range_query(X[5], 0.5).tolist()
        )
