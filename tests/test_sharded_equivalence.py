"""Differential tests: sharded backends vs the single-index path.

The contract of :class:`repro.index.sharded.ShardedIndex` is that
sharding is *invisible*: for every exact inner backend and every
executor, `batch_range_query` / `batch_range_count` / `batch_knn_query`
return exactly what one index over the whole dataset returns (range rows
compared as sorted arrays — the sharded backend's documented order).
Edge cases the merge layer must survive: ``eps = 0`` (strict ``d < eps``
means even the query's duplicate is excluded), duplicated points,
``n_shards > n_points`` (empty shards), and empty query batches.

Everything here is deterministic: fixed seeds, no time dependence, no
reliance on test order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import DBSCAN
from repro.engine_config import ExecutionConfig
from repro.exceptions import InvalidParameterError, NotFittedError, RemovedAPIError
from repro.index import (
    BruteForceIndex,
    NeighborhoodCache,
    ShardedIndex,
    ShardingConfig,
    set_sharding,
    sharded_queries,
    sharding_config,
)
from repro.index.sharded import (
    EXECUTOR_NAMES,
    backend_spec_of,
    make_inner_backend,
    maybe_shard,
)
from repro.testing import make_blobs_on_sphere

EPS = 0.55

#: (name, constructor kwargs) for every registered inner backend. The
#: k-means tree runs in exact mode (checks_ratio=1.0): below that its
#: leaf-budget pruning is shard-shape-dependent, like any partitioned
#: approximate index, and no bit-identical contract exists.
BACKENDS = [
    ("brute_force", {}),
    ("cover_tree", {"base": 1.6}),
    ("kmeans_tree", {"checks_ratio": 1.0, "seed": 0, "leaf_size": 8}),
    ("grid", {"eps": EPS, "rho": 1.0}),
]

#: Backends supporting KNN (the grid is a range/count-only substrate).
KNN_BACKENDS = [(n, kw) for n, kw in BACKENDS if n != "grid"]

backend_ids = [n for n, _ in BACKENDS]
knn_backend_ids = [n for n, _ in KNN_BACKENDS]


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    X, _ = make_blobs_on_sphere(20, 3, 10, spread=0.2, seed=7)
    return X


@pytest.fixture(scope="module")
def duplicated(data) -> np.ndarray:
    # Every point appears three times; neighborhoods must list them all.
    return np.repeat(data[:12], 3, axis=0)


def sharded(name, kwargs, X, executor, n_shards=3, **extra) -> ShardedIndex:
    index = ShardedIndex(
        inner=name,
        inner_kwargs=kwargs,
        n_shards=n_shards,
        executor=executor,
        n_workers=2 if executor != "serial" else None,
        **extra,
    )
    return index.build(X)


def assert_rows_equal(got_rows, expected_rows) -> None:
    assert len(got_rows) == len(expected_rows)
    for i, (got, expected) in enumerate(zip(got_rows, expected_rows)):
        assert got.dtype == np.int64, i
        assert np.array_equal(got, np.sort(np.asarray(expected))), i


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
@pytest.mark.parametrize("name,kwargs", BACKENDS, ids=backend_ids)
class TestAgainstSingleIndex:
    def test_batch_range_query(self, name, kwargs, executor, data):
        single = make_inner_backend(name, kwargs).build(data)
        with sharded(name, kwargs, data, executor) as index:
            got = index.batch_range_query(data, EPS)
        assert_rows_equal(got, single.batch_range_query(data, EPS))

    def test_batch_range_count(self, name, kwargs, executor, data):
        single = make_inner_backend(name, kwargs).build(data)
        expected = [len(r) for r in single.batch_range_query(data, EPS)]
        with sharded(name, kwargs, data, executor) as index:
            counts = index.batch_range_count(data, EPS)
        assert counts.dtype == np.int64
        assert np.array_equal(counts, expected)

    def test_empty_query_batch(self, name, kwargs, executor, data):
        with sharded(name, kwargs, data, executor) as index:
            assert index.batch_range_query(np.empty((0, data.shape[1])), EPS) == []
            assert index.batch_range_count(np.empty((0, data.shape[1])), EPS).size == 0

    def test_eps_zero_returns_no_neighbors(self, name, kwargs, executor, data):
        # Strict d < 0 excludes everything, the query point included.
        with sharded(name, kwargs, data, executor) as index:
            rows = index.batch_range_query(data[:6], 0.0)
            assert all(row.size == 0 for row in rows)
            assert np.array_equal(
                index.batch_range_count(data[:6], 0.0), np.zeros(6, dtype=np.int64)
            )


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
@pytest.mark.parametrize("name,kwargs", KNN_BACKENDS, ids=knn_backend_ids)
class TestKnnAgainstSingleIndex:
    def test_batch_knn_query(self, name, kwargs, executor, data):
        single = make_inner_backend(name, kwargs).build(data)
        exp_idx, exp_dist = single.batch_knn_query(data[:20], k=5)
        with sharded(name, kwargs, data, executor) as index:
            got_idx, got_dist = index.batch_knn_query(data[:20], k=5)
        assert len(got_idx) == len(exp_idx)
        for i in range(len(exp_idx)):
            assert np.array_equal(got_idx[i], exp_idx[i]), i
            np.testing.assert_allclose(got_dist[i], exp_dist[i], atol=1e-12)

    def test_k_exceeding_dataset_clamps(self, name, kwargs, executor, data):
        X = data[:9]
        single = make_inner_backend(name, kwargs).build(X)
        exp_idx, _ = single.batch_knn_query(X[:3], k=50)
        with sharded(name, kwargs, X, executor, n_shards=2) as index:
            got_idx, _ = index.batch_knn_query(X[:3], k=50)
        for i in range(3):
            assert got_idx[i].size == exp_idx[i].size == 9
            assert np.array_equal(np.sort(got_idx[i]), np.arange(9))


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
class TestShardingEdgeCases:
    def test_knn_with_duplicated_points(self, executor, duplicated):
        """Under exact distance ties the id *sets* per tie group match.

        The sharded order is the deterministic (distance, index) order;
        a single brute-force index breaks ties argpartition-arbitrarily,
        so id sequences are only comparable within tie groups. Every
        point appears in triples, so k = 6 aligns the cutoff with tie
        group boundaries (a mid-group cutoff may legitimately keep
        different members per path).
        """
        k = 6
        single = BruteForceIndex().build(duplicated)
        exp_idx, exp_dist = single.batch_knn_query(duplicated[:10], k)
        with sharded("brute_force", {}, duplicated, executor, n_shards=4) as index:
            got_idx, got_dist = index.batch_knn_query(duplicated[:10], k)
        for i in range(10):
            np.testing.assert_allclose(got_dist[i], exp_dist[i], atol=1e-12)
            # Sharded ties are ordered by ascending global index.
            order = np.lexsort((got_idx[i], got_dist[i]))
            assert np.array_equal(got_idx[i], got_idx[i][order])
            # Same candidate set within every group of tied distances.
            for d in np.unique(exp_dist[i]):
                exp_group = np.sort(exp_idx[i][exp_dist[i] == d])
                got_group = np.sort(got_idx[i][got_dist[i] == d])
                assert np.array_equal(got_group, exp_group), (i, d)

    def test_duplicated_points(self, executor, duplicated):
        single = BruteForceIndex().build(duplicated)
        with sharded("brute_force", {}, duplicated, executor, n_shards=5) as index:
            got = index.batch_range_query(duplicated, EPS)
            counts = index.batch_range_count(duplicated, EPS)
        expected = single.batch_range_query(duplicated, EPS)
        assert_rows_equal(got, expected)
        assert np.array_equal(counts, [len(r) for r in expected])

    def test_empty_dataset(self, executor, data):
        # Regression: a zero-byte shared-memory segment is illegal, so
        # the process executor must degenerate like serial/thread do.
        with sharded(
            "brute_force", {}, np.empty((0, data.shape[1])), executor, n_shards=4
        ) as index:
            assert index.n_live_shards == 0
            rows = index.batch_range_query(data[:3], EPS)
            assert [r.size for r in rows] == [0, 0, 0]
            assert np.array_equal(
                index.batch_range_count(data[:3], EPS), np.zeros(3, dtype=np.int64)
            )
            idx_rows, dist_rows = index.batch_knn_query(data[:2], k=3)
            assert [r.size for r in idx_rows] == [0, 0]
            assert [r.size for r in dist_rows] == [0, 0]

    def test_more_shards_than_points(self, executor, data):
        X = data[:7]
        single = BruteForceIndex().build(X)
        with sharded("brute_force", {}, X, executor, n_shards=32) as index:
            assert index.n_live_shards == 7
            assert_rows_equal(
                index.batch_range_query(X, EPS), single.batch_range_query(X, EPS)
            )

    def test_single_shard_is_the_single_index(self, executor, data):
        single = BruteForceIndex().build(data)
        with sharded("brute_force", {}, data, executor, n_shards=1) as index:
            assert_rows_equal(
                index.batch_range_query(data, EPS),
                single.batch_range_query(data, EPS),
            )

    def test_tiny_query_block_still_exact(self, executor, data):
        single = BruteForceIndex().build(data)
        with sharded(
            "brute_force", {}, data, executor, n_shards=3, query_block=7
        ) as index:
            assert_rows_equal(
                index.batch_range_query(data, EPS),
                single.batch_range_query(data, EPS),
            )

    def test_scalar_queries_route_through_shards(self, executor, data):
        single = BruteForceIndex().build(data)
        with sharded("brute_force", {}, data, executor) as index:
            assert np.array_equal(
                index.range_query(data[0], EPS),
                np.sort(single.range_query(data[0], EPS)),
            )
            assert index.range_count(data[3], EPS) == single.range_count(data[3], EPS)
            idx, dist = index.knn_query(data[5], 4)
            exp_idx, exp_dist = single.knn_query(data[5], 4)
            assert np.array_equal(idx, exp_idx)
            np.testing.assert_allclose(dist, exp_dist, atol=1e-12)


class TestLifecycleAndValidation:
    def test_unbuilt_raises(self, data):
        with pytest.raises(NotFittedError):
            ShardedIndex().batch_range_query(data, EPS)

    def test_closed_raises_and_close_is_idempotent(self, data):
        index = ShardedIndex(n_shards=2).build(data)
        index.close()
        index.close()
        with pytest.raises(NotFittedError):
            index.batch_range_query(data, EPS)

    def test_rebuild_after_close(self, data):
        index = ShardedIndex(n_shards=2).build(data)
        index.close()
        index.build(data[:10])
        assert index.n_points == 10
        assert len(index.batch_range_query(data[:4], EPS)) == 4

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            ShardedIndex(n_shards=0)
        with pytest.raises(InvalidParameterError):
            ShardedIndex(executor="mapreduce")
        with pytest.raises(InvalidParameterError):
            ShardedIndex(inner="flann")
        with pytest.raises(InvalidParameterError):
            ShardedIndex(n_workers=0)
        with pytest.raises(InvalidParameterError):
            ShardedIndex(query_block=0)

    def test_factory_inner_rejected_by_process_executor(self):
        with pytest.raises(InvalidParameterError):
            ShardedIndex(inner=BruteForceIndex, executor="process")

    def test_factory_inner_works_serially(self, data):
        single = BruteForceIndex().build(data)
        index = ShardedIndex(inner=BruteForceIndex, n_shards=3).build(data)
        assert_rows_equal(
            index.batch_range_query(data, EPS), single.batch_range_query(data, EPS)
        )


class TestEngineWiring:
    """Sharding reaches the clusterers through NeighborhoodCache alone."""

    def test_cache_wraps_index_under_config(self, data):
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS, sharding=ShardingConfig(n_shards=3))
        assert isinstance(cache._index, ShardedIndex)
        for p in range(10):
            assert np.array_equal(
                cache.fetch(p), np.sort(index.range_query(data[p], EPS))
            )

    def test_cache_without_config_keeps_index(self, data):
        index = BruteForceIndex().build(data)
        assert NeighborhoodCache(index, data, EPS)._index is index

    def test_cache_close_releases_owned_sharded_index(self, data):
        index = BruteForceIndex().build(data)
        with NeighborhoodCache(
            index, data, EPS, sharding=ShardingConfig(n_shards=2, executor="process")
        ) as cache:
            cache.plan([0, 1])
            assert cache.fetch(0).size > 0
        # close() ran on __exit__: the owned sharded wrapper is released.
        with pytest.raises(NotFittedError):
            cache._index.batch_range_query(data[:1], EPS)
        # But a cache that borrowed the caller's index must not close it.
        borrowed = NeighborhoodCache(index, data, EPS)
        borrowed.close()
        assert index.range_count(data[0], EPS) > 0

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_dbscan_identical_under_sharding(self, executor, data):
        baseline = DBSCAN(eps=0.5, tau=4).fit(data)
        result = DBSCAN(
            eps=0.5,
            tau=4,
            execution=ExecutionConfig(
                sharding=ShardingConfig(n_shards=4, executor=executor, n_workers=2)
            ),
        ).fit(data)
        assert np.array_equal(baseline.labels, result.labels)
        assert np.array_equal(baseline.core_mask, result.core_mask)
        assert baseline.stats["range_queries"] == result.stats["range_queries"]

    def test_removed_ambient_shims_raise_typed_errors(self):
        """The PR 5 shims finished their cycle: typed errors, no scope."""
        with pytest.raises(RemovedAPIError, match="ExecutionConfig"):
            set_sharding(ShardingConfig(n_shards=2))
        with pytest.raises(RemovedAPIError, match="ExecutionConfig"):
            with sharded_queries(n_shards=8):
                pass
        # Even junk arguments get the removal error, not validation: the
        # API is gone regardless of what is passed to it.
        with pytest.raises(RemovedAPIError):
            set_sharding("4 shards please")
        # The read-side probe stays callable and truthfully reports that
        # no ambient sharding scope can exist anymore.
        assert sharding_config() is None

    def test_maybe_shard_passthrough(self, data):
        class Opaque:
            pass

        opaque = Opaque()
        config = ShardingConfig(n_shards=2)
        # No rebuild spec: silent passthrough (custom indexes keep
        # working, just unsharded — the documented fallback).
        assert maybe_shard(opaque, config) is opaque
        already = ShardedIndex(n_shards=2).build(data)
        assert maybe_shard(already, config) is already

    def test_maybe_shard_warns_on_unbuilt_recognised_index(self):
        # A recognised backend whose points are unavailable must warn,
        # never silently skip sharding.
        unbuilt = BruteForceIndex()
        with pytest.warns(RuntimeWarning, match="has not been built"):
            assert maybe_shard(unbuilt, ShardingConfig(n_shards=2)) is unbuilt

    def test_maybe_shard_warns_when_points_property_is_gone(self, data):
        class NoPoints(BruteForceIndex):
            @property
            def points(self):
                return None

        index = NoPoints().build(data)
        with pytest.warns(RuntimeWarning, match="points"):
            assert maybe_shard(index, ShardingConfig(n_shards=2)) is index

    def test_resolve_engine_index_builds_shards_directly(self, data):
        from repro.index.sharded import resolve_engine_index

        resolved, owned = resolve_engine_index(
            BruteForceIndex(), data, ShardingConfig(n_shards=3)
        )
        assert owned
        assert isinstance(resolved, ShardedIndex)
        assert resolved.n_live_shards == 3
        stats = resolved.stats()
        # Shard-before-build: exactly one build per live shard, no
        # discarded whole-dataset build.
        assert stats["shard_inner_builds"] == stats["shard_live_shards"] == 3
        resolved.close()

    def test_resolve_engine_index_without_config_builds_single(self, data):
        from repro.index.sharded import resolve_engine_index

        unbuilt = BruteForceIndex()
        resolved, owned = resolve_engine_index(unbuilt, data, None)
        assert resolved is unbuilt and owned
        assert resolved.is_built
        assert resolved.n_points == data.shape[0]

    def test_resolve_engine_index_fitted_takes_fallback(self, data):
        from repro.index.sharded import resolve_engine_index

        fitted = BruteForceIndex().build(data)
        resolved, owned = resolve_engine_index(fitted, data, None)
        assert resolved is fitted and not owned
        wrapped, owned = resolve_engine_index(fitted, data, ShardingConfig(n_shards=2))
        assert isinstance(wrapped, ShardedIndex) and owned
        wrapped.close()

    def test_resolve_engine_index_warns_on_unbuilt_custom_index(self, data):
        from repro.index.sharded import resolve_engine_index

        class Custom:
            """Spec-less duck-typed index: built once, used unsharded."""

            is_built = False

            def build(self, X):
                self.is_built = True
                self.n = X.shape[0]
                return self

        with pytest.warns(RuntimeWarning, match="rebuild spec"):
            resolved, owned = resolve_engine_index(
                Custom(), data, ShardingConfig(n_shards=2)
            )
        assert isinstance(resolved, Custom) and resolved.is_built and owned

    @pytest.mark.parametrize("name,kwargs", BACKENDS, ids=backend_ids)
    def test_public_points_property_on_every_backend(self, name, kwargs, data):
        """Sharding keys on the public ``points`` accessor, not ``_points``."""
        index = make_inner_backend(name, kwargs)
        assert index.is_built is False
        with pytest.raises(NotFittedError):
            _ = index.points
        index.build(data)
        assert index.is_built is True
        assert index.points.shape == data.shape
        assert np.array_equal(index.points, data)
        assert index.n_points == data.shape[0]

    def test_backend_spec_roundtrip(self, data):
        for name, kwargs in BACKENDS:
            index = make_inner_backend(name, kwargs)
            spec = backend_spec_of(index)
            assert spec is not None
            got_name, got_kwargs = spec
            assert got_name == name
            rebuilt = make_inner_backend(got_name, got_kwargs)
            assert type(rebuilt) is type(index)

    def test_generator_seeded_kmeans_tree_has_no_spec(self):
        from repro.index import KMeansTree

        index = KMeansTree(seed=np.random.default_rng(0))
        assert backend_spec_of(index) is None
