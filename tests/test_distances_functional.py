"""Unit and property tests for the scalar/one-to-many distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distances import (
    angular_distance,
    cosine_distance,
    cosine_distance_to_many,
    cosine_similarity,
    euclidean_distance,
    euclidean_distance_to_many,
    normalize_rows,
)

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(2, 12),
    elements=st.floats(-10, 10, allow_nan=False),
)


def _unit(v: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(v)
    return v / norm if norm > 1e-9 else None


class TestNormalizeRows:
    def test_rows_become_unit(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 8)) * 5
        out = normalize_rows(X)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_zero_row_stays_finite(self):
        X = np.array([[0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])
        out = normalize_rows(X)
        assert np.isfinite(out).all()
        assert np.allclose(out[1], [0.6, 0.8, 0.0])

    def test_1d_input(self):
        out = normalize_rows(np.array([3.0, 4.0]))
        assert np.allclose(out, [0.6, 0.8])

    def test_1d_zero_vector(self):
        out = normalize_rows(np.array([0.0, 0.0]))
        assert np.allclose(out, [0.0, 0.0])

    def test_copy_semantics(self):
        X = np.ones((2, 2))
        out = normalize_rows(X, copy=True)
        assert out is not X
        assert np.allclose(X, 1.0)  # original untouched

    def test_does_not_mutate_by_default(self):
        X = np.array([[2.0, 0.0]])
        normalize_rows(X)
        assert X[0, 0] == 2.0


class TestCosineDistance:
    def test_identical_vectors(self):
        v = normalize_rows(np.array([1.0, 2.0, 3.0]))
        assert cosine_distance(v, v) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_vectors(self):
        assert cosine_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_antipodal_vectors(self):
        v = np.array([1.0, 0.0])
        assert cosine_distance(v, -v) == pytest.approx(2.0)

    def test_similarity_complement(self):
        rng = np.random.default_rng(1)
        u = normalize_rows(rng.normal(size=5))
        v = normalize_rows(rng.normal(size=5))
        assert cosine_distance(u, v) == pytest.approx(1.0 - cosine_similarity(u, v))

    @given(finite_vectors, finite_vectors)
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_range(self, a, b):
        if a.shape != b.shape:
            return
        u, v = _unit(a), _unit(b)
        if u is None or v is None:
            return
        d_uv = cosine_distance(u, v)
        d_vu = cosine_distance(v, u)
        assert d_uv == pytest.approx(d_vu, abs=1e-9)
        assert -1e-9 <= d_uv <= 2.0 + 1e-9


class TestAngularDistance:
    def test_range_and_known_values(self):
        e1, e2 = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert angular_distance(e1, e1) == pytest.approx(0.0, abs=1e-7)
        assert angular_distance(e1, e2) == pytest.approx(0.5)
        assert angular_distance(e1, -e1) == pytest.approx(1.0)

    def test_clips_rounding_overflow(self):
        # Dot products marginally above 1 must not produce NaN.
        v = np.array([1.0, 1e-17])
        assert np.isfinite(angular_distance(v, v))

    def test_triangle_inequality(self):
        rng = np.random.default_rng(2)
        for _ in range(25):
            u, v, w = (normalize_rows(rng.normal(size=6)) for _ in range(3))
            assert angular_distance(u, w) <= (
                angular_distance(u, v) + angular_distance(v, w) + 1e-9
            )


class TestEuclideanDistance:
    def test_known_value(self):
        assert euclidean_distance(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(5.0)

    def test_matches_cosine_relation_on_unit_vectors(self):
        rng = np.random.default_rng(3)
        u = normalize_rows(rng.normal(size=8))
        v = normalize_rows(rng.normal(size=8))
        d_cos = cosine_distance(u, v)
        assert euclidean_distance(u, v) == pytest.approx(np.sqrt(2 * d_cos), abs=1e-9)


class TestToManyKernels:
    def test_cosine_to_many_matches_scalar(self, unit_vectors_small):
        q = unit_vectors_small[0]
        batch = cosine_distance_to_many(q, unit_vectors_small)
        scalar = [cosine_distance(q, x) for x in unit_vectors_small]
        assert np.allclose(batch, scalar)

    def test_euclidean_to_many_matches_scalar(self, unit_vectors_small):
        q = unit_vectors_small[5]
        batch = euclidean_distance_to_many(q, unit_vectors_small)
        scalar = [euclidean_distance(q, x) for x in unit_vectors_small]
        assert np.allclose(batch, scalar)

    def test_euclidean_to_many_nonnegative_under_rounding(self):
        X = np.ones((4, 3)) / np.sqrt(3)
        d = euclidean_distance_to_many(X[0], X)
        assert (d >= 0).all()

    def test_self_distance_zero(self, unit_vectors_small):
        d = cosine_distance_to_many(unit_vectors_small[2], unit_vectors_small)
        assert d[2] == pytest.approx(0.0, abs=1e-12)
