"""Build-once accounting: each live shard's inner index builds exactly once.

The cost contract of the sharded execution path (and the regression this
suite pins): a sharded fit pays exactly ``n_live_shards`` inner-index
constructions —

* no discarded whole-dataset build (shard-before-build: the engine is
  handed the *unbuilt* backend and constructs the per-shard indexes
  directly), and
* no per-worker rebuilds (the process executor pins every shard to one
  worker, so a shard's index is built by exactly one process and reused
  across every query block of the fit).

Before this contract existed, a sharded tree fit paid ``1`` redundant
whole-dataset build in ``maybe_shard`` plus up to ``n_workers ×
n_shards`` lazy in-worker builds. The differential tests below count
actual ``build`` calls in the parent process (monkeypatched class
methods) and read the instrumented ``shard_inner_builds`` counter that
:meth:`ShardedIndex.stats` aggregates across worker processes, across
all three executors and all four registered inner backends; label
equality vs the unsharded path rides along for DBSCAN and LAF-DBSCAN.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import DBSCAN
from repro.core import LAFDBSCAN
from repro.engine_config import ExecutionConfig, IndexSpec
from repro.estimators import ExactCardinalityEstimator
from repro.index import ShardedIndex
from repro.index.sharded import EXECUTOR_NAMES, INNER_BACKENDS, ShardingConfig
from repro.testing import make_blobs_on_sphere

EPS = 0.5
TAU = 4
N_SHARDS = 3

#: Inner-backend grid mirroring tests/test_sharded_equivalence.py (the
#: k-means tree in exact mode: approx pruning is shard-shape-dependent).
BACKENDS = [
    ("brute_force", {}),
    ("cover_tree", {"base": 1.6}),
    ("kmeans_tree", {"checks_ratio": 1.0, "seed": 0, "leaf_size": 8}),
    ("grid", {"eps": EPS, "rho": 1.0}),
]
backend_ids = [n for n, _ in BACKENDS]

#: IndexSpec equivalents for routing clusterers onto each backend.
SPECS = {name: IndexSpec(name, kwargs) for name, kwargs in BACKENDS}


def sharded_execution(executor: str, index: IndexSpec | None = None) -> ExecutionConfig:
    """The first-class equivalent of the old ambient sharded_queries scope."""
    return ExecutionConfig(
        index=index,
        sharding=ShardingConfig(n_shards=N_SHARDS, executor=executor, n_workers=2),
    )


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    X, _ = make_blobs_on_sphere(20, 3, 10, spread=0.25, seed=11)
    return X


@pytest.fixture
def build_counter(monkeypatch):
    """Count inner-backend ``build`` calls executed in *this* process.

    Worker processes fork after the patch but count into their own copy,
    so the counter isolates parent-side builds — exactly the builds the
    shard-before-build path is supposed to eliminate or keep at
    ``n_live_shards``.
    """
    counts = {"n": 0}
    for cls in set(INNER_BACKENDS.values()):
        original = cls.build

        def counting_build(self, X, _original=original):
            counts["n"] += 1
            return _original(self, X)

        monkeypatch.setattr(cls, "build", counting_build)
    return counts


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
@pytest.mark.parametrize("name,kwargs", BACKENDS, ids=backend_ids)
class TestShardedIndexBuildOnce:
    def test_builds_equal_live_shards_across_query_rounds(
        self, name, kwargs, executor, data
    ):
        with ShardedIndex(
            inner=name,
            inner_kwargs=kwargs,
            n_shards=N_SHARDS,
            executor=executor,
            n_workers=2,
        ).build(data) as index:
            # Several rounds over every shard: pre-affinity, round 2+
            # could land a shard on a worker that had never built it.
            for _ in range(3):
                index.batch_range_query(data, EPS)
                index.batch_range_count(data, EPS)
            stats = index.stats()
            assert stats["shard_live_shards"] == N_SHARDS
            assert stats["shard_inner_builds"] == N_SHARDS
            assert stats["shard_rebalances"] == 0

    def test_stats_survive_close(self, name, kwargs, executor, data):
        index = ShardedIndex(
            inner=name,
            inner_kwargs=kwargs,
            n_shards=N_SHARDS,
            executor=executor,
            n_workers=2,
        ).build(data)
        index.batch_range_query(data[:5], EPS)
        index.close()
        stats = index.stats()
        assert stats["shard_inner_builds"] == N_SHARDS
        assert stats["shard_live_shards"] == N_SHARDS


def test_unqueried_process_index_reports_zero_builds(data):
    # Lazy contract: no queries -> no worker builds, and close() must
    # not spawn never-started workers just to hear "0 builds".
    index = ShardedIndex(n_shards=N_SHARDS, executor="process", n_workers=2).build(data)
    assert index.stats()["shard_inner_builds"] == 0
    index.close()
    assert index.stats()["shard_inner_builds"] == 0


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
@pytest.mark.parametrize("name,kwargs", BACKENDS, ids=backend_ids)
class TestClustererFitBuildOnce:
    def test_dbscan_fit_builds_each_shard_once(
        self, name, kwargs, executor, data, build_counter
    ):
        baseline = DBSCAN(
            eps=EPS, tau=TAU, execution=ExecutionConfig(index=SPECS[name])
        ).fit(data)
        parent_builds_before = build_counter["n"]
        result = DBSCAN(
            eps=EPS, tau=TAU, execution=sharded_execution(executor, SPECS[name])
        ).fit(data)
        parent_builds = build_counter["n"] - parent_builds_before
        # Shard-before-build: the parent never constructs the
        # whole-dataset index. Serial/thread build the shards in the
        # parent; process workers build them out-of-process.
        assert parent_builds == (0 if executor == "process" else N_SHARDS)
        # Instrumented accounting across all processes: exactly one
        # inner build per live shard per fit.
        assert result.stats["shard_live_shards"] == N_SHARDS
        assert result.stats["shard_inner_builds"] == N_SHARDS
        assert result.stats["shard_rebalances"] == 0
        # Sharding stays invisible: bit-identical clustering.
        assert np.array_equal(result.labels, baseline.labels)
        assert np.array_equal(result.core_mask, baseline.core_mask)


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
class TestLafDbscanBuildOnce:
    def test_laf_fit_builds_each_shard_once_and_matches(
        self, executor, data, build_counter
    ):
        def make(execution=None):
            return LAFDBSCAN(
                eps=EPS,
                tau=TAU,
                estimator=ExactCardinalityEstimator(),
                alpha=1.0,
                execution=execution,
            )

        baseline = make().fit(data)
        parent_builds_before = build_counter["n"]
        result = make(sharded_execution(executor)).fit(data)
        parent_builds = build_counter["n"] - parent_builds_before
        # The oracle estimator builds one BruteForceIndex of its own in
        # bind() — estimator machinery, not the range-query engine; the
        # engine itself contributes 0 (process) / N_SHARDS parent builds.
        assert parent_builds == (0 if executor == "process" else N_SHARDS) + 1
        assert result.stats["shard_inner_builds"] == N_SHARDS
        assert np.array_equal(result.labels, baseline.labels)
        assert result.stats["range_queries"] == baseline.stats["range_queries"]
        assert result.stats["skipped_queries"] == baseline.stats["skipped_queries"]
