"""Tests for Equation 1: cosine <-> Euclidean conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import (
    cosine_from_euclidean,
    euclidean_from_cosine,
    normalize_rows,
)
from repro.exceptions import InvalidParameterError


class TestEquation1:
    def test_paper_example(self):
        # "when d_cos = 0.5, the equivalent d_euc = 1.0"
        assert euclidean_from_cosine(0.5) == pytest.approx(1.0)
        assert cosine_from_euclidean(1.0) == pytest.approx(0.5)

    def test_endpoints(self):
        assert euclidean_from_cosine(0.0) == 0.0
        assert euclidean_from_cosine(2.0) == pytest.approx(2.0)
        assert cosine_from_euclidean(0.0) == 0.0
        assert cosine_from_euclidean(2.0) == pytest.approx(2.0)

    @given(st.floats(0.0, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, d_cos):
        assert cosine_from_euclidean(euclidean_from_cosine(d_cos)) == pytest.approx(
            d_cos, abs=1e-12
        )

    @given(st.floats(0.0, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, d_cos):
        if d_cos < 2.0:
            assert euclidean_from_cosine(d_cos) <= euclidean_from_cosine(
                min(d_cos + 0.1, 2.0)
            )

    def test_matches_geometry_on_actual_unit_vectors(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            u = normalize_rows(rng.normal(size=10))
            v = normalize_rows(rng.normal(size=10))
            d_cos = 1.0 - float(u @ v)
            d_euc = float(np.linalg.norm(u - v))
            assert euclidean_from_cosine(d_cos) == pytest.approx(d_euc, abs=1e-9)

    def test_array_input(self):
        arr = np.array([0.0, 0.5, 2.0])
        out = euclidean_from_cosine(arr)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, [0.0, 1.0, 2.0])

    def test_scalar_returns_float(self):
        assert isinstance(euclidean_from_cosine(0.3), float)
        assert isinstance(cosine_from_euclidean(0.3), float)

    @pytest.mark.parametrize("bad", [-0.1, 2.5, 100.0])
    def test_cosine_domain_errors(self, bad):
        with pytest.raises(InvalidParameterError):
            euclidean_from_cosine(bad)

    @pytest.mark.parametrize("bad", [-0.1, 2.0001])
    def test_euclidean_domain_errors(self, bad):
        with pytest.raises(InvalidParameterError):
            cosine_from_euclidean(bad)
