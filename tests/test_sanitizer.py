"""Runtime resource sanitizer: snapshot unit tests + pytester end-to-end."""

from __future__ import annotations

import os
import socket
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.testing.sanitizer import ResourceSnapshot, capture_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"),
    reason="sanitizer introspection requires procfs (Linux)",
)


# ---------------------------------------------------------------------------
# Snapshot primitives
# ---------------------------------------------------------------------------


class TestSnapshots:
    def test_clean_window_has_no_leaks(self):
        before = capture_snapshot()
        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            pass
        finally:
            shm.close()
            shm.unlink()
        assert capture_snapshot().leaks_since(before) == {}

    def test_open_shm_detected(self):
        before = capture_snapshot()
        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            leaks = capture_snapshot().leaks_since(before)
            assert "shm" in leaks
            assert any(shm.name.lstrip("/") in entry for entry in leaks["shm"])
        finally:
            shm.close()
            shm.unlink()

    def test_open_socket_detected(self):
        before = capture_snapshot()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            leaks = capture_snapshot().leaks_since(before)
            assert "sockets" in leaks
        finally:
            sock.close()
        assert capture_snapshot().leaks_since(before) == {}

    def test_snapshot_is_frozen(self):
        snap = capture_snapshot()
        assert isinstance(snap, ResourceSnapshot)
        with pytest.raises(AttributeError):
            snap.shm = frozenset()


# ---------------------------------------------------------------------------
# Plugin end-to-end (real nested pytest runs via pytester)
# ---------------------------------------------------------------------------


@pytest.fixture
def sanitized_pytester(pytester: pytest.Pytester, monkeypatch) -> pytest.Pytester:
    """A pytester whose sub-runs can import repro and load the plugin.

    pytester chdirs into a temp dir, so the repo-relative PYTHONPATH the
    tier-1 command uses would stop resolving; pin the absolute paths.
    """
    monkeypatch.setenv(
        "PYTHONPATH",
        os.pathsep.join([str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]),
    )
    # keep sub-run leak rechecks fast and the watchdog out of the way
    monkeypatch.setenv("REPRO_SANITIZER_RETRIES", "2")
    monkeypatch.delenv("REPRO_SANITIZER_TIMEOUT", raising=False)
    return pytester


def _cleanup_shm(name_file: Path) -> None:
    """Unlink a segment a nested test leaked on purpose."""
    if not name_file.exists():
        return
    name = name_file.read_text().strip()
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        # The nested interpreter's resource tracker races this cleanup
        # and may unlink the segment first; either winner is fine.
        pass


class TestSanitizerPlugin:
    def test_injected_shm_leak_fails_the_test(self, sanitized_pytester, tmp_path):
        """The acceptance-criteria scenario: an unclosed SharedMemory."""
        name_file = tmp_path / "leaked_name.txt"
        sanitized_pytester.makepyfile(
            f"""
            from multiprocessing import shared_memory

            def test_leaks_shm():
                shm = shared_memory.SharedMemory(create=True, size=64)
                open({str(name_file)!r}, "w").write(shm.name)
            """
        )
        try:
            result = sanitized_pytester.runpytest_subprocess(
                "-p", "repro.testing.sanitizer", "-p", "no:cacheprovider"
            )
            result.assert_outcomes(passed=1, errors=1)
            result.stdout.fnmatch_lines(["*leaked OS resources*shm*"])
        finally:
            _cleanup_shm(name_file)

    def test_injected_socket_leak_fails_the_test(self, sanitized_pytester):
        sanitized_pytester.makepyfile(
            """
            import socket

            _KEEP = []

            def test_leaks_socket():
                _KEEP.append(socket.socket(socket.AF_INET, socket.SOCK_STREAM))
            """
        )
        result = sanitized_pytester.runpytest_subprocess(
            "-p", "repro.testing.sanitizer", "-p", "no:cacheprovider"
        )
        result.assert_outcomes(passed=1, errors=1)
        result.stdout.fnmatch_lines(["*leaked OS resources*sockets*"])

    def test_clean_test_passes(self, sanitized_pytester):
        sanitized_pytester.makepyfile(
            """
            from multiprocessing import shared_memory

            def test_clean():
                shm = shared_memory.SharedMemory(create=True, size=64)
                try:
                    assert len(shm.buf) >= 64
                finally:
                    shm.close()
                    shm.unlink()
            """
        )
        result = sanitized_pytester.runpytest_subprocess(
            "-p", "repro.testing.sanitizer", "-p", "no:cacheprovider"
        )
        result.assert_outcomes(passed=1, errors=0)

    def test_marker_exempts_leaky_test(self, sanitized_pytester, tmp_path):
        name_file = tmp_path / "leaked_name.txt"
        sanitized_pytester.makepyfile(
            f"""
            import pytest
            from multiprocessing import shared_memory

            @pytest.mark.allow_resource_leaks
            def test_leaks_but_exempt():
                shm = shared_memory.SharedMemory(create=True, size=64)
                open({str(name_file)!r}, "w").write(shm.name)
            """
        )
        try:
            result = sanitized_pytester.runpytest_subprocess(
                "-p", "repro.testing.sanitizer", "-p", "no:cacheprovider"
            )
            result.assert_outcomes(passed=1, errors=0)
        finally:
            _cleanup_shm(name_file)

    def test_watchdog_dumps_stacks_on_slow_test(
        self, sanitized_pytester, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SANITIZER_TIMEOUT", "1")
        sanitized_pytester.makepyfile(
            """
            import time

            def test_slow():
                time.sleep(2.5)
            """
        )
        # -s: pytest's fd capture would otherwise swallow the dump that
        # faulthandler writes straight to fd 2 when the test passes
        result = sanitized_pytester.runpytest_subprocess(
            "-p", "repro.testing.sanitizer", "-p", "no:cacheprovider", "-s"
        )
        # the watchdog reports (exit=False) without killing the test
        result.assert_outcomes(passed=1)
        result.stderr.fnmatch_lines(["*Timeout*"])
