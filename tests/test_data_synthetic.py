"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import make_glove_like, make_ms_like, make_nyt_like, uniform_sphere
from repro.exceptions import InvalidParameterError


class TestUniformSphere:
    def test_shape_and_norm(self):
        X = uniform_sphere(100, 16, seed=0)
        assert X.shape == (100, 16)
        assert np.allclose(np.linalg.norm(X, axis=1), 1.0)

    def test_deterministic(self):
        assert np.array_equal(
            uniform_sphere(10, 4, seed=1), uniform_sphere(10, 4, seed=1)
        )

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            uniform_sphere(-1, 4)
        with pytest.raises(InvalidParameterError):
            uniform_sphere(5, 1)


@pytest.mark.parametrize(
    "generator,dim_kw,dim",
    [
        (make_ms_like, "dim", 64),
        (make_glove_like, "dim", 48),
        (make_nyt_like, "out_dim", 32),
    ],
)
class TestGeneratorsCommon:
    def test_shape_labels_and_norm(self, generator, dim_kw, dim):
        X, y = generator(300, **{dim_kw: dim}, seed=0)
        assert X.shape == (300, dim)
        assert y.shape == (300,)
        assert np.allclose(np.linalg.norm(X, axis=1), 1.0, atol=1e-9)

    def test_deterministic(self, generator, dim_kw, dim):
        X1, y1 = generator(120, **{dim_kw: dim}, seed=5)
        X2, y2 = generator(120, **{dim_kw: dim}, seed=5)
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)

    def test_different_seeds_differ(self, generator, dim_kw, dim):
        X1, _ = generator(120, **{dim_kw: dim}, seed=5)
        X2, _ = generator(120, **{dim_kw: dim}, seed=6)
        assert not np.allclose(X1, X2)

    def test_noise_fraction_respected(self, generator, dim_kw, dim):
        _, y = generator(200, **{dim_kw: dim}, noise_fraction=0.25, seed=1)
        assert np.count_nonzero(y == -1) == 50

    def test_invalid_noise_fraction(self, generator, dim_kw, dim):
        with pytest.raises(InvalidParameterError):
            generator(50, **{dim_kw: dim}, noise_fraction=1.0)


class TestClusterGeometry:
    """The generators must put same-cluster points angularly closer."""

    @pytest.mark.parametrize(
        "generator,kwargs",
        [
            (make_ms_like, {"dim": 64}),
            (make_glove_like, {"dim": 48}),
        ],
    )
    def test_intra_closer_than_inter(self, generator, kwargs):
        X, y = generator(400, **kwargs, seed=2)
        rng = np.random.default_rng(0)
        intra, inter = [], []
        for _ in range(600):
            i, j = rng.integers(0, X.shape[0], 2)
            if y[i] == -1 or y[j] == -1 or i == j:
                continue
            d = 1.0 - float(X[i] @ X[j])
            (intra if y[i] == y[j] else inter).append(d)
        assert np.mean(intra) < np.mean(inter)

    def test_ms_like_cluster_count(self):
        _, y = make_ms_like(500, dim=64, n_macro=4, micro_per_macro=3, seed=3)
        labels = set(y.tolist()) - {-1}
        assert len(labels) == 12  # 4 macro x 3 micro

    def test_glove_like_zipf_sizes(self):
        _, y = make_glove_like(600, dim=32, n_clusters=10, seed=4, noise_fraction=0.0)
        _, counts = np.unique(y, return_counts=True)
        # Zipf skew: largest cluster much bigger than smallest.
        assert counts.max() > 3 * counts.min()

    def test_nyt_like_dominant_topic_labels(self):
        _, y = make_nyt_like(200, out_dim=32, n_topics=6, seed=5)
        labels = set(y.tolist()) - {-1}
        assert labels <= set(range(6))
