"""The remote worker pool: protocol, differential, warm reuse, faults.

Contracts under test:

* **Wire protocol** — framed header+arrays round-trip exactly; a clean
  EOF at a frame boundary reads as None; garbage raises the typed
  :class:`~repro.exceptions.RemoteProtocolError`.
* **Invisible distribution** — a fit with a ``remote`` executor spec
  against a localhost 2-worker pool is bit-identical to the serial
  path: ShardedIndex queries for every exact inner backend, and DBSCAN
  / LAF-DBSCAN labels end to end.
* **Warm reuse** — a second fit against the same pool attaches to the
  workers' cached shard indexes and reports
  ``shard_inner_builds == 0`` in ``ClusteringResult.stats``; a
  persisted sharded artifact reattaches the same way by path.
* **Robustness** (fork-gated, like the process-executor teardown
  suite) — a worker killed mid-fit gets its shards rebalanced to the
  survivors with bit-identical labels and ``shard_rebalances >= 1``;
  exhausted per-call timeouts raise the typed
  :class:`~repro.exceptions.RetryExhaustedError` without poisoning the
  pool for the next fit.

Everything is deterministic: fixed seeds, flag-file choreography for
the fault injection, no reliance on test order (the module-scoped pool
is warm state, but every assertion establishes its own baseline).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

import repro.index.sharded as sharded_mod
from repro.clustering import DBSCAN
from repro.core import LAFDBSCAN
from repro.engine_config import ExecutionConfig, IndexSpec
from repro.estimators import ExactCardinalityEstimator
from repro.exceptions import (
    RemoteExecutorError,
    RemoteProtocolError,
    RetryExhaustedError,
    WorkerUnavailableError,
)
from repro.index.sharded import ExecutorSpec, ShardedIndex, ShardingConfig
from repro.remote.pool import WorkerPool
from repro.remote.protocol import recv_msg, send_msg
from repro.testing import make_blobs_on_sphere

EPS = 0.55
TAU = 4

#: Same exact-backend matrix as the sharded differential suite (the
#: k-means tree in exact mode; the grid is range/count-only).
BACKENDS = [
    ("brute_force", {}),
    ("cover_tree", {"base": 1.6}),
    ("kmeans_tree", {"checks_ratio": 1.0, "seed": 0, "leaf_size": 8}),
    ("grid", {"eps": EPS, "rho": 1.0}),
]
KNN_BACKENDS = [(n, kw) for n, kw in BACKENDS if n != "grid"]
backend_ids = [n for n, _ in BACKENDS]
knn_backend_ids = [n for n, _ in KNN_BACKENDS]


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    X, _ = make_blobs_on_sphere(20, 3, 10, spread=0.2, seed=7)
    return X


@pytest.fixture(scope="module")
def pool():
    with WorkerPool.spawn_local(2) as pool:
        yield pool


def remote_execution(pool, n_shards=3, index=None, **options) -> ExecutionConfig:
    return ExecutionConfig(
        index=index,
        sharding=ShardingConfig(
            n_shards=n_shards, executor=pool.executor_spec(**options)
        ),
    )


def serial_execution(n_shards=3, index=None) -> ExecutionConfig:
    return ExecutionConfig(
        index=index, sharding=ShardingConfig(n_shards=n_shards, executor="serial")
    )


class TestProtocol:
    def test_header_and_arrays_round_trip(self):
        a, b = socket.socketpair()
        try:
            arrays = {
                "indptr": np.arange(5, dtype=np.int64),
                "flat": np.array([[1.5, -2.5]], dtype=np.float64),
            }
            send_msg(a, {"op": "query", "arg": 0.5}, arrays)
            header, got = recv_msg(b)
            assert header == {"op": "query", "arg": 0.5}
            assert set(got) == {"indptr", "flat"}
            for name in got:
                assert got[name].dtype == arrays[name].dtype
                assert np.array_equal(got[name], arrays[name])
        finally:
            a.close()
            b.close()

    def test_clean_eof_reads_as_none(self):
        a, b = socket.socketpair()
        try:
            a.close()
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_is_worker_unavailable(self):
        a, b = socket.socketpair()
        try:
            send_msg(a, {"op": "ping"})
            # Feed a truncated second frame: magic only, then hang up.
            a.sendall(b"RPP1\x00\x00")
            a.close()
            assert recv_msg(b) is not None  # the complete first frame
            with pytest.raises(WorkerUnavailableError):
                recv_msg(b)
        finally:
            b.close()

    def test_bad_magic_is_a_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"HTTP/1.1 200 OK\r\n")
            with pytest.raises(RemoteProtocolError, match="magic"):
                recv_msg(b)
        finally:
            a.close()
            b.close()


@pytest.mark.parametrize("name,kwargs", BACKENDS, ids=backend_ids)
class TestShardedQueriesMatchSerial:
    def _pair(self, name, kwargs, data, pool):
        remote = ShardedIndex(
            inner=name, inner_kwargs=kwargs, n_shards=3, executor=pool.executor_spec()
        ).build(data)
        serial = ShardedIndex(
            inner=name, inner_kwargs=kwargs, n_shards=3, executor="serial"
        ).build(data)
        return remote, serial

    def test_batch_range_query(self, name, kwargs, data, pool):
        remote, serial = self._pair(name, kwargs, data, pool)
        with remote, serial:
            got = remote.batch_range_query(data, EPS)
            expected = serial.batch_range_query(data, EPS)
        assert all(np.array_equal(g, e) for g, e in zip(got, expected))

    def test_batch_range_count(self, name, kwargs, data, pool):
        remote, serial = self._pair(name, kwargs, data, pool)
        with remote, serial:
            assert np.array_equal(
                remote.batch_range_count(data, EPS),
                serial.batch_range_count(data, EPS),
            )


@pytest.mark.parametrize("name,kwargs", KNN_BACKENDS, ids=knn_backend_ids)
def test_batch_knn_query_matches_serial(name, kwargs, data, pool):
    remote = ShardedIndex(
        inner=name, inner_kwargs=kwargs, n_shards=3, executor=pool.executor_spec()
    ).build(data)
    serial = ShardedIndex(
        inner=name, inner_kwargs=kwargs, n_shards=3, executor="serial"
    ).build(data)
    with remote, serial:
        got_idx, got_dist = remote.batch_knn_query(data, 5)
        exp_idx, exp_dist = serial.batch_knn_query(data, 5)
    assert all(np.array_equal(g, e) for g, e in zip(got_idx, exp_idx))
    assert all(np.allclose(g, e) for g, e in zip(got_dist, exp_dist))


@pytest.mark.parametrize("name,kwargs", BACKENDS, ids=backend_ids)
class TestClusterersMatchSerial:
    def test_dbscan_labels_bit_identical(self, name, kwargs, data, pool):
        spec = IndexSpec(name, kwargs)
        baseline = DBSCAN(eps=EPS, tau=TAU, execution=serial_execution(index=spec))
        remote = DBSCAN(
            eps=EPS, tau=TAU, execution=remote_execution(pool, index=spec)
        )
        expected = baseline.fit(data)
        got = remote.fit(data)
        assert np.array_equal(expected.labels, got.labels)
        assert np.array_equal(expected.core_mask, got.core_mask)

    def test_laf_dbscan_labels_bit_identical(self, name, kwargs, data, pool):
        spec = IndexSpec(name, kwargs)
        estimator = ExactCardinalityEstimator()
        baseline = LAFDBSCAN(
            eps=EPS,
            tau=TAU,
            estimator=estimator,
            seed=0,
            execution=serial_execution(index=spec),
        ).fit(data)
        got = LAFDBSCAN(
            eps=EPS,
            tau=TAU,
            estimator=estimator,
            seed=0,
            execution=remote_execution(pool, index=spec),
        ).fit(data)
        assert np.array_equal(baseline.labels, got.labels)


class TestWarmReuse:
    def test_second_fit_pays_zero_inner_builds(self, data, pool):
        execution = remote_execution(pool)
        first = DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
        second = DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
        assert np.array_equal(first.labels, second.labels)
        assert second.stats["shard_inner_builds"] == 0
        assert second.stats["shard_rebalances"] == 0

    def test_new_eps_reuses_eps_independent_indexes(self, data, pool):
        # Range queries parameterize eps per call: a warm cover_tree
        # shard serves any eps without rebuilding.
        spec = IndexSpec("cover_tree", {"base": 1.6})
        execution = remote_execution(pool, index=spec)
        DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
        other_eps = DBSCAN(eps=EPS - 0.1, tau=TAU, execution=execution).fit(data)
        assert other_eps.stats["shard_inner_builds"] == 0

    def test_persisted_artifact_reattaches_warm(self, data, pool, tmp_path):
        from repro.persistence import load_index, save_index

        built = ShardedIndex(
            inner="cover_tree", n_shards=3, executor="serial"
        ).build(data)
        with built:
            save_index(built, tmp_path / "sharded")
            expected = built.batch_range_query(data[:8], EPS)

        loaded = load_index(tmp_path / "sharded", executor=pool.executor_spec())
        with loaded:
            got = loaded.batch_range_query(data[:8], EPS)
            first_builds = loaded.stats()["shard_inner_builds"]
        assert all(np.array_equal(g, e) for g, e in zip(got, expected))

        again = load_index(tmp_path / "sharded", executor=pool.executor_spec())
        with again:
            again.batch_range_query(data[:8], EPS)
            assert again.stats()["shard_inner_builds"] == 0
        assert first_builds == 3


class TestPoolLifecycle:
    def test_ping_reports_one_pid_per_worker(self, pool):
        pids = pool.ping()
        assert len(pids) == 2
        assert pids == pool.worker_pids

    def test_executor_spec_carries_the_addresses(self, pool):
        spec = pool.executor_spec(retries=1)
        assert spec == ExecutorSpec(
            "remote", {"addresses": pool.addresses, "retries": 1}
        )

    def test_unreachable_worker_raises_typed_error(self, data):
        # A port nothing listens on: connection refused, no survivors.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        execution = ExecutionConfig(
            sharding=ShardingConfig(
                n_shards=2,
                executor=ExecutorSpec(
                    "remote", {"addresses": [f"127.0.0.1:{port}"]}
                ),
            )
        )
        with pytest.raises(RemoteExecutorError):
            DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)


# ----------------------------------------------------------------------
# Fault injection (fork-gated: monkeypatched shard ops must reach the
# worker processes by inheritance, and worker pids must be killable).
# ----------------------------------------------------------------------

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method (monkeypatch inheritance)",
)


def _wait_for(predicate, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("fault-injection choreography timed out")
        time.sleep(0.01)


@fork_only
class TestFaultInjection:
    def test_worker_killed_mid_fit_rebalances_bit_identically(
        self, data, monkeypatch, tmp_path
    ):
        target_file = tmp_path / "target_pid"
        ready_file = tmp_path / "entered"
        original = sharded_mod._SHARD_OPS["range"]

        def doomed_range(index, Q, eps):
            # Only the targeted worker stalls (announcing itself first);
            # its sibling keeps serving so the rebalance has a survivor.
            if target_file.exists() and int(target_file.read_text()) == os.getpid():
                ready_file.touch()
                time.sleep(60.0)
            return original(index, Q, eps)

        monkeypatch.setitem(sharded_mod._SHARD_OPS, "range", doomed_range)
        with WorkerPool.spawn_local(2) as pool:
            baseline = DBSCAN(eps=EPS, tau=TAU, execution=serial_execution()).fit(
                data
            )
            victim = pool.worker_pids[0]
            target_file.write_text(str(victim))

            def assassinate():
                _wait_for(ready_file.exists)
                os.kill(victim, signal.SIGKILL)

            killer = threading.Thread(target=assassinate)
            killer.start()
            try:
                result = DBSCAN(
                    eps=EPS, tau=TAU, execution=remote_execution(pool)
                ).fit(data)
            finally:
                killer.join(timeout=30)
                target_file.unlink()
            assert np.array_equal(baseline.labels, result.labels)
            assert result.stats["shard_rebalances"] >= 1

    def test_timeout_exhausts_retries_without_poisoning_the_pool(
        self, data, monkeypatch, tmp_path
    ):
        stall_file = tmp_path / "stall"
        original = sharded_mod._SHARD_OPS["range"]

        def stalling_range(index, Q, eps):
            if stall_file.exists():
                time.sleep(2.0)
            return original(index, Q, eps)

        monkeypatch.setitem(sharded_mod._SHARD_OPS, "range", stalling_range)
        with WorkerPool.spawn_local(2) as pool:
            execution = remote_execution(pool, timeout_s=0.3, retries=1)
            stall_file.touch()
            with pytest.raises(RetryExhaustedError, match="timed"):
                DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
            stall_file.unlink()
            # One timed-out block does not poison the pool: the same
            # spec (same workers) serves the next fit normally.
            baseline = DBSCAN(eps=EPS, tau=TAU, execution=serial_execution()).fit(
                data
            )
            result = DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
            assert np.array_equal(baseline.labels, result.labels)
            assert len(pool.ping()) == 2

    def test_every_worker_dead_raises_typed_error(self, data):
        pool = WorkerPool.spawn_local(2)
        try:
            execution = remote_execution(pool)
            DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
            for proc, pid in zip(pool._processes, pool.worker_pids):
                os.kill(pid, signal.SIGKILL)
                proc.join(timeout=30)
            with pytest.raises(WorkerUnavailableError):
                DBSCAN(eps=EPS, tau=TAU, execution=execution).fit(data)
        finally:
            pool.shutdown()
