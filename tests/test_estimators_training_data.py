"""Tests for the cardinality training-set builder."""

import numpy as np
import pytest

from repro.distances import normalize_rows
from repro.estimators import build_training_set
from repro.estimators.training_data import DEFAULT_RADII, make_features
from repro.exceptions import DataValidationError, InvalidParameterError
from repro.index import BruteForceIndex


@pytest.fixture(scope="module")
def train_matrix():
    rng = np.random.default_rng(0)
    return normalize_rows(rng.normal(size=(80, 12)))


class TestDefaults:
    def test_paper_radius_grid(self):
        assert DEFAULT_RADII == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


class TestMakeFeatures:
    def test_appends_radius_column(self):
        Q = np.ones((3, 4))
        feats = make_features(Q, 0.5)
        assert feats.shape == (3, 5)
        assert np.all(feats[:, -1] == 0.5)

    def test_single_vector(self):
        feats = make_features(np.ones(4), 0.3)
        assert feats.shape == (1, 5)


class TestBuildTrainingSet:
    def test_shapes(self, train_matrix):
        ts = build_training_set(train_matrix, n_queries=10, radii=(0.3, 0.6), seed=0)
        assert ts.features.shape == (20, 13)
        assert ts.fractions.shape == (20,)
        assert ts.n_examples == 20
        assert ts.dim == 12
        assert ts.n_reference == 80

    def test_all_queries_when_none(self, train_matrix):
        ts = build_training_set(train_matrix, n_queries=None, radii=(0.5,), seed=0)
        assert ts.n_examples == 80

    def test_fractions_are_exact_counts(self, train_matrix):
        ts = build_training_set(train_matrix, n_queries=None, radii=(0.4,), seed=0)
        index = BruteForceIndex().build(train_matrix)
        for row in range(0, 80, 11):
            q = ts.features[row, :-1]
            expected = index.range_count(q, 0.4) / 80
            assert ts.fractions[row] == pytest.approx(expected)

    def test_fractions_monotone_in_radius(self, train_matrix):
        ts = build_training_set(
            train_matrix, n_queries=5, radii=(0.2, 0.5, 0.9), seed=1
        )
        per_query = ts.fractions.reshape(5, 3)
        assert (np.diff(per_query, axis=1) >= 0).all()

    def test_radii_sorted_in_features(self, train_matrix):
        ts = build_training_set(train_matrix, n_queries=2, radii=(0.9, 0.1), seed=0)
        assert ts.radii == (0.1, 0.9)
        assert np.allclose(ts.features[:2, -1], [0.1, 0.9])

    def test_fraction_range(self, train_matrix):
        ts = build_training_set(train_matrix, seed=0)
        assert (ts.fractions >= 0).all()
        assert (ts.fractions <= 1).all()
        # Every query is a data point: at tiny radius it finds itself.
        assert (ts.fractions > 0).all()

    def test_deterministic(self, train_matrix):
        a = build_training_set(train_matrix, n_queries=7, seed=3)
        b = build_training_set(train_matrix, n_queries=7, seed=3)
        assert np.array_equal(a.features, b.features)

    def test_invalid_radii(self, train_matrix):
        with pytest.raises(InvalidParameterError):
            build_training_set(train_matrix, radii=())
        with pytest.raises(InvalidParameterError):
            build_training_set(train_matrix, radii=(0.0,))
        with pytest.raises(InvalidParameterError):
            build_training_set(train_matrix, radii=(2.5,))

    def test_invalid_n_queries(self, train_matrix):
        with pytest.raises(InvalidParameterError):
            build_training_set(train_matrix, n_queries=0)

    def test_unnormalized_rejected(self):
        with pytest.raises(DataValidationError):
            build_training_set(np.ones((10, 4)))
