"""Tests for the disjoint-set structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import UnionFind
from repro.exceptions import InvalidParameterError


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.n_components == 3

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_idempotent_union(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(0, 1)
        assert uf.n_components == 2

    def test_groups_partition(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        groups = uf.groups()
        members = sorted(m for group in groups.values() for m in group)
        assert members == list(range(6))
        assert sorted(len(g) for g in groups.values()) == [1, 1, 2, 2]

    def test_find_returns_consistent_root(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 3)
        roots = {uf.find(i) for i in range(4)}
        assert len(roots) == 1

    def test_len(self):
        assert len(UnionFind(7)) == 7

    def test_zero_elements(self):
        uf = UnionFind(0)
        assert uf.n_components == 0
        assert uf.groups() == {}

    def test_negative_raises(self):
        with pytest.raises(InvalidParameterError):
            UnionFind(-1)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_connectivity(self, edges):
        """Property: union-find connectivity equals graph connectivity."""
        uf = UnionFind(20)
        for a, b in edges:
            uf.union(a, b)
        # Naive transitive closure via BFS.
        import collections

        graph = collections.defaultdict(set)
        for a, b in edges:
            graph[a].add(b)
            graph[b].add(a)

        def reachable(start):
            seen = {start}
            queue = [start]
            while queue:
                node = queue.pop()
                for nxt in graph[node]:
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
            return seen

        for probe in range(0, 20, 3):
            component = reachable(probe)
            for other in range(20):
                assert uf.connected(probe, other) == (other in component)
