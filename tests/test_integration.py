"""End-to-end integration tests: full paper pipeline at miniature scale.

These run the complete protocol — generate dataset, 8:2 split, train the
RMI on the training split, cluster the test split with every method,
score against DBSCAN ground truth — and assert the qualitative claims
the paper makes.
"""

import numpy as np
import pytest

from repro.clustering import DBSCAN
from repro.core import LAFDBSCAN, LAFDBSCANPlusPlus
from repro.data import load_dataset
from repro.experiments import MethodContext, run_suite
from repro.experiments.methods import ALL_METHODS
from repro.experiments.workloads import clear_cache, prepare_workload
from repro.metrics import adjusted_mutual_info, adjusted_rand_index


@pytest.fixture(scope="module")
def workload():
    clear_cache()
    return prepare_workload(
        "MS-50k", scale=0.01, seed=0, epochs=30, n_train_queries=250
    )


class TestWorkloadPreparation:
    def test_split_ratio(self, workload):
        n = workload.X_train.shape[0] + workload.X_test.shape[0]
        assert workload.X_train.shape[0] == round(0.8 * n)

    def test_estimator_fitted_on_train(self, workload):
        assert workload.estimator.training_set_ is not None
        assert (
            workload.estimator.training_set_.n_reference
            == workload.X_train.shape[0]
        )

    def test_alpha_from_table1(self, workload):
        assert workload.alpha == 1.5  # MS-50k in Table 1

    def test_memoization(self, workload):
        again = prepare_workload(
            "MS-50k", scale=0.01, seed=0, epochs=30, n_train_queries=250
        )
        assert again is workload


class TestFullPipeline:
    def test_all_seven_methods_run(self, workload):
        ctx = MethodContext(
            eps=0.55,
            tau=5,
            alpha=workload.alpha,
            estimator=workload.estimator,
            seed=0,
        )
        records = run_suite(workload.X_test, ALL_METHODS, ctx, dataset_name="MS-50k")
        assert {r.method for r in records} == set(ALL_METHODS)
        for r in records:
            assert np.isfinite(r.ari)
            assert r.elapsed_seconds > 0

    def test_laf_dbscan_quality_above_half(self, workload):
        gt = DBSCAN(eps=0.55, tau=5).fit(workload.X_test)
        laf = LAFDBSCAN(
            eps=0.55,
            tau=5,
            estimator=workload.estimator,
            alpha=workload.alpha,
            seed=0,
        ).fit(workload.X_test)
        ari = adjusted_rand_index(gt.labels, laf.labels)
        ami = adjusted_mutual_info(gt.labels, laf.labels)
        assert ari > 0.5, f"LAF-DBSCAN ARI too low: {ari:.3f}"
        assert ami > 0.5, f"LAF-DBSCAN AMI too low: {ami:.3f}"

    def test_laf_dbscan_skips_queries(self, workload):
        laf = LAFDBSCAN(
            eps=0.55,
            tau=5,
            estimator=workload.estimator,
            alpha=workload.alpha,
            seed=0,
        ).fit(workload.X_test)
        n = workload.X_test.shape[0]
        assert laf.stats["range_queries"] < n
        assert laf.stats["skipped_queries"] > 0

    def test_laf_dbscanpp_faster_than_dbscanpp_in_queries(self, workload):
        laf = LAFDBSCANPlusPlus(
            eps=0.55, tau=5, estimator=workload.estimator, p=0.4, seed=0
        ).fit(workload.X_test)
        assert laf.stats["range_queries"] < laf.stats["sample_size"]


class TestCrossDatasetGeneralization:
    """The paper argues a trained estimator transfers to data with a
    similar distribution; MS datasets share one distribution family."""

    def test_ms50k_estimator_works_on_ms100k(self, workload):
        other = load_dataset("MS-100k", scale=0.004, seed=1)
        X = other.X
        gt = DBSCAN(eps=0.55, tau=5).fit(X)
        laf = LAFDBSCAN(
            eps=0.55, tau=5, estimator=workload.estimator, alpha=1.5, seed=0
        ).fit(X)
        # Transfer keeps quality above chance by a wide margin.
        assert adjusted_mutual_info(gt.labels, laf.labels) > 0.3
