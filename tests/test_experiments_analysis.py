"""Tests for param_select (Table 2), tradeoff (Fig 2/3), missed (Table 6),
efficiency helpers (Fig 1/4, Table 4) and ablations."""

import pytest

from repro.clustering import DBSCAN
from repro.estimators import ExactCardinalityEstimator, SamplingCardinalityEstimator
from repro.experiments.ablation import (
    classical_estimators,
    estimator_ablation,
    postprocessing_ablation,
)
from repro.experiments.efficiency import rho_vs_dbscan, speedup_summary
from repro.experiments.missed import missed_cluster_analysis
from repro.experiments.param_select import (
    GridCell,
    PAPER_EPS_TAU,
    parameter_grid,
    select_representative,
)
from repro.experiments.runner import RunRecord
from repro.experiments.tradeoff import (
    sweep_block_dbscan,
    sweep_dbscanpp,
    sweep_knn_block,
    sweep_laf_alpha,
    sweep_laf_dbscanpp,
)

from repro.testing import make_blobs_on_sphere


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs_on_sphere(35, 3, 16, spread=0.3, seed=0)
    return X


@pytest.fixture(scope="module")
def gt(data):
    return DBSCAN(eps=0.5, tau=4).fit(data).labels


class TestParamSelect:
    def test_paper_settings_constant(self):
        assert PAPER_EPS_TAU == ((0.5, 3), (0.55, 5), (0.6, 5))

    def test_grid_covers_all_combinations(self, data):
        cells = parameter_grid({"A": data}, eps_values=(0.4, 0.6), tau_values=(3, 5))
        assert len(cells) == 4
        assert {(c.eps, c.tau) for c in cells} == {
            (0.4, 3),
            (0.4, 5),
            (0.6, 3),
            (0.6, 5),
        }

    def test_cell_statistics_match_dbscan(self, data):
        cells = parameter_grid({"A": data}, eps_values=(0.5,), tau_values=(4,))
        direct = DBSCAN(eps=0.5, tau=4).fit(data)
        assert cells[0].noise_ratio == pytest.approx(direct.noise_ratio)
        assert cells[0].n_clusters == direct.n_clusters

    def test_cell_format(self):
        cell = GridCell("MS-50k", 0.5, 5, 0.83, 174)
        assert cell.as_pair() == "(0.83, 174)"

    def test_select_representative_rule(self):
        cells = [
            GridCell("A", 0.5, 3, 0.3, 30),
            GridCell("B", 0.5, 3, 0.4, 25),
            GridCell("A", 0.7, 3, 0.9, 2),
            GridCell("B", 0.7, 3, 0.95, 1),
        ]
        selected = select_representative(cells, min_datasets_satisfying=2)
        assert selected == [(0.5, 3)]


class TestTradeoffSweeps:
    def test_laf_alpha_sweep_shapes(self, data, gt):
        est = ExactCardinalityEstimator()
        points = sweep_laf_alpha(data, gt, est, 0.5, 4, alphas=(1.0, 3.0))
        assert [p.value for p in points] == [1.0, 3.0]
        assert points[0].ari == pytest.approx(1.0)  # oracle at alpha=1
        assert all(p.method == "LAF-DBSCAN" for p in points)

    def test_quality_degrades_with_alpha_oracle(self, data, gt):
        est = ExactCardinalityEstimator()
        points = sweep_laf_alpha(data, gt, est, 0.5, 4, alphas=(1.0, 100.0))
        assert points[0].ami >= points[1].ami

    def test_dbscanpp_delta_sweep(self, data, gt):
        est = ExactCardinalityEstimator()
        points = sweep_dbscanpp(data, gt, est, 0.5, 4, deltas=(0.1, 0.9))
        assert len(points) == 2
        assert all(p.method == "DBSCAN++" for p in points)

    def test_laf_dbscanpp_delta_sweep(self, data, gt):
        est = ExactCardinalityEstimator()
        points = sweep_laf_dbscanpp(data, gt, est, 0.5, 4, deltas=(0.5,))
        assert points[0].method == "LAF-DBSCAN++"

    def test_knn_block_grid_sweep(self, data, gt):
        points = sweep_knn_block(data, gt, 0.5, 4, branchings=(4,), checks=(0.1, 1.0))
        assert len(points) == 2
        assert points[0].knob.startswith("branching=4")

    def test_block_dbscan_base_sweep(self, data, gt):
        points = sweep_block_dbscan(data, gt, 0.5, 4, bases=(1.5, 3.0))
        assert [p.value for p in points] == [1.5, 3.0]

    def test_point_row_format(self, data, gt):
        est = ExactCardinalityEstimator()
        point = sweep_laf_alpha(data, gt, est, 0.5, 4, alphas=(1.0,))[0]
        row = point.as_row()
        assert {"method", "knob", "value", "time_s", "ARI", "AMI"} == set(row)


class TestMissedAnalysis:
    def test_oracle_misses_nothing(self, data):
        stats, run_stats = missed_cluster_analysis(
            data, ExactCardinalityEstimator(), 0.5, 4, alpha=1.0
        )
        assert stats.missed_clusters == 0
        assert run_stats["fn_detected"] == 0

    def test_aggressive_alpha_misses_clusters(self, data):
        stats, _ = missed_cluster_analysis(
            data, ExactCardinalityEstimator(), 0.5, 4, alpha=1e9
        )
        # Everything predicted stop: every cluster fully missed.
        assert stats.missed_clusters == stats.total_clusters
        assert stats.missed_point_fraction == pytest.approx(1.0)


class TestEfficiencyHelpers:
    def test_rho_vs_dbscan_rows(self, data):
        rows = rho_vs_dbscan({"A": data}, settings=((0.5, 4),))
        assert len(rows) == 1
        assert "A" in rows[0]
        assert "/" in rows[0]["A"]
        assert rows[0]["A_ratio"] > 0

    def test_speedup_summary(self):
        records = [
            RunRecord("DBSCAN", "d", 0.5, 5, 2.0, 1, 1, 3, 0.1, {}),
            RunRecord("LAF-DBSCAN", "d", 0.5, 5, 1.0, 1, 1, 3, 0.1, {}),
            RunRecord("DBSCAN++", "d", 0.5, 5, 1.5, 1, 1, 3, 0.1, {}),
            RunRecord("LAF-DBSCAN++", "d", 0.5, 5, 0.5, 1, 1, 3, 0.1, {}),
        ]
        summary = speedup_summary(records)
        assert summary["laf_dbscan_over_dbscan"] == pytest.approx(2.0)
        assert summary["laf_dbscanpp_over_dbscanpp"] == pytest.approx(3.0)

    def test_speedup_summary_missing_methods(self):
        records = [RunRecord("DBSCAN", "d", 0.5, 5, 2.0, 1, 1, 3, 0.1, {})]
        assert speedup_summary(records) == {}


class TestAblations:
    def test_classical_estimator_registry(self):
        estimators = classical_estimators()
        assert set(estimators) == {"exact-oracle", "sampling", "kde", "histogram"}

    def test_estimator_ablation_runs_all(self, data):
        learned = SamplingCardinalityEstimator(sample_size=30, seed=0).fit(data)
        records = estimator_ablation(data, data, learned, 0.5, 4, alpha=1.2)
        variants = {r.variant for r in records}
        assert "rmi-learned" in variants
        assert "exact-oracle" in variants
        assert len(records) == 5

    def test_postprocessing_ablation_pairs(self, data):
        est = SamplingCardinalityEstimator(sample_size=30, seed=0).fit(data)
        records = postprocessing_ablation(data, est, 0.5, 4, alphas=(2.0,))
        assert len(records) == 2
        with_pp = next(r for r in records if "with-postproc" in r.variant)
        without = next(r for r in records if "no-postproc" in r.variant)
        assert without.merges == 0
        assert with_pp.merges >= 0
