"""Tests for KNN-BLOCK DBSCAN."""

import numpy as np
import pytest

from repro.clustering import DBSCAN, KNNBlockDBSCAN
from repro.exceptions import InvalidParameterError
from repro.metrics import adjusted_rand_index

from repro.testing import make_blobs_on_sphere


class TestParameters:
    def test_invalid_block_k(self):
        with pytest.raises(InvalidParameterError):
            KNNBlockDBSCAN(eps=0.5, tau=3, block_k=0)

    def test_invalid_tree_params_propagate(self):
        with pytest.raises(InvalidParameterError):
            KNNBlockDBSCAN(eps=0.5, tau=3, branching=1).fit(
                np.eye(4)  # never reached; constructor validates lazily
            )


class TestExactChecksMode:
    """With checks_ratio = 1 the KNN is exact; results track DBSCAN."""

    def test_blobs_match_dbscan(self, blob_data):
        X, _ = blob_data
        eps, tau = 0.5, 4
        exact = DBSCAN(eps=eps, tau=tau).fit(X)
        block = KNNBlockDBSCAN(eps=eps, tau=tau, checks_ratio=1.0, seed=0).fit(X)
        assert adjusted_rand_index(exact.labels, block.labels) > 0.95

    def test_clusterable_data_close_to_dbscan(self, clusterable_data):
        eps, tau = 0.5, 5
        exact = DBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        block = KNNBlockDBSCAN(eps=eps, tau=tau, checks_ratio=1.0, seed=0).fit(
            clusterable_data
        )
        assert adjusted_rand_index(exact.labels, block.labels) > 0.9

    def test_core_blocks_are_truly_core(self, clusterable_data):
        """Every point the method claims core must satisfy the predicate."""
        eps, tau = 0.5, 5
        from repro.index import BruteForceIndex

        block = KNNBlockDBSCAN(eps=eps, tau=tau, checks_ratio=1.0, seed=0).fit(
            clusterable_data
        )
        index = BruteForceIndex().build(clusterable_data)
        counts = index.range_count_many(clusterable_data, eps)
        claimed_core = np.flatnonzero(block.core_mask)
        assert (counts[claimed_core] >= tau).all()


class TestApproximateMode:
    def test_low_checks_still_runs(self, clusterable_data):
        result = KNNBlockDBSCAN(
            eps=0.5, tau=5, checks_ratio=0.05, branching=4, seed=0
        ).fit(clusterable_data)
        assert result.labels.shape == (clusterable_data.shape[0],)

    def test_quality_improves_with_checks(self):
        X, y = make_blobs_on_sphere(50, 4, 24, spread=0.35, seed=5)
        exact = DBSCAN(eps=0.5, tau=5).fit(X)
        scores = []
        for ratio in (0.02, 1.0):
            block = KNNBlockDBSCAN(
                eps=0.5, tau=5, checks_ratio=ratio, branching=4, seed=0
            ).fit(X)
            scores.append(adjusted_rand_index(exact.labels, block.labels))
        assert scores[1] >= scores[0]

    def test_fewer_knn_queries_than_points(self, blob_data):
        """Blocks dismiss whole groups: far fewer queries than points."""
        X, _ = blob_data
        result = KNNBlockDBSCAN(eps=0.5, tau=4, checks_ratio=1.0, seed=0).fit(X)
        assert result.stats["knn_queries"] < X.shape[0]

    def test_stats_present(self, clusterable_data):
        result = KNNBlockDBSCAN(eps=0.5, tau=5, seed=0).fit(clusterable_data)
        assert {"knn_queries", "n_core", "n_blocks"} <= set(result.stats)

    def test_deterministic_given_seed(self, clusterable_data):
        a = KNNBlockDBSCAN(eps=0.5, tau=5, seed=7).fit(clusterable_data)
        b = KNNBlockDBSCAN(eps=0.5, tau=5, seed=7).fit(clusterable_data)
        assert np.array_equal(a.labels, b.labels)
