"""Tests for the contingency matrix."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.metrics import contingency_matrix


class TestContingencyMatrix:
    def test_identical_labelings_diagonal(self):
        labels = np.array([0, 0, 1, 1, 2])
        table = contingency_matrix(labels, labels)
        assert np.array_equal(table, np.diag([2, 2, 1]))

    def test_known_cross_table(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 0, 1])
        table = contingency_matrix(true, pred)
        assert np.array_equal(table, [[1, 1], [1, 1]])

    def test_noise_label_is_a_class(self):
        true = np.array([-1, -1, 0])
        pred = np.array([0, 0, 0])
        table = contingency_matrix(true, pred)
        assert table.shape == (2, 1)
        assert table[0, 0] == 2  # the -1 row sorts first

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        true = rng.integers(-1, 4, size=100)
        pred = rng.integers(-1, 6, size=100)
        assert contingency_matrix(true, pred).sum() == 100

    def test_marginals_match_counts(self):
        rng = np.random.default_rng(1)
        true = rng.integers(0, 3, size=50)
        pred = rng.integers(0, 4, size=50)
        table = contingency_matrix(true, pred)
        _, true_counts = np.unique(true, return_counts=True)
        _, pred_counts = np.unique(pred, return_counts=True)
        assert np.array_equal(table.sum(axis=1), true_counts)
        assert np.array_equal(table.sum(axis=0), pred_counts)

    def test_length_mismatch_raises(self):
        with pytest.raises(DataValidationError, match="equal length"):
            contingency_matrix(np.array([1, 2]), np.array([1, 2, 3]))

    def test_2d_raises(self):
        with pytest.raises(DataValidationError):
            contingency_matrix(np.ones((2, 2)), np.ones((2, 2)))

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            contingency_matrix(np.array([]), np.array([]))

    def test_non_contiguous_label_values(self):
        true = np.array([10, 10, 99])
        pred = np.array([-5, 7, 7])
        table = contingency_matrix(true, pred)
        assert table.shape == (2, 2)
        assert table.sum() == 3
