"""Tests for the exact / sampling / KDE / histogram estimators."""

import numpy as np
import pytest

from repro.estimators import (
    ExactCardinalityEstimator,
    KDECardinalityEstimator,
    RadialHistogramEstimator,
    SamplingCardinalityEstimator,
)
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.index import BruteForceIndex

from repro.testing import make_blobs_on_sphere


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs_on_sphere(50, 3, 16, spread=0.35, seed=0)
    return X


class TestExactOracle:
    def test_counts_are_exact(self, data):
        est = ExactCardinalityEstimator().fit(data).bind(data)
        index = BruteForceIndex().build(data)
        counts = est.estimate_many(data[:20], 0.5)
        expected = index.range_count_many(data[:20], 0.5)
        assert np.array_equal(counts.astype(int), expected)

    def test_fraction_form(self, data):
        est = ExactCardinalityEstimator().fit(data).bind(data)
        fracs = est.predict_fraction(data[:5], 0.5)
        counts = est.estimate_many(data[:5], 0.5)
        assert np.allclose(fracs * data.shape[0], counts)

    def test_unbound_raises(self, data):
        est = ExactCardinalityEstimator().fit(data)
        with pytest.raises(NotFittedError):
            est.estimate_many(data[:2], 0.5)

    def test_bind_to_subset_counts_subset(self, data):
        est = ExactCardinalityEstimator().fit(data).bind(data[:30])
        index = BruteForceIndex().build(data[:30])
        assert np.array_equal(
            est.estimate_many(data[:5], 0.6).astype(int),
            index.range_count_many(data[:5], 0.6),
        )


class TestSamplingEstimator:
    def test_full_sample_is_exact_fraction(self, data):
        est = SamplingCardinalityEstimator(sample_size=10_000, seed=0).fit(data)
        est.bind(data)
        index = BruteForceIndex().build(data)
        counts = est.estimate_many(data[:10], 0.5)
        expected = index.range_count_many(data[:10], 0.5)
        assert np.allclose(counts, expected)

    def test_small_sample_unbiased_ballpark(self, data):
        est = SamplingCardinalityEstimator(sample_size=60, seed=1).fit(data)
        est.bind(data)
        index = BruteForceIndex().build(data)
        predicted = est.estimate_many(data, 0.5).mean()
        actual = index.range_count_many(data, 0.5).mean()
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_unfitted_raises(self, data):
        est = SamplingCardinalityEstimator()
        est.bind(data)
        with pytest.raises(NotFittedError):
            est.estimate_many(data[:2], 0.5)

    def test_invalid_sample_size(self):
        with pytest.raises(InvalidParameterError):
            SamplingCardinalityEstimator(sample_size=0)


class TestKDEEstimator:
    def test_fraction_in_unit_interval(self, data):
        est = KDECardinalityEstimator(sample_size=64, seed=0).fit(data)
        fracs = est.predict_fraction(data[:15], 0.5)
        assert (fracs >= 0).all() and (fracs <= 1).all()

    def test_monotone_in_radius(self, data):
        est = KDECardinalityEstimator(sample_size=64, seed=0).fit(data)
        small = est.predict_fraction(data[:10], 0.2)
        large = est.predict_fraction(data[:10], 0.9)
        assert (large >= small).all()

    def test_tracks_truth_loosely(self, data):
        est = KDECardinalityEstimator(sample_size=150, bandwidth=0.02, seed=0).fit(data)
        est.bind(data)
        index = BruteForceIndex().build(data)
        predicted = est.estimate_many(data, 0.5)
        actual = index.range_count_many(data, 0.5)
        corr = np.corrcoef(predicted, actual)[0, 1]
        assert corr > 0.8

    def test_explicit_bandwidth_respected(self, data):
        est = KDECardinalityEstimator(bandwidth=0.5, seed=0).fit(data)
        assert est._h == 0.5

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            KDECardinalityEstimator(sample_size=-1)
        with pytest.raises(InvalidParameterError):
            KDECardinalityEstimator(bandwidth=0.0)

    def test_unfitted_raises(self, data):
        est = KDECardinalityEstimator()
        est.bind(data)
        with pytest.raises(NotFittedError):
            est.estimate_many(data[:2], 0.5)


class TestHistogramEstimator:
    def test_fraction_bounds(self, data):
        est = RadialHistogramEstimator(n_pivots=8, seed=0).fit(data)
        fracs = est.predict_fraction(data[:15], 0.5)
        assert (fracs >= 0).all() and (fracs <= 1).all()

    def test_monotone_in_radius(self, data):
        est = RadialHistogramEstimator(n_pivots=8, seed=0).fit(data)
        small = est.predict_fraction(data[:10], 0.1)
        large = est.predict_fraction(data[:10], 1.5)
        assert (large >= small).all()

    def test_pivot_query_is_reasonable(self, data):
        # Querying exactly at a pivot should reproduce that pivot's CDF.
        est = RadialHistogramEstimator(n_pivots=4, n_bins=128, seed=0).fit(data)
        est.bind(data)
        index = BruteForceIndex().build(data)
        pivot = est._pivots[0]
        predicted = est.estimate(pivot, 0.5)
        actual = index.range_count(pivot, 0.5)
        assert predicted == pytest.approx(actual, rel=0.25, abs=5)

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            RadialHistogramEstimator(n_pivots=0)
        with pytest.raises(InvalidParameterError):
            RadialHistogramEstimator(n_bins=0)

    def test_unfitted_raises(self, data):
        est = RadialHistogramEstimator()
        est.bind(data)
        with pytest.raises(NotFittedError):
            est.estimate_many(data[:2], 0.5)
