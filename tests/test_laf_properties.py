"""Property-based tests of LAF's structural invariants.

These check properties that must hold for *any* estimator and alpha:

* the partial-neighbor map only ever contains true neighbors;
* post-processing only merges clusters (the final partition is coarser
  than or equal to the pre-repair one on non-noise points);
* points LAF assigns to clusters are within eps of some cluster member;
* LAF's executed + skipped queries account for every CardEst decision.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.base import NOISE
from repro.core import LAFDBSCAN
from repro.core.laf import LAF
from repro.distances import normalize_rows
from repro.estimators import SamplingCardinalityEstimator
from repro.index import BruteForceIndex


def run_laf(seed: int, alpha: float, post: bool = True):
    rng = np.random.default_rng(seed)
    X = normalize_rows(rng.normal(size=(60, 10)))
    estimator = SamplingCardinalityEstimator(sample_size=15, seed=seed).fit(X)
    clusterer = LAFDBSCAN(
        eps=0.6,
        tau=4,
        estimator=estimator,
        alpha=alpha,
        enable_post_processing=post,
        seed=seed,
    )
    return X, clusterer, clusterer.fit(X)


class TestStructuralInvariants:
    @given(st.integers(0, 500), st.floats(0.5, 6.0))
    @settings(max_examples=20, deadline=None)
    def test_partial_neighbors_are_true_neighbors(self, seed, alpha):
        X, clusterer, _ = run_laf(seed, alpha)
        index = BruteForceIndex().build(X)
        E = clusterer.laf.partial_neighbors
        for point, partial in E.items():
            true_neighbors = set(index.range_query(X[point], 0.6).tolist())
            assert partial <= true_neighbors

    @given(st.integers(0, 500), st.floats(1.0, 6.0))
    @settings(max_examples=20, deadline=None)
    def test_postprocessing_only_coarsens(self, seed, alpha):
        X, _, with_pp = run_laf(seed, alpha, post=True)
        _, _, without_pp = run_laf(seed, alpha, post=False)
        # Any two points sharing a cluster before repair still share one
        # after repair (repair merges; it never splits).
        pre = without_pp.labels
        post = with_pp.labels
        for a in range(0, len(pre), 7):
            for b in range(a + 1, len(pre), 11):
                if pre[a] != NOISE and pre[a] == pre[b]:
                    assert post[a] == post[b], (seed, alpha, a, b)

    @given(st.integers(0, 500), st.floats(0.5, 6.0))
    @settings(max_examples=15, deadline=None)
    def test_clustered_points_have_nearby_cluster_members(self, seed, alpha):
        X, _, result = run_laf(seed, alpha)
        labels = result.labels
        for p in range(0, len(labels), 9):
            if labels[p] == NOISE:
                continue
            same = np.flatnonzero(labels == labels[p])
            same = same[same != p]
            if same.size == 0:
                continue
            dists = 1.0 - X[same] @ X[p]
            assert dists.min() < 0.6, "clustered point with no nearby member"

    @given(st.integers(0, 500), st.floats(0.5, 6.0))
    @settings(max_examples=20, deadline=None)
    def test_query_accounting(self, seed, alpha):
        X, _, result = run_laf(seed, alpha)
        stats = result.stats
        assert stats["cardest_calls"] == X.shape[0]
        assert stats["range_queries"] + stats["skipped_queries"] <= X.shape[0]
        assert stats["predicted_stop_points"] == stats["skipped_queries"]


class TestLAFBundle:
    def test_finalize_before_begin_raises(self):
        from repro.exceptions import InvalidParameterError

        bundle = LAF(SamplingCardinalityEstimator(seed=0), alpha=1.0)
        with pytest.raises(InvalidParameterError):
            bundle.finalize(np.zeros(3, dtype=np.int64), tau=2)

    def test_stats_before_run(self):
        bundle = LAF(SamplingCardinalityEstimator(seed=0), alpha=1.5)
        stats = bundle.stats()
        assert stats["predicted_stop_points"] == 0
        assert stats["alpha"] == 1.5

    def test_begin_run_returns_gate_mask(self):
        rng = np.random.default_rng(0)
        X = normalize_rows(rng.normal(size=(30, 6)))
        estimator = SamplingCardinalityEstimator(sample_size=10, seed=0).fit(X)
        bundle = LAF(estimator, alpha=1.0)
        mask = bundle.begin_run(X, eps=0.6, tau=3)
        estimator.bind(X)
        expected = estimator.estimate_many(X, 0.6) >= 3.0
        assert np.array_equal(mask, expected)
