"""Tests for the Table 1 dataset registry and splits."""

import numpy as np
import pytest

from repro.data import (
    DATASET_SPECS,
    dataset_names,
    gaussian_random_projection,
    load_dataset,
    train_test_split,
)
from repro.exceptions import InvalidParameterError


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert dataset_names() == [
            "NYT-150k",
            "Glove-150k",
            "MS-150k",
            "MS-100k",
            "MS-50k",
        ]

    def test_table1_dimensions(self):
        assert DATASET_SPECS["NYT-150k"].dim == 256
        assert DATASET_SPECS["Glove-150k"].dim == 200
        assert DATASET_SPECS["MS-150k"].dim == 768

    def test_table1_alphas(self):
        assert DATASET_SPECS["NYT-150k"].alpha == 1.15
        assert DATASET_SPECS["Glove-150k"].alpha == 2.0
        assert DATASET_SPECS["MS-150k"].alpha == 7.7
        assert DATASET_SPECS["MS-100k"].alpha == 2.0
        assert DATASET_SPECS["MS-50k"].alpha == 1.5

    def test_table1_full_sizes(self):
        assert DATASET_SPECS["MS-150k"].n_full == 152_185
        assert DATASET_SPECS["MS-100k"].n_full == 107_400
        assert DATASET_SPECS["MS-50k"].n_full == 53_700

    def test_scale_relative_sizes(self):
        small = DATASET_SPECS["MS-50k"].n_at_scale(0.01)
        large = DATASET_SPECS["MS-150k"].n_at_scale(0.01)
        assert large == pytest.approx(small * 152_185 / 53_700, rel=0.01)

    def test_minimum_size_floor(self):
        assert DATASET_SPECS["MS-50k"].n_at_scale(1e-9) >= 120

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            DATASET_SPECS["MS-50k"].n_at_scale(0.0)


class TestLoadDataset:
    def test_loads_with_correct_shape(self):
        ds = load_dataset("MS-50k", scale=0.003, seed=0)
        assert ds.dim == 768
        assert ds.n_points == max(120, round(53_700 * 0.003))
        assert np.allclose(np.linalg.norm(ds.X, axis=1), 1.0, atol=1e-9)

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError, match="unknown dataset"):
            load_dataset("MNIST")

    def test_deterministic(self):
        a = load_dataset("Glove-150k", scale=0.001, seed=3)
        b = load_dataset("Glove-150k", scale=0.001, seed=3)
        assert np.array_equal(a.X, b.X)

    def test_generator_overrides_forwarded(self):
        ds = load_dataset("MS-50k", scale=0.003, seed=0, noise_fraction=0.3)
        assert np.count_nonzero(ds.generative_labels == -1) == round(ds.n_points * 0.3)

    def test_split_shapes(self):
        ds = load_dataset("MS-50k", scale=0.003, seed=0)
        train, test = ds.split()
        assert train.shape[0] + test.shape[0] == ds.n_points
        assert train.shape[0] == round(0.8 * ds.n_points)

    def test_nyt_uses_out_dim(self):
        ds = load_dataset("NYT-150k", scale=0.001, seed=0)
        assert ds.dim == 256


class TestTrainTestSplit:
    def test_partition(self):
        X = np.arange(40, dtype=float).reshape(20, 2)
        train, test = train_test_split(X, 0.8, seed=0)
        combined = np.vstack([train, test])
        assert sorted(combined[:, 0].tolist()) == sorted(X[:, 0].tolist())

    def test_ratio(self):
        X = np.ones((100, 3))
        train, test = train_test_split(X, 0.8, seed=0)
        assert train.shape[0] == 80
        assert test.shape[0] == 20

    def test_deterministic(self):
        X = np.random.default_rng(0).normal(size=(30, 4))
        t1, _ = train_test_split(X, 0.7, seed=9)
        t2, _ = train_test_split(X, 0.7, seed=9)
        assert np.array_equal(t1, t2)

    def test_never_empty_sides(self):
        X = np.ones((2, 2))
        train, test = train_test_split(X, 0.99, seed=0)
        assert train.shape[0] == 1 and test.shape[0] == 1

    def test_invalid_fraction(self):
        with pytest.raises(InvalidParameterError):
            train_test_split(np.ones((10, 2)), 1.0)
        with pytest.raises(InvalidParameterError):
            train_test_split(np.ones((10, 2)), 0.0)

    def test_too_few_rows(self):
        with pytest.raises(InvalidParameterError):
            train_test_split(np.ones((1, 2)), 0.5)


class TestGaussianRandomProjection:
    def test_output_shape(self):
        X = np.random.default_rng(0).normal(size=(50, 100))
        assert gaussian_random_projection(X, 16, seed=0).shape == (50, 16)

    def test_deterministic(self):
        X = np.random.default_rng(1).normal(size=(20, 64))
        a = gaussian_random_projection(X, 8, seed=2)
        b = gaussian_random_projection(X, 8, seed=2)
        assert np.array_equal(a, b)

    def test_preserves_norms_approximately(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(100, 2000))
        proj = gaussian_random_projection(X, 512, seed=4)
        ratios = np.linalg.norm(proj, axis=1) / np.linalg.norm(X, axis=1)
        assert 0.8 < ratios.mean() < 1.2

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            gaussian_random_projection(np.ones(5), 2)
        with pytest.raises(InvalidParameterError):
            gaussian_random_projection(np.ones((5, 5)), 0)
