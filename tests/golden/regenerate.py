"""Regenerate the committed golden model artifact.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

Only rerun this when the artifact format version changes (bump
``repro.persistence.FORMAT_VERSION`` first); the whole point of the
golden files is that *today's* bytes keep loading tomorrow. The data is
fully deterministic — fixed seeds, fixed parameters — so regeneration
on any platform reproduces the same labels (float payloads may differ
in the last ulp across BLAS builds, which is why the test compares
labels, not raw bytes).
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np

import repro
from repro.distances import normalize_rows
from repro.testing import make_blobs_on_sphere

HERE = Path(__file__).resolve().parent
EPS = 0.4
TAU = 3


def main() -> None:
    X, _ = make_blobs_on_sphere(8, 3, 12, seed=7)
    queries = np.vstack(
        [
            X[::3],  # on-manifold queries near the blobs
            normalize_rows(np.random.default_rng(11).normal(size=(10, 12))),
        ]
    )

    model = repro.fit_model(X, "dbscan", eps=EPS, tau=TAU)
    with model:
        target = HERE / "model"
        if target.exists():
            shutil.rmtree(target)
        model.save(target)
        np.save(HERE / "queries.npy", np.ascontiguousarray(queries))
        np.save(HERE / "expected_predict.npy", model.predict(queries))

    print(f"wrote {target} ({model.n_clusters} clusters, {model.n_cores} cores)")


if __name__ == "__main__":
    main()
