"""Tests for the method registry and context."""

import pytest

from repro.clustering import (
    BlockDBSCAN,
    DBSCAN,
    DBSCANPlusPlus,
    KNNBlockDBSCAN,
    RhoApproxDBSCAN,
)
from repro.core import LAFDBSCAN, LAFDBSCANPlusPlus
from repro.estimators import ExactCardinalityEstimator
from repro.exceptions import InvalidParameterError
from repro.experiments import MethodContext, build_method, method_names
from repro.experiments.methods import ALL_METHODS, APPROXIMATE_METHODS

from repro.testing import make_blobs_on_sphere


@pytest.fixture(scope="module")
def ctx_and_data():
    X, _ = make_blobs_on_sphere(30, 3, 16, spread=0.3, seed=0)
    ctx = MethodContext(
        eps=0.5, tau=5, alpha=1.5, estimator=ExactCardinalityEstimator(), seed=0
    )
    return ctx, X


class TestRegistry:
    def test_all_methods_listed(self):
        assert set(method_names()) == {
            "DBSCAN",
            "DBSCAN++",
            "LAF-DBSCAN",
            "LAF-DBSCAN++",
            "KNN-BLOCK",
            "BLOCK-DBSCAN",
            "RHO-APPROX",
        }

    def test_approximate_excludes_ground_truth(self):
        assert "DBSCAN" not in APPROXIMATE_METHODS
        assert "RHO-APPROX" not in APPROXIMATE_METHODS

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("DBSCAN", DBSCAN),
            ("DBSCAN++", DBSCANPlusPlus),
            ("LAF-DBSCAN", LAFDBSCAN),
            ("LAF-DBSCAN++", LAFDBSCANPlusPlus),
            ("KNN-BLOCK", KNNBlockDBSCAN),
            ("BLOCK-DBSCAN", BlockDBSCAN),
            ("RHO-APPROX", RhoApproxDBSCAN),
        ],
    )
    def test_builds_expected_type(self, ctx_and_data, name, cls):
        ctx, X = ctx_and_data
        assert isinstance(build_method(name, ctx, X), cls)

    def test_unknown_name(self, ctx_and_data):
        ctx, X = ctx_and_data
        with pytest.raises(InvalidParameterError, match="unknown method"):
            build_method("OPTICS", ctx, X)

    def test_every_listed_method_builds_and_fits(self, ctx_and_data):
        ctx, X = ctx_and_data
        for name in ALL_METHODS:
            result = build_method(name, ctx, X).fit(X)
            assert result.labels.shape == (X.shape[0],), name


class TestSampleFractionRule:
    def test_p_override_wins(self, ctx_and_data):
        _, X = ctx_and_data
        ctx = MethodContext(eps=0.5, tau=5, p_override=0.42)
        assert ctx.sample_fraction(X) == pytest.approx(0.42)

    def test_derived_p_is_delta_plus_rc(self, ctx_and_data):
        _, X = ctx_and_data
        est = ExactCardinalityEstimator()
        ctx = MethodContext(eps=0.5, tau=5, estimator=est, delta=0.2)
        from repro.core import predicted_core_ratio

        expected = min(1.0, 0.2 + predicted_core_ratio(est, X, 0.5, 5, 1.0))
        assert ctx.sample_fraction(X) == pytest.approx(expected)

    def test_derived_p_cached_for_both_variants(self, ctx_and_data):
        _, X = ctx_and_data
        ctx = MethodContext(
            eps=0.5, tau=5, estimator=ExactCardinalityEstimator(), delta=0.15
        )
        p1 = ctx.sample_fraction(X)
        p2 = ctx.sample_fraction(X)
        assert p1 == p2
        plain = build_method("DBSCAN++", ctx, X)
        laf = build_method("LAF-DBSCAN++", ctx, X)
        assert plain.p == laf.p == p1

    def test_missing_estimator_raises(self, ctx_and_data):
        _, X = ctx_and_data
        ctx = MethodContext(eps=0.5, tau=5)
        with pytest.raises(InvalidParameterError):
            ctx.sample_fraction(X)
        with pytest.raises(InvalidParameterError):
            build_method("LAF-DBSCAN", ctx, X)

    def test_laf_dbscanpp_alpha_fixed_to_one(self, ctx_and_data):
        ctx, X = ctx_and_data
        laf = build_method("LAF-DBSCAN++", ctx, X)
        assert laf.laf.alpha == 1.0  # even though ctx.alpha = 1.5
