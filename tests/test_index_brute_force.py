"""Tests for the exact brute-force index."""

import numpy as np
import pytest

from repro.distances import cosine_distance, normalize_rows
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.index import BruteForceIndex


@pytest.fixture(scope="module")
def index(unit_vectors_small):
    return BruteForceIndex().build(unit_vectors_small)


class TestBuild:
    def test_n_points(self, index, unit_vectors_small):
        assert index.n_points == unit_vectors_small.shape[0]

    def test_points_property(self, index, unit_vectors_small):
        assert np.array_equal(index.points, unit_vectors_small)

    def test_unbuilt_raises(self):
        with pytest.raises(NotFittedError):
            BruteForceIndex().range_query(np.zeros(4), 0.5)

    def test_points_before_build_raises(self):
        with pytest.raises(NotFittedError):
            _ = BruteForceIndex().points

    def test_rejects_unnormalized(self):
        from repro.exceptions import DataValidationError

        with pytest.raises(DataValidationError):
            BruteForceIndex().build(np.ones((4, 4)))

    def test_invalid_block_size(self):
        with pytest.raises(InvalidParameterError):
            BruteForceIndex(block_size=0)


class TestRangeQuery:
    def test_point_is_own_neighbor(self, index, unit_vectors_small):
        hits = index.range_query(unit_vectors_small[3], eps=0.4)
        assert 3 in hits

    def test_matches_naive_filter(self, index, unit_vectors_small):
        q = unit_vectors_small[10]
        eps = 0.7
        expected = {
            i
            for i, x in enumerate(unit_vectors_small)
            if cosine_distance(q, x) < eps
        }
        assert set(index.range_query(q, eps).tolist()) == expected

    def test_strict_inequality(self):
        # A point at exactly eps must be excluded.
        X = normalize_rows(np.array([[1.0, 0.0], [0.0, 1.0]]))
        index = BruteForceIndex().build(X)
        hits = index.range_query(X[0], eps=1.0)  # d(e1, e2) == 1.0 exactly
        assert hits.tolist() == [0]

    def test_eps_two_returns_all_but_antipode(self, index):
        hits = index.range_query(index.points[0], eps=2.0)
        assert hits.size >= index.n_points - 1

    def test_range_count_consistent(self, index, unit_vectors_small):
        for eps in (0.2, 0.5, 1.0):
            q = unit_vectors_small[7]
            assert index.range_count(q, eps) == index.range_query(q, eps).size


class TestKnnQuery:
    def test_nearest_is_self(self, index, unit_vectors_small):
        idx, dists = index.knn_query(unit_vectors_small[4], k=1)
        assert idx[0] == 4
        assert dists[0] == pytest.approx(0.0, abs=1e-12)

    def test_sorted_by_distance(self, index, unit_vectors_small):
        _, dists = index.knn_query(unit_vectors_small[0], k=10)
        assert np.all(np.diff(dists) >= -1e-12)

    def test_k_capped_at_n(self, index):
        idx, _ = index.knn_query(index.points[0], k=10_000)
        assert idx.size == index.n_points

    def test_matches_argsort(self, index, unit_vectors_small):
        q = unit_vectors_small[9]
        idx, _ = index.knn_query(q, k=5)
        full = 1.0 - unit_vectors_small @ q
        expected = np.argsort(full, kind="stable")[:5]
        assert set(idx.tolist()) == set(expected.tolist())

    def test_invalid_k(self, index):
        with pytest.raises(InvalidParameterError):
            index.knn_query(index.points[0], k=0)


class TestBatchedForms:
    def test_range_count_many_matches_single(self, index, unit_vectors_small):
        Q = unit_vectors_small[:9]
        counts = index.range_count_many(Q, eps=0.6)
        singles = [index.range_count(q, 0.6) for q in Q]
        assert counts.tolist() == singles

    def test_range_query_many_matches_single(self, index, unit_vectors_small):
        Q = unit_vectors_small[5:12]
        results = index.range_query_many(Q, eps=0.8)
        for q, hits in zip(Q, results):
            assert np.array_equal(hits, index.range_query(q, 0.8))

    def test_blockwise_equals_unblocked(self, unit_vectors_small):
        small_blocks = BruteForceIndex(block_size=3).build(unit_vectors_small)
        counts_a = small_blocks.range_count_many(unit_vectors_small, 0.5)
        counts_b = BruteForceIndex().build(unit_vectors_small).range_count_many(
            unit_vectors_small, 0.5
        )
        assert np.array_equal(counts_a, counts_b)

    def test_multi_eps_counts(self, index, unit_vectors_small):
        Q = unit_vectors_small[:6]
        radii = np.array([0.2, 0.5, 0.9])
        grid = index.range_count_multi_eps(Q, radii)
        assert grid.shape == (6, 3)
        for j, eps in enumerate(radii):
            assert np.array_equal(grid[:, j], index.range_count_many(Q, float(eps)))

    def test_multi_eps_monotone_in_radius(self, index, unit_vectors_small):
        grid = index.range_count_multi_eps(
            unit_vectors_small, np.array([0.1, 0.5, 1.5])
        )
        assert (np.diff(grid, axis=1) >= 0).all()
