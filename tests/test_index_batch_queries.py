"""Property tests for the batched query API across all index backends.

The contract: every batched query agrees row-for-row with its scalar
counterpart, tolerates empty batches, and keeps the paper's neighborhood
semantics (strict ``d < eps``; a query equal to an indexed point returns
that point).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import normalize_rows
from repro.exceptions import NotFittedError
from repro.index import (
    BruteForceIndex,
    CoverTree,
    GridIndex,
    KMeansTree,
    NeighborhoodCache,
)

from repro.testing import make_blobs_on_sphere

EPS = 0.6

# (name, factory) for every NeighborIndex backend; the grid is tested
# separately because it fixes eps at construction time.
BACKENDS = [
    ("brute_force", lambda: BruteForceIndex()),
    ("brute_force_small_blocks", lambda: BruteForceIndex(block_size=7)),
    ("cover_tree", lambda: CoverTree(base=1.6)),
    ("kmeans_tree_exact", lambda: KMeansTree(checks_ratio=1.0, seed=0)),
    ("kmeans_tree_approx", lambda: KMeansTree(checks_ratio=0.3, seed=0)),
]


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    rng = np.random.default_rng(5)
    return normalize_rows(rng.normal(size=(80, 12)))


@pytest.mark.parametrize("name,factory", BACKENDS, ids=[n for n, _ in BACKENDS])
class TestBatchAgainstScalar:
    def test_batch_range_query_rows_match_scalar(self, name, factory, data):
        index = factory().build(data)
        results = index.batch_range_query(data, EPS)
        assert len(results) == data.shape[0]
        for i, row in enumerate(results):
            expected = index.range_query(data[i], EPS)
            assert np.array_equal(np.sort(row), np.sort(expected)), i

    def test_batch_range_count_matches_scalar(self, name, factory, data):
        index = factory().build(data)
        counts = index.batch_range_count(data[:33], EPS)
        assert counts.dtype == np.int64
        expected = [index.range_count(data[i], EPS) for i in range(33)]
        assert np.array_equal(counts, expected)

    def test_batch_knn_query_rows_match_scalar(self, name, factory, data):
        index = factory().build(data)
        idx_rows, dist_rows = index.batch_knn_query(data[:25], k=5)
        assert len(idx_rows) == len(dist_rows) == 25
        for i in range(25):
            exp_idx, exp_dist = index.knn_query(data[i], 5)
            assert np.array_equal(idx_rows[i], exp_idx), i
            np.testing.assert_allclose(dist_rows[i], exp_dist, atol=1e-12)

    def test_empty_batch(self, name, factory, data):
        index = factory().build(data)
        assert index.batch_range_query(np.empty((0, data.shape[1])), EPS) == []
        assert index.batch_range_count(np.empty((0, data.shape[1])), EPS).size == 0
        idx_rows, dist_rows = index.batch_knn_query(np.empty((0, data.shape[1])), k=3)
        assert idx_rows == [] and dist_rows == []

    def test_single_row_is_one_query(self, name, factory, data):
        index = factory().build(data)
        results = index.batch_range_query(data[0], EPS)
        assert len(results) == 1
        assert np.array_equal(
            np.sort(results[0]), np.sort(index.range_query(data[0], EPS))
        )

    def test_self_is_included(self, name, factory, data):
        index = factory().build(data)
        for i, row in enumerate(index.batch_range_query(data[:10], EPS)):
            assert i in row, "a point is its own neighbor (d = 0 < eps)"

    def test_unbuilt_index_raises(self, name, factory, data):
        with pytest.raises(NotFittedError):
            factory().batch_range_query(data[:3], EPS)


class TestEpsBoundarySemantics:
    """The paper's N = {Q | d(P, Q) < eps} is strict."""

    def test_point_at_exactly_eps_excluded(self):
        # q.x = 0.5 is exact in floating point, so d = 1 - 0.5 = 0.5 == eps.
        X = np.array(
            [
                [1.0, 0.0],
                [0.5, np.sqrt(3.0) / 2.0],  # cosine distance exactly 0.5 from X[0]
                [0.0, 1.0],
            ]
        )
        index = BruteForceIndex().build(X)
        (row,) = index.batch_range_query(X[0], eps=0.5)
        assert 0 in row  # self, d = 0
        assert 1 not in row  # d == eps is outside the strict threshold
        (count,) = index.batch_range_count(X[0], eps=0.5)
        assert count == row.size

    def test_just_inside_included(self):
        X = np.array([[1.0, 0.0], [0.5, np.sqrt(3.0) / 2.0]])
        index = BruteForceIndex().build(X)
        (row,) = index.batch_range_query(X[0], eps=np.nextafter(0.5, 1.0))
        assert 1 in row


class TestGridBatchedQueries:
    def test_batch_approx_range_count_matches_scalar(self):
        X, _ = make_blobs_on_sphere(30, 3, 16, spread=0.15, seed=2)
        grid = GridIndex(EPS, rho=1.0).build(X)
        counts = grid.batch_approx_range_count(X)
        expected = [grid.approx_range_count(X[i]) for i in range(X.shape[0])]
        assert np.array_equal(counts, expected)

    def test_batch_range_query_matches_scalar(self):
        X, _ = make_blobs_on_sphere(30, 3, 16, spread=0.15, seed=2)
        grid = GridIndex(EPS, rho=1.0).build(X)
        results = grid.batch_range_query(X)
        for i, row in enumerate(results):
            assert np.array_equal(row, grid.exact_range_query(X[i])), i

    def test_batch_range_query_brute_force_agreement(self):
        X, _ = make_blobs_on_sphere(25, 2, 8, spread=0.2, seed=9)
        grid = GridIndex(EPS, rho=0.5).build(X)
        brute = BruteForceIndex().build(X)
        grid_rows = grid.batch_range_query(X)
        brute_rows = brute.batch_range_query(X, EPS)
        for g, b in zip(grid_rows, brute_rows):
            assert np.array_equal(np.sort(g), np.sort(b))

    def test_empty_batch(self):
        X, _ = make_blobs_on_sphere(10, 2, 8, seed=0)
        grid = GridIndex(EPS).build(X)
        assert grid.batch_range_query(np.empty((0, 8))) == []
        assert grid.batch_approx_range_count(np.empty((0, 8))).size == 0


class TestBatchKnnBruteForce:
    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_property_blocked_knn_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        X = normalize_rows(rng.normal(size=(40, 6)))
        index = BruteForceIndex(block_size=11).build(X)
        k = int(rng.integers(1, 8))
        idx_rows, dist_rows = index.batch_knn_query(X, k)
        for i in range(X.shape[0]):
            exp_idx, exp_dist = index.knn_query(X[i], k)
            assert np.array_equal(idx_rows[i], exp_idx)
            np.testing.assert_allclose(dist_rows[i], exp_dist, atol=1e-12)

    def test_k_larger_than_dataset_clamps(self):
        X = normalize_rows(np.random.default_rng(1).normal(size=(9, 4)))
        index = BruteForceIndex().build(X)
        idx_rows, _ = index.batch_knn_query(X[:2], k=50)
        assert all(r.size == 9 for r in idx_rows)


class TestNeighborhoodCache:
    def test_fetch_matches_direct_query(self, data):
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS)
        cache.plan(np.arange(data.shape[0]))
        for p in range(data.shape[0]):
            assert np.array_equal(cache.fetch(p), index.range_query(data[p], EPS))

    def test_each_point_computed_at_most_once(self, data):
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS, block_size=16)
        cache.plan(np.arange(data.shape[0]))
        for p in list(range(data.shape[0])) * 2:  # fetch everything twice
            cache.fetch(p)
        assert cache.n_computed == data.shape[0]
        # Every fetch that didn't trigger a block fill was served from cache.
        assert cache.n_cache_hits == cache.n_fetches - cache.n_blocks
        assert cache.n_fetches == 2 * data.shape[0]

    def test_unplanned_points_are_never_computed(self, data):
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS, block_size=8)
        cache.plan([0, 1, 2, 3])
        cache.fetch(0)
        assert cache.n_computed == 4  # the demanded point + its planned block
        assert not cache.is_cached(50)

    def test_plan_is_a_hint_not_speculation(self, data):
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS, block_size=4)
        cache.plan(np.arange(data.shape[0]))
        cache.fetch(10)
        # Only one block was computed: the demanded point plus the next
        # planned points, nothing beyond the block size.
        assert cache.n_blocks == 1
        assert cache.n_computed == 4

    def test_duplicate_plan_entries_not_recomputed(self, data):
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS, block_size=64)
        cache.plan([5, 5, 5, 6])
        cache.fetch(5)
        assert cache.n_computed == 2  # just {5, 6}; the repeats deduplicate

    def test_block_size_one_degenerates_to_per_point(self, data):
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS, block_size=1)
        cache.plan(np.arange(data.shape[0]))
        cache.fetch(3)
        cache.fetch(4)
        assert cache.n_blocks == 2
        assert cache.n_computed == 2

    def test_evict_on_fetch_releases_served_neighborhoods(self, data):
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS, block_size=8, evict_on_fetch=True)
        cache.plan(np.arange(data.shape[0]))
        first = cache.fetch(0)
        assert not cache.is_cached(0)  # served -> released
        assert cache.is_cached(1)  # prefetched, not yet served
        # A re-fetch transparently recomputes the same answer.
        again = cache.fetch(0)
        assert np.array_equal(first, again)
        assert np.array_equal(first, index.range_query(data[0], EPS))

    def test_evicted_points_never_rejoin_later_batches(self, data):
        """Regression: a frontier jump ahead of the plan pointer must not
        re-batch the served-and-evicted point when the pointer reaches it."""
        index = BruteForceIndex().build(data)
        cache = NeighborhoodCache(index, data, EPS, block_size=3, evict_on_fetch=True)
        cache.plan(np.arange(10))
        cache.fetch(5)  # out-of-plan-order jump, then drain the plan
        for p in range(10):
            if p != 5:
                cache.fetch(p)
        assert cache.n_computed == 10

    def test_invalid_block_size_rejected(self, data):
        from repro.exceptions import InvalidParameterError

        index = BruteForceIndex().build(data)
        with pytest.raises(InvalidParameterError):
            NeighborhoodCache(index, data, EPS, block_size=0)

    def test_works_over_tree_backends(self, data):
        tree = CoverTree().build(data)
        cache = NeighborhoodCache(tree, data, EPS)
        cache.plan(np.arange(20))
        for p in range(20):
            assert np.array_equal(cache.fetch(p), tree.range_query(data[p], EPS))
