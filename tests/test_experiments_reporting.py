"""Tests for the reporting helpers."""

import json

import numpy as np
import pytest

from repro.experiments.reporting import format_table, pivot, records_to_rows, save_json
from repro.experiments.runner import RunRecord


def make_record(method="DBSCAN", dataset="MS-50k", ari=1.0, time_s=0.5):
    return RunRecord(
        method=method,
        dataset=dataset,
        eps=0.5,
        tau=5,
        elapsed_seconds=time_s,
        ari=ari,
        ami=ari,
        n_clusters=3,
        noise_ratio=0.2,
        stats={},
    )


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        out = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in out and "b" in out
        assert "1" in out and "4" in out

    def test_title_rendered(self):
        out = format_table(["x"], [[1]], title="Table 3")
        assert out.startswith("Table 3")
        assert "=======" in out

    def test_floats_formatted(self):
        out = format_table(["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_column_alignment(self):
        out = format_table(["method", "t"], [["DBSCAN", 1], ["LAF-DBSCAN++", 2]])
        lines = out.splitlines()
        assert len({line.index("  ") for line in lines if "DBSCAN" in line}) >= 1


class TestRecordsToRows:
    def test_default_columns(self):
        headers, rows = records_to_rows([make_record()])
        assert "method" in headers
        assert len(rows) == 1

    def test_column_selection(self):
        headers, rows = records_to_rows([make_record()], ["method", "ARI"])
        assert headers == ["method", "ARI"]
        assert rows[0][0] == "DBSCAN"

    def test_empty(self):
        headers, rows = records_to_rows([], ["method"])
        assert rows == []


class TestPivot:
    def test_paper_shape(self):
        records = [
            make_record("DBSCAN", "MS-50k", time_s=1.0),
            make_record("DBSCAN", "MS-100k", time_s=2.0),
            make_record("LAF-DBSCAN", "MS-50k", time_s=0.5),
        ]
        headers, rows = pivot(records, value="time_s")
        assert headers == ["method", "MS-50k", "MS-100k"]
        by_method = {row[0]: row[1:] for row in rows}
        assert by_method["DBSCAN"] == [1.0, 2.0]
        assert by_method["LAF-DBSCAN"] == [0.5, "-"]  # missing cell

    def test_value_field_selects(self):
        records = [make_record(ari=0.7)]
        _, rows = pivot(records, value="ARI")
        assert rows[0][1] == 0.7


class TestSaveJson:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "out" / "data.json")
        save_json(path, {"rows": [1, 2, 3], "name": "t"})
        with open(path) as f:
            data = json.load(f)
        assert data == {"rows": [1, 2, 3], "name": "t"}

    def test_numpy_types_serialized(self, tmp_path):
        path = str(tmp_path / "np.json")
        save_json(
            path,
            {"i": np.int64(3), "f": np.float64(0.5), "a": np.arange(3)},
        )
        with open(path) as f:
            data = json.load(f)
        assert data == {"i": 3, "f": 0.5, "a": [0, 1, 2]}

    def test_unserializable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(str(tmp_path / "bad.json"), {"x": object()})
