"""Differential harness: batched vs per-point query paths, per clusterer.

Every clusterer takes an ``ExecutionConfig`` — ``batch_queries=True``
(the default) routes neighborhood computation through the batched
engine, False keeps the scalar reference loop. The two paths must
produce identical clusterings (the engine only changes *how* queries
are computed, never *which* queries run or what the algorithm
observes), and the exact methods must also reproduce the independent
``reference_dbscan`` implementation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    DBSCAN,
    BlockDBSCAN,
    DBSCANPlusPlus,
    RhoApproxDBSCAN,
)
from repro.core import LAFDBSCAN, LAFDBSCANPlusPlus
from repro.distances import normalize_rows
from repro.engine_config import ExecutionConfig, IndexSpec
from repro.estimators import ExactCardinalityEstimator

from repro.testing import canonical, make_blobs_on_sphere, reference_dbscan

EPS = 0.5
TAU = 5


def _exec(b: bool, index: IndexSpec | None = None) -> ExecutionConfig:
    return ExecutionConfig(batch_queries=b, index=index)


# Every clusterer under test, as a factory taking batch_queries. Seeded
# components are constructed fresh per call so both paths see identical
# randomness.
CLUSTERERS = {
    "dbscan": lambda b: DBSCAN(eps=EPS, tau=TAU, execution=_exec(b)),
    "dbscan_cover_tree_index": lambda b: DBSCAN(
        eps=EPS,
        tau=TAU,
        execution=_exec(b, IndexSpec("cover_tree", {"base": 1.8})),
    ),
    "dbscan_kmeans_tree_index": lambda b: DBSCAN(
        eps=EPS,
        tau=TAU,
        execution=_exec(b, IndexSpec("kmeans_tree", {"checks_ratio": 1.0, "seed": 0})),
    ),
    "dbscanpp_uniform": lambda b: DBSCANPlusPlus(
        eps=EPS, tau=TAU, p=0.5, init="uniform", seed=0, execution=_exec(b)
    ),
    "dbscanpp_kcenter": lambda b: DBSCANPlusPlus(
        eps=EPS, tau=TAU, p=0.5, init="k-center", seed=0, execution=_exec(b)
    ),
    "block_dbscan": lambda b: BlockDBSCAN(eps=EPS, tau=TAU, execution=_exec(b)),
    "rho_approx": lambda b: RhoApproxDBSCAN(
        eps=EPS, tau=TAU, rho=1.0, execution=_exec(b)
    ),
    "laf_dbscan_oracle": lambda b: LAFDBSCAN(
        eps=EPS,
        tau=TAU,
        estimator=ExactCardinalityEstimator(),
        alpha=1.0,
        seed=0,
        execution=_exec(b),
    ),
    # alpha > 1 forces false negatives out of the oracle, exercising the
    # partial-neighbor map and the post-processing merge path.
    "laf_dbscan_false_negatives": lambda b: LAFDBSCAN(
        eps=EPS,
        tau=TAU,
        estimator=ExactCardinalityEstimator(),
        alpha=1.4,
        seed=0,
        execution=_exec(b),
    ),
    # alpha < 1 lowers the gate instead, producing false positives
    # (predicted core, found non-core after the executed query).
    "laf_dbscan_false_positives": lambda b: LAFDBSCAN(
        eps=EPS,
        tau=TAU,
        estimator=ExactCardinalityEstimator(),
        alpha=0.6,
        seed=0,
        execution=_exec(b),
    ),
    "laf_dbscanpp": lambda b: LAFDBSCANPlusPlus(
        eps=EPS,
        tau=TAU,
        estimator=ExactCardinalityEstimator(),
        p=0.5,
        alpha=1.0,
        seed=0,
        execution=_exec(b),
    ),
    "laf_dbscanpp_false_negatives": lambda b: LAFDBSCANPlusPlus(
        eps=EPS,
        tau=TAU,
        estimator=ExactCardinalityEstimator(),
        p=0.5,
        alpha=1.4,
        seed=0,
        execution=_exec(b),
    ),
}

#: Methods whose batched path must also reproduce reference_dbscan exactly.
EXACT_METHODS = (
    "dbscan",
    "dbscan_cover_tree_index",
    "dbscan_kmeans_tree_index",
    "laf_dbscan_oracle",
)


@pytest.fixture(scope="module")
def blob_plus_noise() -> np.ndarray:
    rng = np.random.default_rng(11)
    X, _ = make_blobs_on_sphere(40, 3, 32, spread=0.12, seed=3)
    noise = normalize_rows(rng.normal(size=(30, 32)))
    return np.vstack([X, noise])


@pytest.mark.parametrize("name", list(CLUSTERERS))
class TestBatchedEqualsPerPoint:
    def test_identical_labels_on_blobs(self, name, blob_data):
        X, _ = blob_data
        batched = CLUSTERERS[name](True).fit(X)
        scalar = CLUSTERERS[name](False).fit(X)
        assert np.array_equal(canonical(batched.labels), canonical(scalar.labels))

    def test_identical_labels_on_blobs_plus_noise(self, name, blob_plus_noise):
        batched = CLUSTERERS[name](True).fit(blob_plus_noise)
        scalar = CLUSTERERS[name](False).fit(blob_plus_noise)
        assert np.array_equal(canonical(batched.labels), canonical(scalar.labels))

    def test_identical_core_masks(self, name, blob_plus_noise):
        batched = CLUSTERERS[name](True).fit(blob_plus_noise)
        scalar = CLUSTERERS[name](False).fit(blob_plus_noise)
        assert np.array_equal(batched.core_mask, scalar.core_mask)

    def test_same_executed_query_count(self, name, blob_plus_noise):
        """Batching must not change *which* queries execute."""
        batched = CLUSTERERS[name](True).fit(blob_plus_noise).stats
        scalar = CLUSTERERS[name](False).fit(blob_plus_noise).stats
        for key in ("range_queries", "count_queries", "skipped_queries"):
            if key in scalar:
                assert batched[key] == scalar[key], key


@pytest.mark.parametrize("name", EXACT_METHODS)
def test_exact_methods_match_reference(name, blob_plus_noise):
    result = CLUSTERERS[name](True).fit(blob_plus_noise)
    expected = reference_dbscan(blob_plus_noise, EPS, TAU)
    assert np.array_equal(canonical(result.labels), canonical(expected))


class TestPropertyEquivalence:
    """Randomized differential sweep over the exact expansion path, which
    has the subtlest batched rewrite (frontier prefetch ordering)."""

    @given(st.integers(0, 300))
    @settings(max_examples=12, deadline=None)
    def test_dbscan_paths_agree_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        X = normalize_rows(rng.normal(size=(50, 8)))
        batched = DBSCAN(eps=0.6, tau=4).fit(X)
        scalar = DBSCAN(
            eps=0.6, tau=4, execution=ExecutionConfig(batch_queries=False)
        ).fit(X)
        assert np.array_equal(batched.labels, scalar.labels)
        assert np.array_equal(
            canonical(batched.labels), canonical(reference_dbscan(X, 0.6, 4))
        )

    @given(st.integers(0, 300))
    @settings(max_examples=8, deadline=None)
    def test_laf_paths_agree_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        X = normalize_rows(rng.normal(size=(50, 8)))
        kwargs = dict(eps=0.6, tau=4, alpha=1.3, seed=0)
        batched = LAFDBSCAN(estimator=ExactCardinalityEstimator(), **kwargs).fit(X)
        scalar = LAFDBSCAN(
            estimator=ExactCardinalityEstimator(),
            execution=ExecutionConfig(batch_queries=False),
            **kwargs,
        ).fit(X)
        assert np.array_equal(batched.labels, scalar.labels)
        assert batched.stats["range_queries"] == scalar.stats["range_queries"]
        assert batched.stats["fn_detected"] == scalar.stats["fn_detected"]
        assert batched.stats["merges"] == scalar.stats["merges"]


class TestEngineEffectiveness:
    def test_dbscan_batched_path_uses_few_blocks(self, blob_plus_noise):
        n = blob_plus_noise.shape[0]
        result = DBSCAN(eps=EPS, tau=TAU).fit(blob_plus_noise)
        assert result.stats["range_queries"] == n
        assert result.stats["engine_computed"] == n
        # The whole fit should need on the order of n / block_size batched
        # calls, not one call per point.
        assert result.stats["engine_batches"] < n / 4

    def test_laf_engine_never_computes_skipped_points(self, blob_plus_noise):
        result = LAFDBSCAN(
            eps=EPS,
            tau=TAU,
            estimator=ExactCardinalityEstimator(),
            alpha=1.0,
        ).fit(blob_plus_noise)
        # The engine computed exactly the executed queries: the gate's
        # skipped points never reached the index.
        assert result.stats["engine_computed"] == result.stats["range_queries"]
        assert result.stats["skipped_queries"] > 0
