"""Failure injection for the sharded process executor.

Two contracts under test:

* **No leaked shared memory.** A fit that raises mid-query must release
  the process executor's shared-memory segment deterministically. The
  subtle leak: the exception traceback pins the clusterer's frame — and
  with it the NeighborhoodCache and its owned ShardedIndex — so without
  an explicit ``close()`` in a ``finally`` the segment survives until a
  gc cycle collects the traceback. The injected failure here is a
  worker-side exception (a monkeypatched shard op, inherited through
  ``fork``), the closest analogue of a query blowing up inside a worker.

* **Rebalance on worker death.** Killing a pinned worker must not lose
  the fit: its shards get rebalanced to the survivors (who rebuild just
  those shards lazily), the failed calls are retried, results stay
  exact, and ``shard_rebalances`` records the event. When *every*
  worker dies a fresh one is spawned.

Everything here requires the ``fork`` start method (monkeypatch
inheritance; deterministic worker pids) and is skipped elsewhere.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.index.sharded as sharded_mod
from repro.clustering import DBSCAN
from repro.engine_config import ExecutionConfig
from repro.index import BruteForceIndex, ShardedIndex
from repro.index.sharded import ShardingConfig
from repro.testing import make_blobs_on_sphere

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method (monkeypatch inheritance)",
)

EPS = 0.5


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    X, _ = make_blobs_on_sphere(30, 3, 8, spread=0.3, seed=5)
    return X


@pytest.fixture
def executor_spy(monkeypatch):
    """Record every _ProcessExecutor constructed during the test."""
    created: list = []
    original_init = sharded_mod._ProcessExecutor.__init__

    def spying_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        created.append(self)

    monkeypatch.setattr(sharded_mod._ProcessExecutor, "__init__", spying_init)
    return created


def _slot_pids(executor) -> list[int]:
    """Worker pids per live slot (forcing lazy slots to spawn)."""
    pids = []
    for slot_id in executor._live_slot_ids():
        slot = executor._slots[slot_id]
        slot.submit(os.getpid).result()  # ensure the worker exists
        pids.extend(p.pid for p in slot._processes.values())
    return pids


def _kill_and_wait(pid: int) -> None:
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.01)
    raise AssertionError(f"worker {pid} did not die")


class TestLeakOnMidQueryFailure:
    def test_failed_fit_releases_shared_memory(self, data, executor_spy, monkeypatch):
        def exploding_range(index, Q, eps):
            raise RuntimeError("injected shard-op failure")

        monkeypatch.setitem(sharded_mod._SHARD_OPS, "range", exploding_range)
        execution = ExecutionConfig(
            sharding=ShardingConfig(n_shards=2, executor="process", n_workers=2)
        )
        with pytest.raises(RuntimeError, match="injected shard-op failure"):
            DBSCAN(eps=EPS, tau=3, execution=execution).fit(data)
        # The traceback above still pins the clusterer frame (and the
        # engine in it), so only a deterministic close() in the fit's
        # finally can have released the segment — assert it did.
        assert len(executor_spy) == 1
        name = executor_spy[0]._shm.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_direct_index_close_after_query_failure(self, data, monkeypatch):
        def exploding_count(index, Q, eps):
            raise RuntimeError("boom")

        monkeypatch.setitem(sharded_mod._SHARD_OPS, "count", exploding_count)
        index = ShardedIndex(n_shards=2, executor="process", n_workers=2).build(data)
        name = index._executor_obj._shm.name
        with pytest.raises(RuntimeError, match="boom"):
            index.batch_range_count(data, EPS)
        # A worker-side exception must not wedge or leak the executor.
        index.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestRebalanceOnWorkerDeath:
    def test_one_dead_worker_rebalances_to_survivor(self, data):
        single = BruteForceIndex().build(data)
        expected = single.batch_range_query(data, EPS)
        with ShardedIndex(n_shards=4, executor="process", n_workers=2).build(
            data
        ) as index:
            first = index.batch_range_query(data, EPS)
            for got, exp in zip(first, expected):
                assert np.array_equal(got, np.sort(exp))
            executor = index._executor_obj
            victim = _slot_pids(executor)[0]
            _kill_and_wait(victim)
            again = index.batch_range_query(data, EPS)
            for got, exp in zip(again, expected):
                assert np.array_equal(got, np.sort(exp))
            stats = index.stats()
            assert stats["shard_rebalances"] >= 1
            # The survivor owns all four shards now: its two originals
            # plus the two orphans it rebuilt lazily on the retry.
            assert stats["shard_inner_builds"] == 4

    def test_all_workers_dead_respawns_fresh_slot(self, data):
        single = BruteForceIndex().build(data)
        expected = single.batch_range_query(data, EPS)
        with ShardedIndex(n_shards=3, executor="process", n_workers=2).build(
            data
        ) as index:
            index.batch_range_query(data[:4], EPS)
            executor = index._executor_obj
            for pid in _slot_pids(executor):
                _kill_and_wait(pid)
            again = index.batch_range_query(data, EPS)
            for got, exp in zip(again, expected):
                assert np.array_equal(got, np.sort(exp))
            assert index.stats()["shard_rebalances"] >= 1

    def test_close_after_total_worker_loss_is_clean(self, data):
        index = ShardedIndex(n_shards=2, executor="process", n_workers=2).build(data)
        index.batch_range_query(data[:2], EPS)
        executor = index._executor_obj
        name = executor._shm.name
        for pid in _slot_pids(executor):
            _kill_and_wait(pid)
        # close() must neither hang nor raise while snapshotting stats
        # from broken pools, and must still release the segment.
        index.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
