"""Negative-path tests: every corrupt artifact fails with a typed error.

The load path promises a :class:`~repro.exceptions.PersistenceError` —
never a bare numpy/json traceback — for each damage class: truncated
array files, checksum mismatches, unknown or newer format versions,
manifest/dtype drift, missing files, and artifacts whose execution
policy cannot be reconstructed (custom ``IndexSpec`` factories).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.distances import normalize_rows
from repro.engine_config import ExecutionConfig, IndexSpec
from repro.exceptions import PersistenceError
from repro.index import BruteForceIndex, CoverTree
from repro.index.sharded import ShardedIndex
from repro.persistence import (
    FORMAT_VERSION,
    MANIFEST_FILENAME,
    load_index,
    load_model,
    read_manifest,
    save_index,
)


@pytest.fixture()
def data() -> np.ndarray:
    return normalize_rows(np.random.default_rng(0).normal(size=(40, 8)))


@pytest.fixture()
def artifact(data, tmp_path):
    path = tmp_path / "index"
    save_index(CoverTree().build(data), path)
    return path


def edit_manifest(path, mutate) -> None:
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    mutate(manifest)
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))


class TestManifestValidation:
    def test_missing_artifact_directory(self, tmp_path):
        with pytest.raises(PersistenceError, match="no artifact"):
            load_index(tmp_path / "nowhere")

    def test_file_instead_of_directory(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("hello")
        with pytest.raises(PersistenceError, match="no artifact"):
            load_index(target)

    def test_missing_manifest(self, artifact):
        (artifact / MANIFEST_FILENAME).unlink()
        with pytest.raises(PersistenceError, match="no artifact"):
            load_index(artifact)

    def test_malformed_json(self, artifact):
        (artifact / MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(PersistenceError, match="unreadable manifest"):
            load_index(artifact)

    def test_wrong_format_tag(self, artifact):
        edit_manifest(artifact, lambda m: m.update(format="other-format"))
        with pytest.raises(PersistenceError, match="not a repro-artifact"):
            load_index(artifact)

    def test_newer_format_version(self, artifact):
        edit_manifest(artifact, lambda m: m.update(format_version=FORMAT_VERSION + 1))
        with pytest.raises(PersistenceError, match="newer than"):
            load_index(artifact)

    def test_invalid_format_version(self, artifact):
        edit_manifest(artifact, lambda m: m.update(format_version="two"))
        with pytest.raises(PersistenceError, match="invalid format_version"):
            load_index(artifact)

    def test_missing_required_key(self, artifact):
        edit_manifest(artifact, lambda m: m.pop("arrays"))
        with pytest.raises(PersistenceError, match="missing 'arrays'"):
            load_index(artifact)

    def test_kind_mismatch(self, artifact):
        with pytest.raises(PersistenceError, match="kind"):
            read_manifest(artifact, expected_kind="cluster_model")

    def test_model_loader_rejects_index_artifact(self, artifact):
        with pytest.raises(PersistenceError, match="kind"):
            load_model(artifact)


class TestArrayValidation:
    def test_truncated_array_file(self, artifact):
        target = artifact / "points.npy"
        target.write_bytes(target.read_bytes()[:-16])
        with pytest.raises(PersistenceError, match="truncated"):
            load_index(artifact)

    def test_checksum_mismatch(self, artifact):
        target = artifact / "points.npy"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF  # flip bits, keep the size
        target.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError, match="checksum mismatch"):
            load_index(artifact)

    def test_checksum_skippable_for_hot_reattach(self, artifact):
        target = artifact / "points.npy"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        # verify=False skips the hash pass; structural checks still run.
        loaded = load_index(artifact, verify=False)
        assert loaded.n_points == 40

    def test_missing_array_file(self, artifact):
        (artifact / "node_level.npy").unlink()
        with pytest.raises(PersistenceError, match="missing"):
            load_index(artifact)

    def test_dtype_drift(self, artifact):
        edit_manifest(
            artifact,
            lambda m: m["arrays"]["node_level"].update(dtype="<i4"),
        )
        # Size check trips first only if nbytes disagrees; align it so the
        # dtype comparison is what fires.
        with pytest.raises(PersistenceError, match="truncated|drifted"):
            load_index(artifact)

    def test_shape_drift(self, artifact, data):
        # Replace the array file with a differently-shaped valid .npy of
        # identical byte size, then fix the manifest hash so only the
        # shape check can object.
        import hashlib

        target = artifact / "points.npy"
        np.save(target, np.ascontiguousarray(data.reshape(8, 40)))
        digest = hashlib.sha256(target.read_bytes()).hexdigest()

        def mutate(m):
            m["arrays"]["points"]["sha256"] = digest
            m["arrays"]["points"]["nbytes"] = target.stat().st_size

        edit_manifest(artifact, mutate)
        with pytest.raises(PersistenceError, match="drifted"):
            load_index(artifact)


class TestSpecValidation:
    def test_unknown_backend_name(self, artifact):
        edit_manifest(artifact, lambda m: m["spec"].update(backend="btree"))
        with pytest.raises(PersistenceError, match="cannot reconstruct"):
            load_index(artifact)

    def test_unknown_backend_kwarg(self, artifact):
        edit_manifest(artifact, lambda m: m["spec"]["kwargs"].update(depth=3))
        with pytest.raises(PersistenceError, match="cannot reconstruct"):
            load_index(artifact)

    def test_unregistered_index_type_refuses_to_save(self, data, tmp_path):
        class CustomIndex(BruteForceIndex):
            pass

        with pytest.raises(PersistenceError, match="no registered rebuild spec"):
            save_index(CustomIndex().build(data), tmp_path / "custom")

    def test_generator_seeded_kmeans_tree_refuses_to_save(self, data, tmp_path):
        from repro.index import KMeansTree

        tree = KMeansTree(seed=np.random.default_rng(0)).build(data)
        with pytest.raises(PersistenceError, match="no registered rebuild spec"):
            save_index(tree, tmp_path / "tree")

    def test_process_sharded_index_saves_and_reloads(self, data, tmp_path):
        # Worker-held shard indexes used to refuse persistence; now the
        # parent rebuilds each shard deterministically, records the
        # executor spec, and the artifact reloads under any executor.
        index = ShardedIndex(n_shards=2, executor="process", n_workers=2).build(data)
        try:
            save_index(index, tmp_path / "sharded")
            expected = index.batch_range_query(data[:5], 0.6)
        finally:
            index.close()
        loaded = load_index(tmp_path / "sharded", executor="serial")
        try:
            got = loaded.batch_range_query(data[:5], 0.6)
            assert all(np.array_equal(a, b) for a, b in zip(got, expected))
        finally:
            loaded.close()

    def test_factory_sharded_index_refuses_to_save(self, data, tmp_path):
        index = ShardedIndex(inner=lambda: BruteForceIndex(), n_shards=2).build(data)
        try:
            with pytest.raises(PersistenceError, match="factory callable"):
                save_index(index, tmp_path / "sharded")
        finally:
            index.close()


class TestModelValidation:
    def test_custom_index_spec_fails_actionably(self, data, tmp_path):
        execution = ExecutionConfig(index=IndexSpec.custom(lambda: BruteForceIndex()))
        model = repro.fit_model(data, "dbscan", eps=0.4, tau=3, execution=execution)
        with model:
            model.save(tmp_path / "model")
        with pytest.raises(PersistenceError, match="custom IndexSpec factory"):
            repro.load_model(tmp_path / "model")

    def test_unknown_estimator_type(self, data, tmp_path):
        model = repro.fit_model(data, "dbscan", eps=0.4, tau=3)
        with model:
            model.save(tmp_path / "model")

        def mutate(m):
            m["metadata"]["estimator"] = {"type": "MysteryEstimator", "file": "x.npz"}

        edit_manifest(tmp_path / "model", mutate)
        with pytest.raises(PersistenceError, match="unknown estimator"):
            repro.load_model(tmp_path / "model")

    def test_core_maskless_clusterer_cannot_freeze(self, data):
        from repro.clustering.base import Clusterer, ClusteringResult

        class NoCores(Clusterer):
            def fit(self, X):
                return ClusteringResult(labels=np.zeros(X.shape[0], dtype=np.int64))

        with pytest.raises(PersistenceError, match="core status"):
            NoCores(eps=0.4, tau=3).fit_model(data)
