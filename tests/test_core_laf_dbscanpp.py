"""Tests for LAF-DBSCAN++."""

import numpy as np
import pytest

from repro.clustering import DBSCANPlusPlus
from repro.core import LAFDBSCANPlusPlus
from repro.estimators import ExactCardinalityEstimator, SamplingCardinalityEstimator
from repro.exceptions import InvalidParameterError
from repro.metrics import adjusted_rand_index

from repro.testing import make_blobs_on_sphere


class TestParameters:
    def test_invalid_p(self):
        with pytest.raises(InvalidParameterError):
            LAFDBSCANPlusPlus(
                eps=0.5, tau=3, estimator=ExactCardinalityEstimator(), p=0.0
            )

    def test_paper_default_alpha_is_one(self):
        laf = LAFDBSCANPlusPlus(
            eps=0.5, tau=3, estimator=ExactCardinalityEstimator(), p=0.5
        )
        assert laf.laf.alpha == 1.0


class TestOracleEquivalence:
    """Oracle + alpha=1: gating agrees with the exact core test, so the
    clustering equals DBSCAN++ with the same sample (queries skipped)."""

    def test_same_labels_as_dbscanpp(self, clusterable_data):
        eps, tau, p, seed = 0.5, 5, 0.4, 7
        plain = DBSCANPlusPlus(eps=eps, tau=tau, p=p, seed=seed).fit(clusterable_data)
        laf = LAFDBSCANPlusPlus(
            eps=eps,
            tau=tau,
            estimator=ExactCardinalityEstimator(),
            p=p,
            alpha=1.0,
            seed=seed,
        ).fit(clusterable_data)
        assert adjusted_rand_index(plain.labels, laf.labels) == pytest.approx(1.0)

    def test_queries_skipped(self, clusterable_data):
        laf = LAFDBSCANPlusPlus(
            eps=0.5,
            tau=5,
            estimator=ExactCardinalityEstimator(),
            p=0.5,
            seed=0,
        ).fit(clusterable_data)
        assert laf.stats["skipped_queries"] > 0
        assert (
            laf.stats["range_queries"] + laf.stats["skipped_queries"]
            == laf.stats["sample_size"]
        )

    def test_core_subset_of_sample(self, clusterable_data):
        laf = LAFDBSCANPlusPlus(
            eps=0.5, tau=5, estimator=ExactCardinalityEstimator(), p=0.3, seed=1
        ).fit(clusterable_data)
        assert laf.stats["n_core"] <= laf.stats["sample_size"]


class TestWithImperfectEstimator:
    def test_runs_and_scores_reasonably(self):
        X, y = make_blobs_on_sphere(50, 3, 24, spread=0.25, seed=2)
        estimator = SamplingCardinalityEstimator(sample_size=30, seed=0).fit(X)
        laf = LAFDBSCANPlusPlus(eps=0.5, tau=4, estimator=estimator, p=0.5, seed=0).fit(
            X
        )
        assert adjusted_rand_index(y, laf.labels) > 0.5

    def test_no_core_detected_all_noise(self, unit_vectors_small):
        laf = LAFDBSCANPlusPlus(
            eps=0.02,
            tau=10,
            estimator=ExactCardinalityEstimator(),
            p=0.5,
            seed=0,
        ).fit(unit_vectors_small)
        assert laf.noise_ratio == 1.0
        assert laf.n_clusters == 0

    def test_deterministic(self, clusterable_data):
        estimator = SamplingCardinalityEstimator(sample_size=40, seed=1).fit(
            clusterable_data
        )
        a = LAFDBSCANPlusPlus(eps=0.5, tau=5, estimator=estimator, p=0.4, seed=4).fit(
            clusterable_data
        )
        b = LAFDBSCANPlusPlus(eps=0.5, tau=5, estimator=estimator, p=0.4, seed=4).fit(
            clusterable_data
        )
        assert np.array_equal(a.labels, b.labels)

    def test_stats_complete(self, clusterable_data):
        laf = LAFDBSCANPlusPlus(
            eps=0.5, tau=5, estimator=ExactCardinalityEstimator(), p=0.4, seed=0
        ).fit(clusterable_data)
        assert {
            "range_queries",
            "skipped_queries",
            "sample_size",
            "n_core",
            "fn_detected",
            "merges",
            "cardest_calls",
        } <= set(laf.stats)
