"""Tests for the von Mises-Fisher sampler."""

import numpy as np
import pytest

from repro.data import sample_vmf
from repro.exceptions import InvalidParameterError


class TestSampleVmf:
    def test_unit_norm_output(self):
        mu = np.zeros(16)
        mu[0] = 1.0
        X = sample_vmf(mu, kappa=50.0, n=200, seed=0)
        assert X.shape == (200, 16)
        assert np.allclose(np.linalg.norm(X, axis=1), 1.0, atol=1e-9)

    def test_concentrates_around_mu(self):
        rng = np.random.default_rng(1)
        mu = rng.normal(size=32)
        mu /= np.linalg.norm(mu)
        X = sample_vmf(mu, kappa=500.0, n=300, seed=2)
        sims = X @ mu
        assert sims.mean() > 0.9

    def test_higher_kappa_tighter(self):
        mu = np.zeros(24)
        mu[0] = 1.0
        loose = sample_vmf(mu, kappa=20.0, n=400, seed=3) @ mu
        tight = sample_vmf(mu, kappa=800.0, n=400, seed=3) @ mu
        assert tight.mean() > loose.mean()
        assert tight.std() < loose.std()

    def test_kappa_zero_uniform(self):
        mu = np.zeros(8)
        mu[0] = 1.0
        X = sample_vmf(mu, kappa=0.0, n=2000, seed=4)
        # Uniform on the sphere: mean resultant is near zero.
        assert np.linalg.norm(X.mean(axis=0)) < 0.1

    def test_mu_normalized_internally(self):
        mu = np.zeros(8)
        mu[0] = 10.0  # un-normalized mean direction
        X = sample_vmf(mu, kappa=300.0, n=100, seed=5)
        assert (X @ (mu / 10.0)).mean() > 0.8

    def test_mu_away_from_north_pole(self):
        # Exercises the Householder reflection path.
        mu = np.zeros(12)
        mu[-1] = -1.0
        X = sample_vmf(mu, kappa=400.0, n=150, seed=6)
        assert (X @ mu).mean() > 0.85

    def test_deterministic_given_seed(self):
        mu = np.zeros(6)
        mu[0] = 1.0
        a = sample_vmf(mu, 100.0, 50, seed=7)
        b = sample_vmf(mu, 100.0, 50, seed=7)
        assert np.array_equal(a, b)

    def test_n_zero(self):
        mu = np.zeros(5)
        mu[0] = 1.0
        assert sample_vmf(mu, 10.0, 0, seed=0).shape == (0, 5)

    def test_invalid_inputs(self):
        mu = np.zeros(5)
        mu[0] = 1.0
        with pytest.raises(InvalidParameterError):
            sample_vmf(mu, kappa=-1.0, n=5)
        with pytest.raises(InvalidParameterError):
            sample_vmf(mu, kappa=1.0, n=-2)
        with pytest.raises(InvalidParameterError):
            sample_vmf(np.zeros(5), kappa=1.0, n=5)  # zero mean direction
        with pytest.raises(InvalidParameterError):
            sample_vmf(np.array([1.0]), kappa=1.0, n=5)  # dim < 2

    def test_high_dimension(self):
        mu = np.zeros(768)
        mu[0] = 1.0
        X = sample_vmf(mu, kappa=2000.0, n=50, seed=8)
        assert np.allclose(np.linalg.norm(X, axis=1), 1.0, atol=1e-9)
        assert (X @ mu).min() > 0.0
