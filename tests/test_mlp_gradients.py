"""Numerical gradient check for the MLP backpropagation.

Backprop bugs are silent (training still "works", just worse), so this
verifies the analytical gradients against central finite differences on
every layer, plus the correctness of the folded inference path.
"""

import numpy as np
import pytest

from repro.estimators import MLPRegressor


def _loss(model: MLPRegressor, X: np.ndarray, y: np.ndarray) -> float:
    pred, _ = model._forward(X)
    return float(np.mean((pred - y) ** 2))


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(12, 5))
    y = rng.normal(size=12)
    model = MLPRegressor(hidden_layers=(7, 4), seed=1)
    model._feature_mean = np.zeros(5)
    model._feature_std = np.ones(5)
    model._init_params(5)
    return model, X, y


class TestBackpropGradients:
    def test_weight_gradients_match_finite_differences(self, setup):
        model, X, y = setup
        pred, activations = model._forward(X)
        grad_w, grad_b = model._backward(activations, pred - y)
        h = 1e-6
        for layer in range(len(model._weights)):
            W = model._weights[layer]
            for index in [(0, 0), (W.shape[0] // 2, W.shape[1] // 2), (-1, -1)]:
                original = W[index]
                W[index] = original + h
                up = _loss(model, X, y)
                W[index] = original - h
                down = _loss(model, X, y)
                W[index] = original
                numeric = (up - down) / (2 * h)
                assert grad_w[layer][index] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                ), f"weight gradient mismatch at layer {layer}, index {index}"

    def test_bias_gradients_match_finite_differences(self, setup):
        model, X, y = setup
        pred, activations = model._forward(X)
        _, grad_b = model._backward(activations, pred - y)
        h = 1e-6
        for layer in range(len(model._biases)):
            b = model._biases[layer]
            for index in [0, b.shape[0] - 1]:
                original = b[index]
                b[index] = original + h
                up = _loss(model, X, y)
                b[index] = original - h
                down = _loss(model, X, y)
                b[index] = original
                numeric = (up - down) / (2 * h)
                assert grad_b[layer][index] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-7
                ), f"bias gradient mismatch at layer {layer}, index {index}"

    def test_l2_gradient_contribution(self, setup):
        model, X, y = setup
        model.l2 = 0.3
        pred, activations = model._forward(X)
        grad_w_reg, _ = model._backward(activations, pred - y)
        model.l2 = 0.0
        grad_w_free, _ = model._backward(activations, pred - y)
        for layer in range(len(model._weights)):
            expected = grad_w_free[layer] + 0.3 * model._weights[layer]
            assert np.allclose(grad_w_reg[layer], expected)
        model.l2 = 0.0


class TestFoldedInference:
    def test_folded_equals_standardized_forward(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-2, 5, size=(40, 6))
        y = X[:, 0] - 2 * X[:, 3]
        model = MLPRegressor(hidden_layers=(8, 5), epochs=15, seed=0).fit(X, y)
        reference, _ = model._forward(model._standardize(X))
        folded = model._forward_inference(X)
        assert np.allclose(folded, reference, atol=1e-10)

    def test_fold_cache_invalidated_on_refit(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(30, 4))
        y = rng.normal(size=30)
        model = MLPRegressor(hidden_layers=(6,), epochs=3, seed=0).fit(X, y)
        first = model.predict(X[:5]).copy()
        model.fit(X, -y)  # refit on different targets
        second = model.predict(X[:5])
        assert not np.allclose(first, second)
