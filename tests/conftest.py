"""Shared fixtures for the unit test suite.

The reference implementations and data generators live in
:mod:`repro.testing` (a stable module path both test trees and
downstream users can import); tests import helpers from there directly.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.distances import normalize_rows
from repro.testing import make_blobs_on_sphere

# tools/ holds dev-only packages (reprolint) that are not part of the
# installed distribution; make them importable for the suite regardless
# of how PYTHONPATH was set up.
_TOOLS_DIR = str(Path(__file__).resolve().parent.parent / "tools")
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

# pytester drives the sanitizer-plugin tests via real sub-runs.
pytest_plugins = ["pytester"]

# ---------------------------------------------------------------------------
# Data fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def unit_vectors_small() -> np.ndarray:
    """60 random unit vectors in 16-d (generic geometry fixture)."""
    rng = np.random.default_rng(7)
    return normalize_rows(rng.normal(size=(60, 16)))


@pytest.fixture(scope="session")
def blob_data() -> tuple[np.ndarray, np.ndarray]:
    """3 tight blobs of 40 points each in 32-d, with labels."""
    return make_blobs_on_sphere(40, 3, 32, spread=0.12, seed=3)


@pytest.fixture(scope="session")
def clusterable_data() -> np.ndarray:
    """Blobs plus uniform noise: realistic DBSCAN input (150 points)."""
    rng = np.random.default_rng(11)
    X, _ = make_blobs_on_sphere(40, 3, 32, spread=0.12, seed=3)
    noise = normalize_rows(rng.normal(size=(30, 32)))
    return np.vstack([X, noise])
