"""Golden-file format stability: yesterday's bytes must keep loading.

``tests/golden/model`` is a tiny fitted DBSCAN model committed to the
repository (see ``tests/golden/regenerate.py``). Loading it — with
checksum verification on — and reproducing the committed predictions
proves the on-disk format is still readable, across every Python and
numpy version CI runs. Any change that breaks these tests breaks every
artifact users have already saved; it needs a format-version bump and a
migration path, not a test edit.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.persistence import FORMAT_NAME, FORMAT_VERSION, MANIFEST_FILENAME

GOLDEN = Path(__file__).resolve().parent / "golden"


@pytest.fixture(scope="module")
def model():
    loaded = repro.load_model(GOLDEN / "model")  # verify=True: full checksum pass
    yield loaded
    loaded.close()


def test_manifest_is_current_format():
    manifest = json.loads((GOLDEN / "model" / MANIFEST_FILENAME).read_text())
    assert manifest["format"] == FORMAT_NAME
    # If this fails, FORMAT_VERSION was bumped without regenerating the
    # golden artifact — old-version artifacts must still load, so add a
    # second golden model for the old version instead of replacing this one.
    assert manifest["format_version"] == FORMAT_VERSION
    assert manifest["kind"] == "cluster_model"


def test_golden_model_loads_with_expected_shape(model):
    assert model.algo == "dbscan"
    assert model.params["eps"] == 0.4
    assert model.params["tau"] == 3  # min cluster cardinality incl. self
    assert model.n_points == 24
    assert model.n_clusters == 3
    assert model.n_cores == 24


def test_golden_model_predicts_committed_labels(model):
    queries = np.load(GOLDEN / "queries.npy")
    expected = np.load(GOLDEN / "expected_predict.npy")
    assert np.array_equal(model.predict(queries), expected)


def test_golden_model_training_set_roundtrip(model):
    predicted = model.predict(np.asarray(model.points))
    cores = model.core_mask
    assert np.array_equal(predicted[cores], model.labels[cores])
