"""Edge cases the vectorized tree batch traversals must survive.

Every case asserts the batched path row-identical to the scalar path on
all four index backends (brute force, cover tree, k-means tree, grid):
empty batches, ``eps = 0``, duplicate points, batches larger than the
dataset, and degenerate single-leaf / single-node trees. The duplicate
and ``eps = 0`` fixtures use one-hot unit vectors so every inner product
is exactly representable — the comparisons are deterministic regardless
of which BLAS kernel computed them.

Also unit-tests the shared traversal kernels in ``repro.index.base``
(CSR expansion, grouped pair distances, hit-pair grouping) that both
trees are built from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import normalize_rows
from repro.exceptions import InvalidParameterError
from repro.index import BruteForceIndex, CoverTree, GridIndex, KMeansTree
from repro.index.base import (
    NeighborIndex,
    expand_csr,
    group_hit_pairs,
    grouped_pair_distances,
)
from repro.testing import make_blobs_on_sphere

EPS = 0.6

# Backends whose batch_range_query takes (Q, eps); the grid fixes eps at
# construction and is exercised separately.
BACKENDS = [
    ("brute_force", lambda: BruteForceIndex(block_size=7)),
    ("cover_tree", lambda: CoverTree(base=1.6)),
    ("cover_tree_wide", lambda: CoverTree(base=3.0)),
    ("kmeans_tree_exact", lambda: KMeansTree(checks_ratio=1.0, seed=0)),
    ("kmeans_tree_approx", lambda: KMeansTree(checks_ratio=0.3, seed=0)),
    ("kmeans_tree_tiny_leaves", lambda: KMeansTree(leaf_size=2, branching=2, seed=0)),
]

IDS = [name for name, _ in BACKENDS]


def one_hot_duplicates(n: int, dim: int) -> np.ndarray:
    """n unit vectors drawn from the dim standard basis vectors (exact)."""
    X = np.zeros((n, dim))
    X[np.arange(n), np.arange(n) % dim] = 1.0
    return X


def assert_batch_matches_scalar(index, Q: np.ndarray, eps: float) -> None:
    rows = index.batch_range_query(Q, eps)
    assert len(rows) == Q.shape[0]
    for i, row in enumerate(rows):
        expected = np.sort(index.range_query(Q[i], eps))
        assert row.dtype == np.int64
        assert np.array_equal(row, expected), f"row {i} at eps={eps}"
    counts = index.batch_range_count(Q, eps)
    assert np.array_equal(counts, [index.range_count(q, eps) for q in Q])


@pytest.mark.parametrize("name,factory", BACKENDS, ids=IDS)
class TestTreeBatchEdgeCases:
    def test_empty_batch(self, name, factory):
        X, _ = make_blobs_on_sphere(10, 2, 8, seed=0)
        index = factory().build(X)
        assert index.batch_range_query(np.empty((0, 8)), EPS) == []
        assert index.batch_range_count(np.empty((0, 8)), EPS).size == 0

    def test_eps_zero_returns_nothing(self, name, factory):
        # Strict d < 0 can never hit — not even a query equal to an
        # indexed point. One-hot data keeps every distance exact.
        X = one_hot_duplicates(30, 8)
        index = factory().build(X)
        rows = index.batch_range_query(X, 0.0)
        assert all(row.size == 0 for row in rows)
        assert_batch_matches_scalar(index, X, 0.0)

    def test_eps_zero_on_random_data(self, name, factory):
        X, _ = make_blobs_on_sphere(25, 3, 12, spread=0.2, seed=4)
        index = factory().build(X)
        assert_batch_matches_scalar(index, X, 0.0)

    def test_duplicate_points(self, name, factory):
        # 40 points, 8 distinct values: every hit set has multiplicity.
        X = one_hot_duplicates(40, 8)
        index = factory().build(X)
        for eps in (0.5, 1.0):
            assert_batch_matches_scalar(index, X, eps)

    def test_all_points_identical(self, name, factory):
        X = normalize_rows(np.ones((30, 5)))
        index = factory().build(X)
        assert_batch_matches_scalar(index, X, 0.4)

    def test_batch_larger_than_dataset(self, name, factory):
        X, _ = make_blobs_on_sphere(8, 2, 8, spread=0.2, seed=7)  # 16 points
        index = factory().build(X)
        Q = np.vstack([X, X, X])  # 48 queries over 16 points
        assert_batch_matches_scalar(index, Q, EPS)

    def test_single_point_tree(self, name, factory):
        X = normalize_rows(np.ones((1, 6)))
        index = factory().build(X)
        assert_batch_matches_scalar(index, X, EPS)
        (row,) = index.batch_range_query(X[0], EPS)
        assert np.array_equal(row, [0])

    def test_queries_not_in_dataset(self, name, factory):
        X, _ = make_blobs_on_sphere(20, 2, 10, spread=0.2, seed=3)
        Q, _ = make_blobs_on_sphere(15, 2, 10, spread=0.3, seed=8)
        index = factory().build(X)
        assert_batch_matches_scalar(index, Q, EPS)


class TestSingleLeafKMeansTree:
    def test_whole_dataset_in_one_leaf(self):
        # n <= max(leaf_size, branching) makes the root itself the leaf.
        X, _ = make_blobs_on_sphere(6, 2, 8, spread=0.2, seed=1)  # 12 points
        index = KMeansTree(leaf_size=32, seed=0).build(X)
        assert index.n_leaves == 1
        assert_batch_matches_scalar(index, X, EPS)

    def test_single_leaf_is_exact_even_at_low_checks(self):
        X, _ = make_blobs_on_sphere(6, 2, 8, spread=0.2, seed=1)
        index = KMeansTree(leaf_size=32, checks_ratio=0.01, seed=0).build(X)
        assert index.n_leaves == 1
        brute = BruteForceIndex().build(X)
        for got, exp in zip(
            index.batch_range_query(X, EPS), brute.batch_range_query(X, EPS)
        ):
            assert np.array_equal(got, np.sort(exp))


class TestGridEdgeCases:
    """The grid fixes eps at build; its batch API mirrors the scalar one."""

    def test_eps_zero_rejected_at_construction(self):
        with pytest.raises(InvalidParameterError):
            GridIndex(0.0)

    def test_duplicate_points(self):
        X = one_hot_duplicates(40, 8)
        grid = GridIndex(0.5, rho=1.0).build(X)
        rows = grid.batch_range_query(X)
        for i, row in enumerate(rows):
            assert np.array_equal(row, grid.exact_range_query(X[i])), i

    def test_batch_larger_than_dataset(self):
        X, _ = make_blobs_on_sphere(8, 2, 8, spread=0.2, seed=7)
        grid = GridIndex(EPS).build(X)
        Q = np.vstack([X, X, X])
        rows = grid.batch_range_query(Q)
        for i, row in enumerate(rows):
            assert np.array_equal(row, grid.exact_range_query(Q[i])), i

    def test_single_point(self):
        X = normalize_rows(np.ones((1, 6)))
        grid = GridIndex(EPS).build(X)
        (row,) = grid.batch_range_query(X)
        assert np.array_equal(row, [0])


class TestTraversalKernels:
    """The shared CSR/distance/grouping kernels both trees are built on."""

    def test_expand_csr_gathers_every_slice(self):
        offsets = np.array([0, 2, 2, 5], dtype=np.int64)
        flat = np.array([10, 11, 20, 21, 22], dtype=np.int64)
        counts, values = expand_csr(offsets, flat, np.array([2, 0, 1, 2]))
        assert np.array_equal(counts, [3, 2, 0, 3])
        assert np.array_equal(values, [20, 21, 22, 10, 11, 20, 21, 22])

    def test_expand_csr_empty_parents(self):
        offsets = np.array([0, 3], dtype=np.int64)
        flat = np.array([1, 2, 3], dtype=np.int64)
        counts, values = expand_csr(offsets, flat, np.empty(0, dtype=np.int64))
        assert counts.size == 0 and values.size == 0

    def test_group_hit_pairs_sorts_within_rows(self):
        hit_q = np.array([1, 0, 1, 1, 3], dtype=np.int64)
        hit_p = np.array([7, 2, 3, 5, 0], dtype=np.int64)
        rows = group_hit_pairs(hit_q, hit_p, n_points=8, n_queries=4)
        assert [r.tolist() for r in rows] == [[2], [3, 5, 7], [], [0]]

    def test_group_hit_pairs_empty(self):
        empty = np.empty(0, dtype=np.int64)
        rows = group_hit_pairs(empty, empty, n_points=5, n_queries=3)
        assert [r.tolist() for r in rows] == [[], [], []]

    @pytest.mark.parametrize("squared", [False, True])
    def test_grouped_pair_distances_dense_and_pairwise_agree(self, squared):
        rng = np.random.default_rng(0)
        Q = rng.normal(size=(30, 6))
        C = rng.normal(size=(12, 6))
        counts = rng.integers(0, 30, size=12)
        q_flat = np.concatenate(
            [rng.choice(30, size=c, replace=False) for c in counts]
        ).astype(np.int64)
        offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        dense = grouped_pair_distances(
            Q, q_flat, offsets, C, dense_work_factor=1e9, squared=squared
        )
        pairwise = grouped_pair_distances(
            Q, q_flat, offsets, C, dense_work_factor=0.0, squared=squared
        )
        col = np.repeat(np.arange(12), counts)
        sq = np.sum((Q[q_flat] - C[col]) ** 2, axis=1)
        expected = sq if squared else np.sqrt(sq)
        np.testing.assert_allclose(dense, expected, atol=1e-12)
        np.testing.assert_allclose(pairwise, expected, atol=1e-12)

    def test_grouped_pair_distances_empty(self):
        empty = np.empty(0, dtype=np.int64)
        out = grouped_pair_distances(
            np.zeros((4, 3)), empty, np.zeros(1, dtype=np.int64), np.zeros((0, 3))
        )
        assert out.size == 0


class TestScalarFallbackBudget:
    """The approx k-means search truncates by budget; batch must match."""

    def test_over_budget_queries_fall_back_to_scalar(self):
        # Tiny checks_ratio with a dataset dense enough that every query
        # reaches more leaves than the budget allows.
        X, _ = make_blobs_on_sphere(40, 2, 6, spread=0.4, seed=6)
        index = KMeansTree(checks_ratio=0.05, leaf_size=4, branching=3, seed=0).build(X)
        assert_batch_matches_scalar(index, X, 1.2)

    def test_engine_style_batches_match(self):
        X, _ = make_blobs_on_sphere(30, 3, 10, spread=0.25, seed=2)
        index = KMeansTree(checks_ratio=0.4, leaf_size=4, seed=0).build(X)
        got = index.batch_range_query(X[10:50], 0.8)
        exp = NeighborIndex.batch_range_query(index, X[10:50], 0.8)
        for g, e in zip(got, exp):
            assert np.array_equal(g, e)
