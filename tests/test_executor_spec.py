"""Tests for the :class:`ExecutorSpec` registry value type.

The spec replaces the former magic executor strings: a registered name
plus validated, canonicalized, JSON-safe options. Contracts:

* coercion accepts a spec, a bare name (the back-compat path), or a
  wire dict — and nothing else;
* unknown names raise listing the registered executors;
* option-free specs serialize as their bare name (old wire format stays
  byte-identical), optioned specs as a strict ``{"name", "options"}``
  dict that round-trips;
* per-executor option validation runs at construction: a spec that
  exists is a spec that can run.
"""

from __future__ import annotations

import json

import pytest

from repro.engine_config import ExecutionConfig
from repro.exceptions import InvalidParameterError
from repro.index.sharded import (
    EXECUTOR_NAMES,
    ExecutorSpec,
    ShardingConfig,
    registered_executors,
)


class TestRegistry:
    def test_builtin_executors_are_registered(self):
        names = registered_executors()
        assert set(EXECUTOR_NAMES) <= set(names)
        assert "remote" in names

    def test_registered_executors_is_sorted(self):
        names = registered_executors()
        assert list(names) == sorted(names)

    def test_register_needs_exactly_one_factory_kind(self):
        from repro.index.sharded import register_executor

        with pytest.raises(InvalidParameterError, match="exactly one"):
            register_executor("broken")
        with pytest.raises(InvalidParameterError, match="exactly one"):
            register_executor(
                "broken", make_local=lambda i, n: None, make=lambda *a: None
            )
        assert "broken" not in registered_executors()


class TestCoercion:
    def test_string_coerces_to_option_free_spec(self):
        spec = ExecutorSpec.coerce("thread")
        assert spec == ExecutorSpec("thread")
        assert spec.options == {}

    def test_spec_passes_through_unchanged(self):
        spec = ExecutorSpec("serial")
        assert ExecutorSpec.coerce(spec) is spec

    def test_wire_dict_coerces(self):
        spec = ExecutorSpec.coerce(
            {"name": "remote", "options": {"addresses": ["h:1"]}}
        )
        assert spec.name == "remote"
        assert spec.options["addresses"] == ("h:1",)

    def test_unknown_name_lists_registered_executors(self):
        with pytest.raises(InvalidParameterError, match="registered executors"):
            ExecutorSpec("gpu")
        with pytest.raises(InvalidParameterError, match="serial"):
            ExecutorSpec.coerce("gpu")

    def test_garbage_input_raises(self):
        with pytest.raises(InvalidParameterError, match="ExecutorSpec"):
            ExecutorSpec.coerce(42)

    def test_single_box_executors_reject_options(self):
        for name in EXECUTOR_NAMES:
            with pytest.raises(InvalidParameterError):
                ExecutorSpec(name, {"addresses": ["h:1"]})


class TestRemoteOptions:
    def test_addresses_are_required(self):
        with pytest.raises(InvalidParameterError, match="address"):
            ExecutorSpec("remote")
        with pytest.raises(InvalidParameterError, match="address"):
            ExecutorSpec("remote", {"addresses": []})

    def test_addresses_normalize_to_tuple(self):
        spec = ExecutorSpec("remote", {"addresses": ["a:1", "b:2"]})
        assert spec.options["addresses"] == ("a:1", "b:2")

    def test_malformed_address_raises(self):
        with pytest.raises(InvalidParameterError):
            ExecutorSpec("remote", {"addresses": ["no-port"]})

    def test_unknown_option_raises(self):
        with pytest.raises(InvalidParameterError):
            ExecutorSpec("remote", {"addresses": ["h:1"], "compression": "zstd"})

    def test_numeric_options_are_validated(self):
        with pytest.raises(InvalidParameterError):
            ExecutorSpec("remote", {"addresses": ["h:1"], "timeout_s": 0})
        with pytest.raises(InvalidParameterError):
            ExecutorSpec("remote", {"addresses": ["h:1"], "retries": -1})
        spec = ExecutorSpec(
            "remote", {"addresses": ["h:1"], "timeout_s": 5.0, "retries": 0}
        )
        assert spec.options["timeout_s"] == 5.0
        assert spec.options["retries"] == 0


class TestWireFormat:
    def test_option_free_wire_value_is_the_bare_name(self):
        # The pre-spec wire format wrote bare strings; option-free specs
        # must keep old artifacts and configs byte-identical.
        assert ExecutorSpec("process").wire_value() == "process"

    def test_optioned_wire_value_is_the_strict_dict(self):
        spec = ExecutorSpec("remote", {"addresses": ["h:1"]})
        wire = spec.wire_value()
        assert wire == {"name": "remote", "options": {"addresses": ["h:1"]}}
        json.dumps(wire)  # JSON-safe all the way down

    def test_round_trip_through_coerce(self):
        for spec in (
            ExecutorSpec("serial"),
            ExecutorSpec("remote", {"addresses": ["a:1", "b:2"], "retries": 1}),
        ):
            assert ExecutorSpec.coerce(spec.wire_value()) == spec

    def test_from_dict_is_strict(self):
        with pytest.raises(InvalidParameterError):
            ExecutorSpec.from_dict({"options": {}})  # name missing
        with pytest.raises(InvalidParameterError):
            ExecutorSpec.from_dict({"name": "serial", "extra": 1})

    def test_specs_are_hashable_value_objects(self):
        a = ExecutorSpec("remote", {"addresses": ["h:1"], "retries": 1})
        b = ExecutorSpec("remote", {"retries": 1, "addresses": ("h:1",)})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestConfigIntegration:
    def test_sharding_config_coerces_strings(self):
        cfg = ShardingConfig(n_shards=2, executor="thread")
        assert cfg.executor == ExecutorSpec("thread")

    def test_sharding_config_accepts_specs(self):
        spec = ExecutorSpec("remote", {"addresses": ["h:1"]})
        assert ShardingConfig(n_shards=2, executor=spec).executor is spec

    def test_execution_config_wire_round_trips_remote_spec(self):
        spec = ExecutorSpec("remote", {"addresses": ["a:1", "b:2"]})
        cfg = ExecutionConfig(sharding=ShardingConfig(n_shards=3, executor=spec))
        data = cfg.to_dict()
        json.dumps(data)
        restored = ExecutionConfig.from_dict(data)
        assert restored.sharding.executor == spec
        assert restored.sharding.n_shards == 3

    def test_execution_config_wire_keeps_bare_names(self):
        cfg = ExecutionConfig(sharding=ShardingConfig(n_shards=3, executor="process"))
        assert cfg.to_dict()["sharding"]["executor"] == "process"
