"""Tests for MI / NMI / EMI / AMI.

Reference values hand-computed from Vinh et al. (2010) and cross-checked
against sklearn's mutual_info_score / adjusted_mutual_info_score
(arithmetic averaging) on a machine where sklearn was available.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import InvalidParameterError
from repro.metrics import (
    adjusted_mutual_info,
    contingency_matrix,
    entropy,
    expected_mutual_information,
    mutual_information,
    normalized_mutual_info,
)

labelings = hnp.arrays(
    dtype=np.int64, shape=st.integers(2, 30), elements=st.integers(-1, 4)
)


class TestEntropy:
    def test_uniform_two_classes(self):
        assert entropy(np.array([0, 1])) == pytest.approx(np.log(2))

    def test_single_class_zero(self):
        assert entropy(np.zeros(5, dtype=int)) == 0.0

    def test_empty_is_zero(self):
        assert entropy(np.array([], dtype=int)) == 0.0

    def test_known_value(self):
        # p = (0.25, 0.75)
        labels = np.array([0, 1, 1, 1])
        expected = -(0.25 * np.log(0.25) + 0.75 * np.log(0.75))
        assert entropy(labels) == pytest.approx(expected)

    def test_permutation_invariant(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, 50)
        assert entropy(labels) == pytest.approx(entropy(labels[::-1]))


class TestMutualInformation:
    def test_identical_equals_entropy(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert mutual_information(labels, labels) == pytest.approx(entropy(labels))

    def test_independent_blocks_zero(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert mutual_information(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        # Hand-computed: MI([0,0,1,1],[0,0,1,2]) = ln 2 (three cells, each
        # contributing a multiple of ln 2).
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 0, 1, 2])
        assert mutual_information(a, b) == pytest.approx(np.log(2), abs=1e-12)

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(0, 3, 30)
            b = rng.integers(0, 3, 30)
            assert mutual_information(a, b) >= 0.0

    def test_bounded_by_min_entropy(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 3, 40)
        b = rng.integers(0, 5, 40)
        assert mutual_information(a, b) <= min(entropy(a), entropy(b)) + 1e-9


class TestExpectedMutualInformation:
    def test_trivial_table(self):
        table = contingency_matrix(np.zeros(4, dtype=int), np.zeros(4, dtype=int))
        assert expected_mutual_information(table) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        # Hand-computed via the hypergeometric model:
        # 2 * (ln2/2) * 1/6 + 4 * (ln2/4) * 1/2 = (2/3) ln 2 = 0.4620981...
        table = contingency_matrix(np.array([0, 0, 1, 1]), np.array([0, 0, 1, 2]))
        assert expected_mutual_information(table) == pytest.approx(
            (2 / 3) * np.log(2), abs=1e-12
        )

    def test_matches_exact_permutation_enumeration(self):
        # EMI is the mean MI over all permutations of one labeling with
        # fixed marginals; for n <= 6 we can enumerate exactly.
        import itertools

        a = np.array([0, 0, 1, 1, 2])
        b = np.array([0, 1, 1, 2, 2])
        table = contingency_matrix(a, b)
        enumerated = np.mean(
            [
                mutual_information(a, np.array(perm))
                for perm in itertools.permutations(b.tolist())
            ]
        )
        assert expected_mutual_information(table) == pytest.approx(
            float(enumerated), abs=1e-10
        )

    def test_empty_table(self):
        assert expected_mutual_information(np.zeros((2, 2), dtype=int)) == 0.0

    def test_emi_below_max_entropy(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 4, 60)
        b = rng.integers(0, 4, 60)
        table = contingency_matrix(a, b)
        assert expected_mutual_information(table) <= max(entropy(a), entropy(b)) + 1e-9


class TestNormalizedMutualInfo:
    def test_identical(self):
        labels = np.array([0, 0, 1, 2, 2])
        assert normalized_mutual_info(labels, labels) == pytest.approx(1.0)

    def test_independent_zero(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert normalized_mutual_info(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        # Hand-computed: MI = ln2, H(a) = ln2, H(b) = (3/2) ln 2, so
        # NMI_arith = ln2 / ((ln2 + 1.5 ln2)/2) = 0.8 exactly.
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 0, 1, 2])
        assert normalized_mutual_info(a, b) == pytest.approx(0.8, abs=1e-12)

    def test_average_methods_ordering(self):
        a = np.array([0, 0, 1, 1, 2])
        b = np.array([0, 0, 1, 1, 1])
        values = {
            m: normalized_mutual_info(a, b, average_method=m)
            for m in ("min", "geometric", "arithmetic", "max")
        }
        assert values["min"] >= values["geometric"] >= values["arithmetic"] >= values["max"]

    def test_invalid_average_method(self):
        with pytest.raises(InvalidParameterError):
            normalized_mutual_info(np.array([0, 1]), np.array([0, 1]), average_method="median")


class TestAdjustedMutualInfo:
    def test_identical(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_mutual_info(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([1, 1, 2, 2, 0, 0])
        assert adjusted_mutual_info(a, b) == pytest.approx(1.0)

    def test_known_value(self):
        # Hand-computed: (MI - EMI)/(meanH - EMI)
        # = (ln2 - (2/3)ln2) / ((5/4)ln2 - (2/3)ln2) = (1/3)/(7/12) = 4/7.
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 0, 1, 2])
        assert adjusted_mutual_info(a, b) == pytest.approx(4 / 7, abs=1e-12)

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 4, 50)
        b = rng.integers(0, 3, 50)
        assert adjusted_mutual_info(a, b) == pytest.approx(
            adjusted_mutual_info(b, a), abs=1e-9
        )

    def test_independent_near_zero(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 5, 2000)
        b = rng.integers(0, 5, 2000)
        assert abs(adjusted_mutual_info(a, b)) < 0.02

    def test_degenerate_both_trivial(self):
        assert (
            adjusted_mutual_info(np.zeros(6, dtype=int), np.zeros(6, dtype=int)) == 1.0
        )
        assert adjusted_mutual_info(np.arange(6), np.arange(6)) == 1.0

    def test_one_trivial_one_not(self):
        a = np.zeros(6, dtype=int)
        b = np.array([0, 0, 0, 1, 1, 1])
        assert adjusted_mutual_info(a, b) == pytest.approx(0.0, abs=1e-9)

    @given(labelings)
    @settings(max_examples=30, deadline=None)
    def test_self_agreement(self, labels):
        assert adjusted_mutual_info(labels, labels) == pytest.approx(1.0, abs=1e-9)

    @given(labelings, labelings)
    @settings(max_examples=30, deadline=None)
    def test_bounded_above(self, a, b):
        if a.shape != b.shape:
            return
        assert adjusted_mutual_info(a, b) <= 1.0 + 1e-9
