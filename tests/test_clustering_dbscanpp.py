"""Tests for DBSCAN++."""

import numpy as np
import pytest

from repro.clustering import DBSCAN, DBSCANPlusPlus
from repro.exceptions import InvalidParameterError
from repro.metrics import adjusted_rand_index

from repro.testing import make_blobs_on_sphere


class TestParameters:
    def test_invalid_p(self):
        for bad in (0.0, -0.2, 1.5):
            with pytest.raises(InvalidParameterError):
                DBSCANPlusPlus(eps=0.5, tau=3, p=bad)

    def test_invalid_init(self):
        with pytest.raises(InvalidParameterError):
            DBSCANPlusPlus(eps=0.5, tau=3, init="random-walk")


class TestFullSampleEquivalence:
    """With p = 1 the sample is the dataset: core set equals DBSCAN's."""

    def test_core_mask_matches_dbscan(self, clusterable_data):
        eps, tau = 0.5, 5
        full = DBSCANPlusPlus(eps=eps, tau=tau, p=1.0, seed=0).fit(clusterable_data)
        exact = DBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        assert np.array_equal(full.core_mask, exact.core_mask)

    def test_clustering_close_to_dbscan(self, clusterable_data):
        eps, tau = 0.5, 5
        full = DBSCANPlusPlus(eps=eps, tau=tau, p=1.0, seed=0).fit(clusterable_data)
        exact = DBSCAN(eps=eps, tau=tau).fit(clusterable_data)
        # Same core graph; only border tie-breaks may differ.
        assert adjusted_rand_index(exact.labels, full.labels) > 0.95


class TestSampling:
    def test_sample_size_respected(self, clusterable_data):
        result = DBSCANPlusPlus(eps=0.5, tau=5, p=0.25, seed=0).fit(clusterable_data)
        expected = round(0.25 * clusterable_data.shape[0])
        assert result.stats["sample_size"] == expected
        assert result.stats["range_queries"] == expected

    def test_core_points_only_from_sample(self, clusterable_data):
        result = DBSCANPlusPlus(eps=0.5, tau=5, p=0.2, seed=1).fit(clusterable_data)
        assert result.stats["n_core"] <= result.stats["sample_size"]

    def test_seed_controls_sampling(self, clusterable_data):
        a = DBSCANPlusPlus(eps=0.5, tau=5, p=0.3, seed=1).fit(clusterable_data)
        b = DBSCANPlusPlus(eps=0.5, tau=5, p=0.3, seed=1).fit(clusterable_data)
        c = DBSCANPlusPlus(eps=0.5, tau=5, p=0.3, seed=2).fit(clusterable_data)
        assert np.array_equal(a.labels, b.labels)
        assert a.stats == b.stats
        # Different seed gives a different sample (may rarely coincide).
        assert not np.array_equal(a.labels, c.labels) or a.stats != c.stats

    def test_k_center_init_spreads_samples(self):
        X, _ = make_blobs_on_sphere(50, 3, 16, spread=0.1, seed=0)
        result = DBSCANPlusPlus(eps=0.5, tau=4, p=0.1, init="k-center", seed=0).fit(X)
        # Farthest-first traversal hits every blob: all clusters found.
        assert result.n_clusters == 3


class TestQualityOnBlobs:
    def test_recovers_blobs_with_moderate_sample(self, blob_data):
        X, y = blob_data
        result = DBSCANPlusPlus(eps=0.5, tau=4, p=0.4, seed=3).fit(X)
        assert adjusted_rand_index(y, result.labels) > 0.9

    def test_assign_within_eps_false_absorbs_everything(self, clusterable_data):
        strict = DBSCANPlusPlus(
            eps=0.5, tau=5, p=0.5, assign_within_eps=True, seed=0
        ).fit(clusterable_data)
        absorb = DBSCANPlusPlus(
            eps=0.5, tau=5, p=0.5, assign_within_eps=False, seed=0
        ).fit(clusterable_data)
        if strict.stats["n_core"] > 0:
            assert absorb.noise_ratio == 0.0
            assert absorb.noise_ratio <= strict.noise_ratio

    def test_no_core_points_all_noise(self, unit_vectors_small):
        result = DBSCANPlusPlus(eps=0.01, tau=5, p=0.5, seed=0).fit(unit_vectors_small)
        assert result.noise_ratio == 1.0
        assert result.n_clusters == 0
