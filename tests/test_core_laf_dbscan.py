"""Tests for Algorithm 1 (LAF-DBSCAN), including the lossless invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import DBSCAN
from repro.core import LAFDBSCAN
from repro.distances import normalize_rows
from repro.estimators import (
    ExactCardinalityEstimator,
    SamplingCardinalityEstimator,
)
from repro.exceptions import InvalidParameterError
from repro.metrics import adjusted_mutual_info, adjusted_rand_index

from repro.testing import make_blobs_on_sphere


class TestLosslessInvariant:
    """With the exact oracle and alpha = 1, no prediction is ever wrong,
    so Algorithm 1 degenerates to original DBSCAN exactly."""

    def test_identical_to_dbscan_on_blobs(self, blob_data):
        X, _ = blob_data
        for eps, tau in [(0.4, 3), (0.5, 5)]:
            exact = DBSCAN(eps=eps, tau=tau).fit(X)
            laf = LAFDBSCAN(
                eps=eps, tau=tau, estimator=ExactCardinalityEstimator(), alpha=1.0
            ).fit(X)
            assert np.array_equal(exact.labels, laf.labels), (eps, tau)

    def test_identical_on_noisy_data(self, clusterable_data):
        exact = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        laf = LAFDBSCAN(
            eps=0.5, tau=5, estimator=ExactCardinalityEstimator(), alpha=1.0
        ).fit(clusterable_data)
        assert np.array_equal(exact.labels, laf.labels)

    @given(st.integers(0, 200))
    @settings(max_examples=12, deadline=None)
    def test_property_identical_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        X = normalize_rows(rng.normal(size=(45, 8)))
        exact = DBSCAN(eps=0.6, tau=4).fit(X)
        laf = LAFDBSCAN(
            eps=0.6, tau=4, estimator=ExactCardinalityEstimator(), alpha=1.0
        ).fit(X)
        assert np.array_equal(exact.labels, laf.labels)

    def test_oracle_no_false_negatives_detected(self, clusterable_data):
        laf = LAFDBSCAN(
            eps=0.5, tau=5, estimator=ExactCardinalityEstimator(), alpha=1.0
        ).fit(clusterable_data)
        assert laf.stats["fn_detected"] == 0
        assert laf.stats["merges"] == 0

    def test_oracle_skips_stop_point_queries(self, clusterable_data):
        exact = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        laf = LAFDBSCAN(
            eps=0.5, tau=5, estimator=ExactCardinalityEstimator(), alpha=1.0
        ).fit(clusterable_data)
        assert laf.stats["range_queries"] < exact.stats["range_queries"]
        assert (
            laf.stats["range_queries"] + laf.stats["skipped_queries"]
            <= exact.stats["range_queries"]
        )


class TestAlphaSemantics:
    """alpha shifts the speed/quality balance exactly as Section 2.1 says."""

    def test_high_alpha_skips_more(self, clusterable_data):
        est = ExactCardinalityEstimator()
        low = LAFDBSCAN(eps=0.5, tau=5, estimator=est, alpha=1.0).fit(clusterable_data)
        high = LAFDBSCAN(eps=0.5, tau=5, estimator=est, alpha=5.0).fit(clusterable_data)
        assert high.stats["skipped_queries"] >= low.stats["skipped_queries"]
        assert high.stats["range_queries"] <= low.stats["range_queries"]

    def test_tiny_alpha_equals_dbscan_queries(self, clusterable_data):
        # alpha -> 0 predicts everything core: zero skips, plain DBSCAN.
        est = ExactCardinalityEstimator()
        laf = LAFDBSCAN(eps=0.5, tau=5, estimator=est, alpha=1e-9).fit(clusterable_data)
        exact = DBSCAN(eps=0.5, tau=5).fit(clusterable_data)
        assert laf.stats["skipped_queries"] == 0
        assert np.array_equal(laf.labels, exact.labels)

    def test_invalid_alpha(self):
        with pytest.raises(InvalidParameterError):
            LAFDBSCAN(eps=0.5, tau=3, estimator=ExactCardinalityEstimator(), alpha=0.0)


class TestWithImperfectEstimator:
    """A noisy estimator degrades quality gracefully; post-processing
    recovers part of it."""

    @pytest.fixture(scope="class")
    def setup(self):
        X, y = make_blobs_on_sphere(50, 4, 24, spread=0.3, seed=1)
        estimator = SamplingCardinalityEstimator(sample_size=20, seed=0).fit(X)
        gt = DBSCAN(eps=0.5, tau=5).fit(X)
        return X, estimator, gt

    def test_quality_reasonable(self, setup):
        X, estimator, gt = setup
        laf = LAFDBSCAN(eps=0.5, tau=5, estimator=estimator, alpha=1.0, seed=0).fit(X)
        assert adjusted_rand_index(gt.labels, laf.labels) > 0.5

    def test_postprocessing_never_hurts_much(self, setup):
        X, estimator, gt = setup
        with_pp = LAFDBSCAN(eps=0.5, tau=5, estimator=estimator, alpha=1.5, seed=0).fit(
            X
        )
        without_pp = LAFDBSCAN(
            eps=0.5,
            tau=5,
            estimator=estimator,
            alpha=1.5,
            enable_post_processing=False,
            seed=0,
        ).fit(X)
        ami_with = adjusted_mutual_info(gt.labels, with_pp.labels)
        ami_without = adjusted_mutual_info(gt.labels, without_pp.labels)
        assert ami_with >= ami_without - 0.05

    def test_fn_detection_fires_under_aggressive_alpha(self, setup):
        X, estimator, _ = setup
        laf = LAFDBSCAN(eps=0.5, tau=5, estimator=estimator, alpha=3.0, seed=0).fit(X)
        # With alpha = 3 many true cores are predicted stop; their full
        # neighborhoods are discovered by surviving queries.
        assert laf.stats["fn_detected"] > 0

    def test_stats_complete(self, setup):
        X, estimator, _ = setup
        laf = LAFDBSCAN(eps=0.5, tau=5, estimator=estimator, alpha=1.5, seed=0).fit(X)
        expected_keys = {
            "range_queries",
            "skipped_queries",
            "fn_detected",
            "merges",
            "cardest_calls",
            "predicted_stop_points",
            "alpha",
        }
        assert expected_keys <= set(laf.stats)
        assert laf.stats["cardest_calls"] == X.shape[0]

    def test_deterministic_given_seed(self, setup):
        X, estimator, _ = setup
        a = LAFDBSCAN(eps=0.5, tau=5, estimator=estimator, alpha=2.0, seed=3).fit(X)
        b = LAFDBSCAN(eps=0.5, tau=5, estimator=estimator, alpha=2.0, seed=3).fit(X)
        assert np.array_equal(a.labels, b.labels)


class TestDegenerateCases:
    def test_everything_predicted_stop(self, unit_vectors_small):
        # Absurd alpha: all points skipped, everything noise, and the
        # post-processing has no evidence to recover anything.
        laf = LAFDBSCAN(
            eps=0.5,
            tau=5,
            estimator=ExactCardinalityEstimator(),
            alpha=1e9,
        ).fit(unit_vectors_small)
        assert laf.noise_ratio == 1.0
        assert laf.stats["range_queries"] == 0

    def test_single_cluster_world(self):
        X, _ = make_blobs_on_sphere(30, 1, 16, spread=0.05, seed=0)
        laf = LAFDBSCAN(
            eps=0.5, tau=3, estimator=ExactCardinalityEstimator(), alpha=1.0
        ).fit(X)
        assert laf.n_clusters == 1
        assert laf.noise_ratio == 0.0
