"""TCP front door round-trips: the wire must be as invisible as the batch.

Covers the :class:`~repro.serving.frontend.ServingFrontend` /
:class:`~repro.serving.client.ServingClient` pair end to end: labels
over TCP are bit-identical to local ``ClusterModel.predict``, server-side
failures come back as the same typed exceptions a local caller would
see, and shutdown releases every socket and thread (the sanitizer leg
fails the suite otherwise).
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

import repro
from repro.exceptions import (
    DataValidationError,
    DeadlineExceededError,
    InvalidParameterError,
    RemoteProtocolError,
    WorkerUnavailableError,
)
from repro.remote.protocol import recv_msg, send_msg
from repro.serving import ModelServer, ServingClient, ServingFrontend
from repro.serving.frontend import parse_model_specs, serve
from repro.testing import make_blobs_on_sphere

EPS = 0.45
TAU = 4


@pytest.fixture(scope="module")
def corpus():
    """Training blobs plus wider-spread queries drawn on the same centers."""
    X, _ = make_blobs_on_sphere(100, 4, 16, seed=3)
    Q, _ = make_blobs_on_sphere(40, 4, 16, seed=3, spread=0.3)
    return X, Q


@pytest.fixture(scope="module")
def artifacts(corpus, tmp_path_factory):
    X, Q = corpus
    root = tmp_path_factory.mktemp("serving-artifacts")
    paths: dict[str, object] = {}
    expect: dict[str, np.ndarray] = {}
    for name, eps in (("loose", EPS), ("strict", 0.05)):
        with repro.fit_model(X, "dbscan", eps=eps, tau=TAU) as m:
            m.save(root / name)
            expect[name] = m.predict(Q)
        paths[name] = root / name
    assert not np.array_equal(expect["loose"], expect["strict"])
    return paths, expect


@pytest.fixture()
def frontend(artifacts):
    paths, _ = artifacts
    server = ModelServer(max_batch_rows=32, max_wait_ms=1.0)
    server.add_model("m", paths["loose"])
    with ServingFrontend(server) as fe:
        yield fe


class TestRoundTrips:
    def test_ping_reports_role_and_models(self, frontend):
        host, port = frontend.address
        with ServingClient(host, port) as client:
            reply = client.ping()
        assert reply["ok"] is True
        assert reply["role"] == "serving"
        assert reply["models"] == ["m"]

    def test_predict_bit_identical_over_tcp(self, frontend, corpus, artifacts):
        _, Q = corpus
        _, expect = artifacts
        host, port = frontend.address
        with ServingClient(host, port) as client:
            one = client.predict("m", Q[0])
            batch = client.predict("m", Q)
        assert one.dtype == np.int64 and batch.dtype == np.int64
        assert np.array_equal(one, expect["loose"][:1])
        assert np.array_equal(batch, expect["loose"])

    def test_concurrent_clients_bit_identical(self, frontend, corpus, artifacts):
        """Many clients hammering one front door still get exact labels."""
        _, Q = corpus
        _, expect = artifacts
        host, port = frontend.address
        results: list[np.ndarray | Exception] = [None] * 8  # type: ignore[list-item]

        def hammer(i: int) -> None:
            try:
                with ServingClient(host, port) as client:
                    got = [client.predict("m", Q) for _ in range(3)]
                results[i] = got[-1] if all(
                    np.array_equal(g, expect["loose"]) for g in got
                ) else AssertionError(f"client {i} saw a label mismatch")
            except Exception as exc:  # propagated to the main thread below
                results[i] = exc

        threads = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        for got in results:
            if isinstance(got, Exception):
                raise got
            assert np.array_equal(got, expect["loose"])

    def test_stats_op_round_trips(self, frontend, corpus):
        _, Q = corpus
        host, port = frontend.address
        with ServingClient(host, port) as client:
            client.predict("m", Q)
            snap = client.stats()
        assert snap["m"]["counters"]["requests"] >= 1
        assert snap["m"]["counters"]["rows"] >= Q.shape[0]
        assert snap["m"]["e2e_ms"]["count"] >= 1

    def test_reload_op_swaps_model(self, frontend, corpus, artifacts):
        _, Q = corpus
        paths, expect = artifacts
        host, port = frontend.address
        with ServingClient(host, port) as client:
            before = client.predict("m", Q)
            client.reload("m", str(paths["strict"]))
            after = client.predict("m", Q)
        assert np.array_equal(before, expect["loose"])
        assert np.array_equal(after, expect["strict"])


class TestTypedErrors:
    def test_unknown_model_is_invalid_parameter(self, frontend, corpus):
        _, Q = corpus
        host, port = frontend.address
        with ServingClient(host, port) as client:
            with pytest.raises(InvalidParameterError, match="unknown model"):
                client.predict("nope", Q[:2])
            # The connection survives a typed error.
            assert client.ping()["ok"] is True

    def test_validation_error_crosses_the_wire(self, frontend, corpus):
        _, Q = corpus
        host, port = frontend.address
        bad = Q[:3].copy()
        bad[1] *= 7.0  # not unit-norm => cosine validation rejects it
        with ServingClient(host, port) as client:
            with pytest.raises(DataValidationError):
                client.predict("m", bad)
            assert np.array_equal(
                client.predict("m", Q[:3]), client.predict("m", Q[:3])
            )

    def test_deadline_crosses_the_wire(self, artifacts, corpus):
        paths, _ = artifacts
        _, Q = corpus
        # A flush horizon far beyond the deadline makes the miss
        # deterministic: the request times out while still queued.
        server = ModelServer(max_batch_rows=4096, max_wait_ms=500.0)
        server.add_model("m", paths["loose"])
        with ServingFrontend(server) as fe:
            host, port = fe.address
            with ServingClient(host, port) as client:
                with pytest.raises(DeadlineExceededError):
                    client.predict("m", Q, timeout_ms=1.0)

    def test_unknown_op_is_protocol_error(self, frontend):
        host, port = frontend.address
        with socket.create_connection((host, port), timeout=10.0) as conn:
            send_msg(conn, {"op": "make-coffee"})
            reply = recv_msg(conn)
        assert reply is not None
        header, _ = reply
        assert header["error"]["type"] == "RemoteProtocolError"
        with ServingClient(host, port) as client:
            with pytest.raises(RemoteProtocolError, match="unknown serving op"):
                client._call({"op": "make-coffee"})

    def test_predict_without_x_is_protocol_error(self, frontend):
        host, port = frontend.address
        with ServingClient(host, port) as client:
            with pytest.raises(RemoteProtocolError, match="missing the X"):
                client._call({"op": "predict", "model": "m"})

    def test_unreachable_front_door(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with ServingClient("127.0.0.1", free_port, timeout_s=2.0) as client:
            with pytest.raises(WorkerUnavailableError):
                client.ping()


class TestLifecycle:
    def test_shutdown_op_releases_the_front_door(self, artifacts, corpus):
        paths, expect = artifacts
        _, Q = corpus
        server = ModelServer(max_wait_ms=1.0)
        server.add_model("m", paths["loose"])
        fe = ServingFrontend(server)
        host, port = fe.start()
        try:
            with ServingClient(host, port) as client:
                assert np.array_equal(client.predict("m", Q), expect["loose"])
                client.shutdown()
            assert fe.wait(timeout=10.0)
        finally:
            fe.close()
        with ServingClient(host, port, timeout_s=2.0) as client:
            with pytest.raises(WorkerUnavailableError):
                client.ping()

    def test_close_is_idempotent_and_double_start_rejected(self, artifacts):
        paths, _ = artifacts
        server = ModelServer()
        server.add_model("m", paths["loose"])
        fe = ServingFrontend(server)
        fe.start()
        with pytest.raises(InvalidParameterError, match="already started"):
            fe.start()
        fe.close()
        fe.close()

    def test_serve_helper_runs_until_shutdown(self, artifacts, corpus):
        """The ``python -m repro.serving`` body: serve() in a thread."""
        paths, expect = artifacts
        _, Q = corpus
        bound: list[tuple[str, int]] = []
        ready = threading.Event()

        def on_bound(host: str, port: int) -> None:
            bound.append((host, port))
            ready.set()

        runner = threading.Thread(
            target=serve,
            args=({"m": str(paths["loose"])},),
            kwargs={"max_wait_ms": 1.0, "log_interval_s": 0.0, "on_bound": on_bound},
            daemon=True,
        )
        runner.start()
        assert ready.wait(timeout=30.0)
        host, port = bound[0]
        with ServingClient(host, port) as client:
            assert np.array_equal(client.predict("m", Q), expect["loose"])
            client.shutdown()
        runner.join(timeout=30.0)
        assert not runner.is_alive()


class TestCliSurface:
    def test_parse_model_specs(self):
        specs = parse_model_specs(
            ["prod=/tmp/a", "/artifacts/churn-model", "trail=/tmp/c/"]
        )
        assert specs == {
            "prod": "/tmp/a",
            "churn-model": "/artifacts/churn-model",
            "trail": "/tmp/c/",
        }
        with pytest.raises(InvalidParameterError, match="duplicate"):
            parse_model_specs(["m=/tmp/a", "m=/tmp/b"])
        with pytest.raises(InvalidParameterError, match="bad model spec"):
            parse_model_specs(["=/tmp/a"])

    def test_cli_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--model",
                "prod=/tmp/a",
                "--model",
                "/tmp/b",
                "--port",
                "9009",
                "--max-batch-rows",
                "128",
                "--max-wait-ms",
                "5",
                "--timeout-ms",
                "250",
            ]
        )
        assert args.command == "serve"
        assert args.model == ["prod=/tmp/a", "/tmp/b"]
        assert args.port == 9009
        assert args.max_batch_rows == 128
        assert args.max_wait_ms == 5.0
        assert args.timeout_ms == 250.0
