"""Tests for the timed runner and scoring."""

import numpy as np
import pytest

from repro.clustering import DBSCAN
from repro.estimators import ExactCardinalityEstimator
from repro.experiments import MethodContext, ground_truth, run_method, run_suite

from repro.testing import make_blobs_on_sphere


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs_on_sphere(30, 3, 16, spread=0.3, seed=0)
    return X


class TestRunMethod:
    def test_returns_result_and_time(self, data):
        result, elapsed = run_method(DBSCAN(eps=0.5, tau=5), data)
        assert result.labels.shape == (data.shape[0],)
        assert elapsed > 0.0


class TestGroundTruth:
    def test_is_dbscan(self, data):
        gt = ground_truth(data, 0.5, 5)
        direct = DBSCAN(eps=0.5, tau=5).fit(data)
        assert np.array_equal(gt.labels, direct.labels)


class TestRunSuite:
    def test_dbscan_scores_one_against_itself(self, data):
        ctx = MethodContext(eps=0.5, tau=5, estimator=ExactCardinalityEstimator())
        records = run_suite(data, ("DBSCAN",), ctx, dataset_name="blobs")
        assert len(records) == 1
        assert records[0].ari == pytest.approx(1.0)
        assert records[0].ami == pytest.approx(1.0)

    def test_all_methods_recorded(self, data):
        ctx = MethodContext(
            eps=0.5, tau=5, alpha=1.0, estimator=ExactCardinalityEstimator()
        )
        names = ("DBSCAN", "LAF-DBSCAN", "DBSCAN++")
        records = run_suite(data, names, ctx, dataset_name="blobs")
        assert {r.method for r in records} == set(names)
        for r in records:
            assert r.dataset == "blobs"
            assert r.eps == 0.5
            assert r.tau == 5
            assert r.elapsed_seconds > 0
            assert -1.0 <= r.ari <= 1.0

    def test_laf_with_oracle_scores_one(self, data):
        ctx = MethodContext(
            eps=0.5, tau=5, alpha=1.0, estimator=ExactCardinalityEstimator()
        )
        records = run_suite(data, ("DBSCAN", "LAF-DBSCAN"), ctx)
        laf = next(r for r in records if r.method == "LAF-DBSCAN")
        assert laf.ari == pytest.approx(1.0)

    def test_supplied_gt_labels_used(self, data):
        ctx = MethodContext(eps=0.5, tau=5, estimator=ExactCardinalityEstimator())
        fake_gt = np.zeros(data.shape[0], dtype=np.int64)
        records = run_suite(data, ("LAF-DBSCAN",), ctx, gt_labels=fake_gt)
        # Scored against the fake ground truth, not real DBSCAN output.
        gt = ground_truth(data, 0.5, 5)
        if gt.n_clusters > 1:
            assert records[0].ari != pytest.approx(1.0)

    def test_as_row_shape(self, data):
        ctx = MethodContext(eps=0.5, tau=5, estimator=ExactCardinalityEstimator())
        record = run_suite(data, ("DBSCAN",), ctx)[0]
        row = record.as_row()
        assert {"method", "dataset", "eps", "tau", "time_s", "ARI", "AMI"} <= set(row)

    def test_index_override_never_leaks_into_ground_truth(self, data):
        # An approximate backend override must not become the reference
        # labels the suite is scored against: DBSCAN self-scores against
        # an exact recomputation, not its own approximate run.
        from repro import ExecutionConfig, IndexSpec
        from repro.experiments import build_method

        ctx = MethodContext(eps=0.5, tau=5)
        execution = ExecutionConfig(
            index=IndexSpec("kmeans_tree", {"checks_ratio": 0.05, "seed": 0})
        )
        records = run_suite(data, ("DBSCAN",), ctx, execution=execution)
        exact = ground_truth(data, 0.5, 5)
        approx = build_method(
            "DBSCAN", MethodContext(eps=0.5, tau=5, execution=execution), data
        ).fit(data)
        from repro.metrics import adjusted_rand_index

        expected_ari = adjusted_rand_index(exact.labels, approx.labels)
        assert records[0].ari == pytest.approx(expected_ari)

    def test_sharded_suite_matches_unsharded(self, data):
        from repro.index import ShardingConfig, sharding_config

        ctx = MethodContext(eps=0.5, tau=5, estimator=ExactCardinalityEstimator())
        baseline = run_suite(data, ("DBSCAN",), ctx)[0]
        sharded = run_suite(
            data, ("DBSCAN",), ctx, sharding=ShardingConfig(n_shards=3)
        )[0]
        assert sharded.n_clusters == baseline.n_clusters
        assert sharded.noise_ratio == baseline.noise_ratio
        assert sharded.ari == pytest.approx(baseline.ari)
        # Scoped to the suite, not left installed process-wide.
        assert sharding_config() is None
        # Build-once accounting surfaces in both stats and the flat row.
        assert sharded.stats["shard_inner_builds"] == 3
        assert sharded.stats["shard_live_shards"] == 3
        row = sharded.as_row()
        assert row["shard_inner_builds"] == 3
        assert "shard_inner_builds" not in baseline.as_row()
