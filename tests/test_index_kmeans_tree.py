"""Tests for the FLANN-style k-means tree."""

import numpy as np
import pytest

from repro.distances import normalize_rows
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.index import BruteForceIndex, KMeansTree

from repro.testing import make_blobs_on_sphere


def random_unit(n, dim, seed):
    rng = np.random.default_rng(seed)
    return normalize_rows(rng.normal(size=(n, dim)))


@pytest.fixture(scope="module")
def data():
    return random_unit(200, 12, seed=3)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            KMeansTree(branching=1)
        with pytest.raises(InvalidParameterError):
            KMeansTree(checks_ratio=0.0)
        with pytest.raises(InvalidParameterError):
            KMeansTree(checks_ratio=1.5)
        with pytest.raises(InvalidParameterError):
            KMeansTree(leaf_size=0)

    def test_builds_leaves(self, data):
        tree = KMeansTree(branching=4, leaf_size=16, seed=0).build(data)
        assert tree.n_leaves >= data.shape[0] // 16

    def test_unbuilt_raises(self):
        with pytest.raises(NotFittedError):
            KMeansTree().knn_query(np.zeros(4), 3)

    def test_duplicate_points_fall_back_to_leaf(self):
        X = normalize_rows(np.ones((40, 5)))
        tree = KMeansTree(branching=4, leaf_size=4, seed=0).build(X)
        idx, dists = tree.knn_query(X[0], k=3)
        assert idx.size == 3
        assert np.allclose(dists, 0.0, atol=1e-9)

    def test_deterministic_given_seed(self, data):
        t1 = KMeansTree(seed=5).build(data)
        t2 = KMeansTree(seed=5).build(data)
        i1, d1 = t1.knn_query(data[0], 7)
        i2, d2 = t2.knn_query(data[0], 7)
        assert np.array_equal(i1, i2)


class TestExactModes:
    """checks_ratio = 1.0 visits every leaf -> exact results."""

    def test_knn_exact_at_full_checks(self, data):
        tree = KMeansTree(branching=4, checks_ratio=1.0, leaf_size=8, seed=1).build(
            data
        )
        brute = BruteForceIndex().build(data)
        for qi in (0, 50, 150):
            t_idx, t_d = tree.knn_query(data[qi], k=8)
            b_idx, b_d = brute.knn_query(data[qi], k=8)
            assert np.allclose(np.sort(t_d), np.sort(b_d), atol=1e-9)

    def test_range_exact_at_full_checks(self, data):
        tree = KMeansTree(branching=4, checks_ratio=1.0, leaf_size=8, seed=1).build(
            data
        )
        brute = BruteForceIndex().build(data)
        for eps in (0.3, 0.7, 1.2):
            got = set(tree.range_query(data[17], eps).tolist())
            expected = set(brute.range_query(data[17], eps).tolist())
            assert got == expected


class TestApproximateModes:
    def test_low_checks_returns_k_results(self, data):
        tree = KMeansTree(branching=4, checks_ratio=0.05, leaf_size=8, seed=2).build(
            data
        )
        idx, dists = tree.knn_query(data[0], k=5)
        assert idx.size == 5
        assert np.all(np.diff(dists) >= -1e-12)

    def test_recall_improves_with_checks(self):
        X, _ = make_blobs_on_sphere(60, 4, 16, spread=0.3, seed=8)
        brute = BruteForceIndex().build(X)
        recalls = []
        for ratio in (0.05, 1.0):
            tree = KMeansTree(
                branching=5, checks_ratio=ratio, leaf_size=8, seed=3
            ).build(X)
            hits = 0
            for qi in range(0, X.shape[0], 5):
                b_idx, _ = brute.knn_query(X[qi], k=10)
                t_idx, _ = tree.knn_query(X[qi], k=10)
                hits += len(set(b_idx.tolist()) & set(t_idx.tolist()))
            recalls.append(hits)
        assert recalls[1] >= recalls[0]

    def test_nearest_self_found_even_with_low_checks(self, data):
        # Greedy descent always reaches the leaf containing the query
        # region, so the query point itself is essentially always found.
        tree = KMeansTree(branching=4, checks_ratio=0.02, leaf_size=8, seed=4).build(
            data
        )
        idx, dists = tree.knn_query(data[42], k=1)
        assert dists[0] == pytest.approx(0.0, abs=1e-9)

    def test_range_query_subset_of_exact(self, data):
        tree = KMeansTree(branching=4, checks_ratio=0.1, leaf_size=8, seed=5).build(
            data
        )
        brute = BruteForceIndex().build(data)
        got = set(tree.range_query(data[3], 0.8).tolist())
        expected = set(brute.range_query(data[3], 0.8).tolist())
        assert got <= expected  # approximate may miss, never invents

    def test_invalid_k(self, data):
        tree = KMeansTree(seed=0).build(data)
        with pytest.raises(InvalidParameterError):
            tree.knn_query(data[0], k=-1)


class TestVectorizedExactBatch:
    """The GEMM fast path for exact-mode batch KNN.

    Contract (the brute-force batch precedent): neighbor index rows are
    exactly the scalar path's rows; distances match the scalar kernel
    within BLAS summation-order ulps (atol=1e-12).
    """

    @pytest.fixture(scope="class")
    def exact_tree(self, data):
        return KMeansTree(
            branching=4, checks_ratio=1.0, leaf_size=8, seed=1
        ).build(data)

    @pytest.mark.parametrize("k", [1, 5, 17])
    def test_batch_rows_match_scalar(self, exact_tree, data, k):
        idx_rows, dist_rows = exact_tree.batch_knn_query(data[:40], k=k)
        assert len(idx_rows) == len(dist_rows) == 40
        for i in range(40):
            exp_idx, exp_dist = exact_tree.knn_query(data[i], k)
            assert np.array_equal(idx_rows[i], exp_idx), i
            np.testing.assert_allclose(dist_rows[i], exp_dist, atol=1e-12)

    def test_blocked_gemm_spans_block_boundaries(self, data):
        # Force tiny GEMM blocks by querying more rows than one ~32 MB
        # block would hold for a huge candidate set is impractical here;
        # instead verify the block loop by querying every row at once
        # (several argpartition rounds over one block) against scalars.
        tree = KMeansTree(
            branching=3, checks_ratio=1.0, leaf_size=4, seed=2
        ).build(data)
        idx_rows, dist_rows = tree.batch_knn_query(data, k=3)
        for i in (0, data.shape[0] // 2, data.shape[0] - 1):
            exp_idx, exp_dist = tree.knn_query(data[i], 3)
            assert np.array_equal(idx_rows[i], exp_idx)
            np.testing.assert_allclose(dist_rows[i], exp_dist, atol=1e-12)

    def test_budget_mode_stays_on_scalar_path(self, data):
        tree = KMeansTree(
            branching=4, checks_ratio=0.1, leaf_size=8, seed=5
        ).build(data)
        idx_rows, dist_rows = tree.batch_knn_query(data[:15], k=4)
        for i in range(15):
            exp_idx, exp_dist = tree.knn_query(data[i], 4)
            assert np.array_equal(idx_rows[i], exp_idx), i
            assert np.array_equal(dist_rows[i], exp_dist), i

    def test_loaded_tree_matches_built_tree(self, exact_tree, data):
        loaded = KMeansTree(
            branching=4, checks_ratio=1.0, leaf_size=8, seed=1
        ).from_arrays(exact_tree.to_arrays())
        got_idx, got_dist = loaded.batch_knn_query(data[:20], k=6)
        exp_idx, exp_dist = exact_tree.batch_knn_query(data[:20], k=6)
        for g, e in zip(got_idx, exp_idx):
            assert np.array_equal(g, e)
        for g, e in zip(got_dist, exp_dist):
            np.testing.assert_allclose(g, e, atol=1e-12)

    def test_k_clamps_and_edge_inputs(self, exact_tree, data):
        idx_rows, _ = exact_tree.batch_knn_query(data[:2], k=10_000)
        assert all(row.size == data.shape[0] for row in idx_rows)
        idx_rows, dist_rows = exact_tree.batch_knn_query(
            np.empty((0, data.shape[1])), k=3
        )
        assert idx_rows == [] and dist_rows == []
        one_idx, one_dist = exact_tree.batch_knn_query(data[7], k=5)
        exp_idx, exp_dist = exact_tree.knn_query(data[7], 5)
        assert len(one_idx) == 1 and np.array_equal(one_idx[0], exp_idx)
        np.testing.assert_allclose(one_dist[0], exp_dist, atol=1e-12)
        with pytest.raises(InvalidParameterError):
            exact_tree.batch_knn_query(data[:3], k=0)
