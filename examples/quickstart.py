"""Quickstart: accelerate DBSCAN with LAF on a passage-embedding workload.

Runs the paper's full protocol at toy scale:

1. generate an MS MARCO-like dataset of 768-d unit vectors;
2. split 8:2, train the RMI cardinality estimator on the 80%;
3. cluster the 20% with original DBSCAN (ground truth) and LAF-DBSCAN;
4. report speed, skipped queries and ARI/AMI quality.

Run:  python examples/quickstart.py
"""

import os
import time

import repro
from repro import RMICardinalityEstimator
from repro.data import load_dataset
from repro.metrics import adjusted_mutual_info, adjusted_rand_index

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.04"))
EPS, TAU = 0.55, 5

# Execution policy is one declarative object threaded into every fit —
# e.g. ExecutionConfig(sharding=ShardingConfig(n_shards=4,
# executor="process")) fans the range queries across worker processes.
# None keeps the default batched brute-force engine.
EXECUTION = None


def main() -> None:
    print(f"Loading MS-50k surrogate at scale {SCALE} ...")
    dataset = load_dataset("MS-50k", scale=SCALE, seed=0)
    train, test = dataset.split()
    print(
        f"  {dataset.n_points} points, dim={dataset.dim}; "
        f"train={train.shape[0]}, test={test.shape[0]}"
    )

    print("Training the RMI cardinality estimator on the training split ...")
    started = time.perf_counter()
    estimator = RMICardinalityEstimator(epochs=40, n_train_queries=400, seed=0)
    estimator.fit(train)
    print(
        f"  trained in {time.perf_counter() - started:.1f}s "
        f"({estimator.n_models} stage networks)"
    )

    print(f"Clustering the test split with eps={EPS}, tau={TAU} ...")
    started = time.perf_counter()
    exact = repro.cluster(test, algo="dbscan", eps=EPS, tau=TAU, execution=EXECUTION)
    t_dbscan = time.perf_counter() - started

    started = time.perf_counter()
    laf = repro.cluster(
        test,
        algo="laf-dbscan",
        eps=EPS,
        tau=TAU,
        estimator=estimator,
        alpha=dataset.spec.alpha,
        seed=0,
        execution=EXECUTION,
    )
    t_laf = time.perf_counter() - started

    print(
        f"  DBSCAN      {t_dbscan:6.3f}s  "
        f"clusters={exact.n_clusters}  noise={exact.noise_ratio:.2f}  "
        f"range_queries={exact.stats['range_queries']}"
    )
    print(
        f"  LAF-DBSCAN  {t_laf:6.3f}s  "
        f"clusters={laf.n_clusters}  noise={laf.noise_ratio:.2f}  "
        f"range_queries={laf.stats['range_queries']} "
        f"(skipped {laf.stats['skipped_queries']})"
    )
    print(
        f"  speedup {t_dbscan / t_laf:.2f}x   "
        f"ARI={adjusted_rand_index(exact.labels, laf.labels):.4f}   "
        f"AMI={adjusted_mutual_info(exact.labels, laf.labels):.4f}"
    )
    print(
        f"  post-processing repaired {laf.stats['merges']} wrongly split "
        f"cluster pairs from {laf.stats['fn_detected']} detected false negatives"
    )


if __name__ == "__main__":
    main()
