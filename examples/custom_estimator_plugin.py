"""Extending LAF: plug a custom cardinality estimator into the framework.

LAF is generic over the estimator — anything implementing the
``CardinalityEstimator`` interface (fit / bind / predict_fraction) can
gate range queries. This example builds a tiny custom estimator (a
k-nearest-pivot interpolator), plugs it into both LAF-DBSCAN and
LAF-DBSCAN++, and compares it against the library's estimators.

Run:  python examples/custom_estimator_plugin.py
"""

import os
import time

import numpy as np

from repro import (
    CardinalityEstimator,
    DBSCAN,
    ExactCardinalityEstimator,
    LAFDBSCAN,
    SamplingCardinalityEstimator,
)
from repro.data import load_dataset
from repro.metrics import adjusted_mutual_info

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.04"))
EPS, TAU = 0.55, 5


class PivotInterpolationEstimator(CardinalityEstimator):
    """Custom estimator: average the exact counts of the k nearest pivots.

    At fit time, sample pivots from the training split and precompute
    their exact neighbor fractions at a radius grid. At query time,
    average the fractions of the query's ``k`` nearest pivots at the
    nearest grid radius — no neural network, one matrix product.
    """

    def __init__(self, n_pivots: int = 64, k: int = 4, seed: int = 0) -> None:
        self.n_pivots = n_pivots
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._pivots: np.ndarray | None = None
        self._radii = np.round(np.arange(0.1, 0.95, 0.1), 2)
        self._fractions: np.ndarray | None = None  # (n_pivots, n_radii)

    def fit(self, X_train: np.ndarray) -> "PivotInterpolationEstimator":
        n = X_train.shape[0]
        idx = self._rng.choice(n, size=min(self.n_pivots, n), replace=False)
        self._pivots = X_train[idx]
        dists = 1.0 - self._pivots @ X_train.T  # (pivots, n)
        self._fractions = np.stack(
            [(dists < r).mean(axis=1) for r in self._radii], axis=1
        )
        return self

    def predict_fraction(self, Q: np.ndarray, eps: float) -> np.ndarray:
        Q = np.atleast_2d(Q)
        radius_idx = int(np.abs(self._radii - eps).argmin())
        pivot_dists = 1.0 - Q @ self._pivots.T
        k = min(self.k, self._pivots.shape[0])
        nearest = np.argpartition(pivot_dists, k - 1, axis=1)[:, :k]
        return self._fractions[nearest, radius_idx].mean(axis=1)


def main() -> None:
    dataset = load_dataset("MS-50k", scale=SCALE, seed=0)
    train, test = dataset.split()
    gt = DBSCAN(eps=EPS, tau=TAU).fit(test)
    print(
        f"Test split {test.shape[0]} x {dataset.dim}; "
        f"DBSCAN: {gt.n_clusters} clusters\n"
    )

    estimators = {
        "custom-pivot-interp": PivotInterpolationEstimator(seed=0).fit(train),
        "sampling": SamplingCardinalityEstimator(sample_size=256, seed=0).fit(train),
        "exact-oracle": ExactCardinalityEstimator().fit(train),
    }
    header = f"{'estimator':22s} {'time':>8s} {'AMI':>7s} {'skipped':>8s} {'repaired':>9s}"
    print(header)
    print("-" * len(header))
    for name, estimator in estimators.items():
        clusterer = LAFDBSCAN(eps=EPS, tau=TAU, estimator=estimator, alpha=1.2, seed=0)
        started = time.perf_counter()
        result = clusterer.fit(test)
        elapsed = time.perf_counter() - started
        print(
            f"{name:22s} {elapsed:7.3f}s "
            f"{adjusted_mutual_info(gt.labels, result.labels):7.3f} "
            f"{result.stats['skipped_queries']:8d} "
            f"{result.stats['merges']:9d}"
        )


if __name__ == "__main__":
    main()
