"""Domain example: deduplicating a passage-embedding corpus.

The paper motivates LAF with data-science workloads over neural
embeddings (e.g. clustering MS MARCO passage embeddings for retrieval
pipelines). This example plays that scenario end to end:

1. build a passage-embedding corpus (hierarchical topic structure);
2. cluster it with every method of the paper's evaluation;
3. use the clustering to pick one representative passage per cluster
   (corpus deduplication / diversification);
4. report each method's time, quality vs DBSCAN, and corpus reduction.

Run:  python examples/passage_embedding_pipeline.py
"""

import os
import time

import numpy as np

import repro
from repro import RMICardinalityEstimator
from repro.data import load_dataset
from repro.experiments import MethodContext, build_method
from repro.experiments.methods import APPROXIMATE_METHODS
from repro.metrics import adjusted_mutual_info, adjusted_rand_index

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.04"))
EPS, TAU = 0.55, 5

# One ExecutionConfig threads through every method below via
# MethodContext — e.g. repro.ExecutionConfig(
#     sharding=repro.ShardingConfig(n_shards=4, executor="process"))
# shards every engine-routed fit. None keeps the defaults.
EXECUTION = None


def representatives(X: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """One medoid-ish representative per cluster: the member closest to
    the cluster's mean direction. Noise passages are all kept."""
    keep = list(np.flatnonzero(labels == -1))
    for cluster in np.unique(labels[labels >= 0]):
        members = np.flatnonzero(labels == cluster)
        center = X[members].mean(axis=0)
        center /= np.linalg.norm(center)
        keep.append(int(members[np.argmax(X[members] @ center)]))
    return np.array(sorted(keep))


def main() -> None:
    dataset = load_dataset("MS-100k", scale=SCALE, seed=1)
    train, test = dataset.split()
    print(
        f"Corpus: {test.shape[0]} passage embeddings ({dataset.dim}-d), "
        f"estimator trained on {train.shape[0]} held-out passages"
    )

    estimator = RMICardinalityEstimator(epochs=40, n_train_queries=400, seed=0)
    estimator.fit(train)

    gt = repro.cluster(test, algo="dbscan", eps=EPS, tau=TAU, execution=EXECUTION)
    print(
        f"\nGround truth (DBSCAN): {gt.n_clusters} topics, "
        f"{gt.noise_ratio:.0%} unique passages\n"
    )

    header = f"{'method':14s} {'time':>8s} {'ARI':>7s} {'AMI':>7s} {'kept':>6s}"
    print(header)
    print("-" * len(header))
    ctx = MethodContext(
        eps=EPS,
        tau=TAU,
        alpha=dataset.spec.alpha,
        estimator=estimator,
        seed=0,
        execution=EXECUTION,
    )
    for name in APPROXIMATE_METHODS:
        clusterer = build_method(name, ctx, test)
        started = time.perf_counter()
        result = clusterer.fit(test)
        elapsed = time.perf_counter() - started
        kept = representatives(test, result.labels)
        print(
            f"{name:14s} {elapsed:7.3f}s "
            f"{adjusted_rand_index(gt.labels, result.labels):7.3f} "
            f"{adjusted_mutual_info(gt.labels, result.labels):7.3f} "
            f"{kept.size:6d}"
        )
    print(f"\nkept = deduplicated corpus size out of {test.shape[0]} passages")


if __name__ == "__main__":
    main()
