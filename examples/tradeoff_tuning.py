"""Tuning LAF's error factor alpha and DBSCAN++'s sample fraction.

Reproduces the paper's parameter methodology interactively:

* sweep LAF-DBSCAN's alpha (Section 3.4) and print the speed-quality
  curve, then apply the paper's selection heuristic (fastest setting
  above a quality bar) via ``select_alpha``;
* derive DBSCAN++'s sample fraction with the paper's automatic rule
  ``p = delta + R_c`` where ``R_c`` is the estimator's predicted core
  ratio (Section 3.1).

Run:  python examples/tradeoff_tuning.py
"""

import os

from repro import RMICardinalityEstimator, predicted_core_ratio, select_alpha
from repro.clustering import DBSCAN
from repro.data import load_dataset
from repro.experiments.tradeoff import sweep_laf_alpha

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.04"))
EPS, TAU = 0.5, 3


def main() -> None:
    dataset = load_dataset("Glove-150k", scale=SCALE, seed=0)
    train, test = dataset.split()
    estimator = RMICardinalityEstimator(epochs=40, n_train_queries=400, seed=0)
    estimator.fit(train)

    gt = DBSCAN(eps=EPS, tau=TAU).fit(test)
    print(
        f"Glove surrogate: {test.shape[0]} x {dataset.dim}; "
        f"DBSCAN finds {gt.n_clusters} clusters, noise {gt.noise_ratio:.0%}"
    )

    print("\nalpha sweep (speed-quality trade-off, Figure 3's LAF curve):")
    print(f"{'alpha':>7s} {'time':>8s} {'ARI':>7s} {'AMI':>7s}")
    points = sweep_laf_alpha(
        test, gt.labels, estimator, EPS, TAU,
        alphas=(1.1, 1.5, 2.0, 3.0, 5.0, 8.0, 15.0),
    )
    for p in points:
        print(f"{p.value:7.1f} {p.elapsed_seconds:7.3f}s {p.ari:7.3f} {p.ami:7.3f}")

    best, _ = select_alpha(
        test, gt.labels, estimator, EPS, TAU,
        alpha_grid=(1.1, 1.5, 2.0, 3.0, 5.0), min_ami=0.6,
    )
    print(f"\nselected alpha (fastest with AMI >= 0.6): {best}")

    r_c = predicted_core_ratio(estimator, test, EPS, TAU)
    print(f"\npredicted core ratio R_c = {r_c:.2f}")
    for delta in (0.1, 0.2, 0.3):
        print(f"  DBSCAN++ sample fraction p = {delta:.1f} + R_c = {delta + r_c:.2f}")


if __name__ == "__main__":
    main()
