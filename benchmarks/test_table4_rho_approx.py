"""Table 4: rho-approximate DBSCAN vs DBSCAN clustering time.

Paper shape to reproduce: even with rho enlarged to 1.0,
rho-approximate DBSCAN is *slower* than plain DBSCAN on every
high-dimensional MS dataset — the grid degenerates (one point per cell)
and candidate-cell discovery devolves into scans, so it "suffers much
from curse of dimensionality and should not be applied in
high-dimensional space".
"""

from conftest import out_path

from repro.experiments.efficiency import rho_vs_dbscan
from repro.experiments.param_select import PAPER_EPS_TAU
from repro.experiments.reporting import format_table, save_json


def test_table4_rho_approx_vs_dbscan(benchmark, ms_workloads):
    datasets = {name: wl.X_test for name, wl in ms_workloads.items()}

    rows = benchmark.pedantic(
        rho_vs_dbscan,
        args=(datasets, PAPER_EPS_TAU),
        kwargs={"rho": 1.0},
        rounds=1,
        iterations=1,
    )

    names = list(datasets)
    table_rows = [[row["(eps,tau)"], *(row[n] for n in names)] for row in rows]
    print()
    print(
        format_table(
            ["(eps,tau)", *names],
            table_rows,
            title="Table 4: rho-approx time / DBSCAN time",
        )
    )

    # The headline reproduction target: slower than DBSCAN everywhere.
    for row in rows:
        for name in names:
            assert row[f"{name}_ratio"] > 1.0, (
                f"rho-approximate DBSCAN should be slower than DBSCAN on "
                f"{name} at {row['(eps,tau)']}; ratio={row[f'{name}_ratio']}"
            )

    save_json(out_path("table4_rho_approx.json"), rows)
