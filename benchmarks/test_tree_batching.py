"""Micro-benchmark: vectorized tree batch traversal vs per-point fallback.

Measures the headline claim of the tree batching work — that the
level-synchronous ``batch_range_query`` on :class:`CoverTree` and
:class:`KMeansTree` beats the correct-but-slow per-point loop the base
class provides (``NeighborIndex.batch_range_query``) — and records the
speedup rows to ``benchmarks/out/tree_batching_{cover_tree,kmeans_tree}.json``,
which the CI regression gate diffs against committed baselines.

The dataset is low-dimensional (d = 16) blobs plus noise: metric trees
are the regime where pruning actually bites, i.e. moderate dimension and
locally clustered data — at the paper's d >= 200 the brute-force GEMM
path wins, which is exactly why the engine keeps both backends behind
one seam. The brute-force batch time is recorded alongside for that
comparison (as ``vs_brute_ratio``, informational).
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import out_path

from repro.distances import normalize_rows
from repro.index import BruteForceIndex, CoverTree, KMeansTree
from repro.index.base import NeighborIndex
from repro.testing import make_blobs_on_sphere, write_benchmark_rows

EPS = 0.25
DIM = 16
REPEATS = 3

TREES = {
    "cover_tree": lambda: CoverTree(base=1.4),
    "kmeans_tree": lambda: KMeansTree(checks_ratio=1.0, seed=0),
}


def _dataset(n: int, dim: int = DIM, seed: int = 0) -> np.ndarray:
    """3/4 clustered blobs + 1/4 uniform noise on the sphere."""
    X, _ = make_blobs_on_sphere(n // 8, 6, dim, spread=0.12, seed=seed)
    rng = np.random.default_rng(seed + 1)
    noise = normalize_rows(rng.normal(size=(n - X.shape[0], dim)))
    return np.vstack([X, noise])


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("tree_name", sorted(TREES))
@pytest.mark.parametrize("n", [2000, 8000])
def test_tree_batching_speedup(tree_name, n):
    X = _dataset(n)
    index = TREES[tree_name]().build(X)

    batch_rows = index.batch_range_query(X, EPS)
    scalar_rows = NeighborIndex.batch_range_query(index, X, EPS)
    for got, exp in zip(batch_rows, scalar_rows):
        assert np.array_equal(got, np.sort(exp))

    t_batch = _best_of(lambda: index.batch_range_query(X, EPS))
    # Two scalar repeats: the per-point loop is the gate's denominator,
    # and min-of-2 damps shared-runner noise in the recorded ratio.
    t_scalar = _best_of(
        lambda: NeighborIndex.batch_range_query(index, X, EPS), repeats=2
    )
    speedup = t_scalar / t_batch

    brute = BruteForceIndex().build(X)
    t_brute = _best_of(lambda: brute.batch_range_query(X, EPS))

    rows = [
        {
            "index": tree_name,
            "n": n,
            "dim": DIM,
            "eps": EPS,
            "scalar_query_s": t_scalar,
            "batched_query_s": t_batch,
            "batch_speedup": speedup,
            "brute_force_batch_s": t_brute,
            "vs_brute_ratio": t_brute / t_batch,
        }
    ]
    print()
    print(
        f"{tree_name} n={n}: per-point {t_scalar:.3f}s -> batched "
        f"{t_batch:.3f}s ({speedup:.1f}x); brute-force batch {t_brute:.3f}s"
    )
    write_benchmark_rows(out_path(f"tree_batching_{tree_name}_n{n}.json"), rows)

    # Acceptance criterion: >= 3x at n = 8000 (lenient at the small
    # size, where fixed overheads dominate).
    if n >= 8000:
        assert speedup >= 3.0, f"{tree_name} batched speedup only {speedup:.2f}x"
