"""Table 3: ARI/AMI of the approximate methods on the three largest
datasets at the paper's three (eps, tau) settings.

Paper shape to reproduce: LAF-DBSCAN reaches the best quality in most
cells; LAF-DBSCAN++ trails DBSCAN++ slightly; every method degrades on
the hardest (768-d MS) dataset relative to the easier two.
"""

import pytest
from conftest import out_path

from repro.experiments.param_select import PAPER_EPS_TAU
from repro.experiments.quality import quality_comparison
from repro.experiments.reporting import format_table, pivot, save_json

_RESULTS: dict = {}


@pytest.mark.parametrize("eps,tau", PAPER_EPS_TAU, ids=lambda v: str(v))
def test_table3_quality(benchmark, largest_workloads, eps, tau):
    datasets = {name: wl.X_test for name, wl in largest_workloads.items()}
    estimators = {name: wl.estimator for name, wl in largest_workloads.items()}
    alphas = {name: wl.alpha for name, wl in largest_workloads.items()}

    records = benchmark.pedantic(
        quality_comparison,
        args=(datasets, estimators, alphas, eps, tau),
        rounds=1,
        iterations=1,
    )
    _RESULTS[(eps, tau)] = records

    for metric in ("ARI", "AMI"):
        headers, rows = pivot(records, value=metric)
        print()
        print(format_table(headers, rows, title=f"Table 3 ({metric}) @ eps={eps}, tau={tau}"))

    # Sanity: every approximate method produced a scoreable result.
    assert len(records) == 5 * len(datasets)
    laf_records = [r for r in records if r.method == "LAF-DBSCAN"]
    assert all(r.ami > 0.0 for r in laf_records)

    save_json(
        out_path(f"table3_quality_eps{eps}_tau{tau}.json"),
        [r.as_row() for r in records],
    )
