"""Figure 3: speed-quality trade-off on Glove-150k (eps=0.5, tau=3).

Same sweeps as Figure 2 on the easier 200-d word-embedding surrogate.
Paper shape: the LAF methods keep high AMI across much of the knob
range and dominate the high-quality region of the curve.
"""

from conftest import bench_workload, out_path

from repro.experiments.runner import ground_truth
from repro.experiments.reporting import format_table, save_json
from repro.experiments.tradeoff import (
    sweep_block_dbscan,
    sweep_dbscanpp,
    sweep_knn_block,
    sweep_laf_alpha,
    sweep_laf_dbscanpp,
)

EPS, TAU = 0.5, 3


def _run_all_sweeps(X, gt_labels, estimator):
    points = []
    points += sweep_laf_alpha(
        X, gt_labels, estimator, EPS, TAU, alphas=(1.1, 2.0, 5.0, 10.0, 15.0)
    )
    points += sweep_dbscanpp(X, gt_labels, estimator, EPS, TAU, deltas=(0.1, 0.5, 0.9))
    points += sweep_laf_dbscanpp(
        X, gt_labels, estimator, EPS, TAU, deltas=(0.1, 0.5, 0.9)
    )
    points += sweep_knn_block(
        X, gt_labels, EPS, TAU, branchings=(3, 10, 20), checks=(0.01, 0.1, 0.3)
    )
    points += sweep_block_dbscan(X, gt_labels, EPS, TAU, bases=(1.1, 2.0, 5.0))
    return points


def test_figure3_tradeoff_glove150k(benchmark):
    workload = bench_workload("Glove-150k")
    X = workload.X_test
    gt = ground_truth(X, EPS, TAU)

    points = benchmark.pedantic(
        _run_all_sweeps, args=(X, gt.labels, workload.estimator), rounds=1, iterations=1
    )

    headers = ["method", "knob", "value", "time_s", "ARI", "AMI"]
    rows = [[p.as_row()[h] for h in headers] for p in points]
    print()
    print(format_table(headers, rows, title="Figure 3: trade-off on Glove-150k"))

    # The LAF-DBSCAN curve reaches the high-quality region on Glove.
    laf = [p for p in points if p.method == "LAF-DBSCAN"]
    assert max(p.ami for p in laf) > 0.5

    save_json(out_path("figure3_tradeoff_glove150k.json"), [p.as_row() for p in points])
