"""Benchmark: the warm-pool claim of the remote executor.

The remote worker pool's headline is not raw fan-out speed (on one box
a single big GEMM usually wins — see ``docs/engine.md``); it is that
shard indexes are **built once and held warm** across fits. The first
fit against a fresh pool pays every shard build plus the dataset
upload; the second fit attaches to cached indexes and pays only the
query fan-out. The tracked metric is ``warm_fit_speedup`` (first-fit
seconds over second-fit seconds, same pool, same machine, same run) on
the cover_tree inner backend, whose build does real distance work.

A correctness spot-check runs before timing: remote labels must be
bit-identical to the serial sharded path, and the warm fit must report
``shard_inner_builds == 0``.

Every row records ``usable_cpus`` so the regression gate skips the
ratio on smaller machines than the committed baseline (warm-reuse
ratios are runner-class comparable, not machine-proof). Results land in
``benchmarks/out/remote_pool_n{N}.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import out_path

from repro.clustering import DBSCAN
from repro.engine_config import ExecutionConfig, IndexSpec
from repro.index.sharded import ShardingConfig
from repro.remote.pool import WorkerPool
from repro.testing import make_blobs_on_sphere, write_benchmark_rows

N = int(os.environ.get("REPRO_REMOTE_BENCH_N", "4096"))
DIM = 64
EPS = 0.4
TAU = 4
N_SHARDS = 4
N_WORKERS = 2


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _dataset(n: int) -> np.ndarray:
    X, _ = make_blobs_on_sphere(n // 8, 8, DIM, spread=0.7, seed=0)
    return np.vstack([X] * (n // X.shape[0] + 1))[:n]


def test_remote_warm_fit():
    X = _dataset(N)
    spec = IndexSpec("cover_tree")

    def execution(executor) -> ExecutionConfig:
        return ExecutionConfig(
            index=spec,
            sharding=ShardingConfig(n_shards=N_SHARDS, executor=executor),
        )

    with WorkerPool.spawn_local(N_WORKERS) as pool:
        remote = execution(pool.executor_spec())

        start = time.perf_counter()
        cold = DBSCAN(eps=EPS, tau=TAU, execution=remote).fit(X)
        t_cold = time.perf_counter() - start

        start = time.perf_counter()
        warm = DBSCAN(eps=EPS, tau=TAU, execution=remote).fit(X)
        t_warm = time.perf_counter() - start

        baseline = DBSCAN(eps=EPS, tau=TAU, execution=execution("serial")).fit(X)

    assert np.array_equal(baseline.labels, cold.labels)
    assert np.array_equal(baseline.labels, warm.labels)
    assert cold.stats["shard_inner_builds"] == N_SHARDS
    assert warm.stats["shard_inner_builds"] == 0

    row = {
        "index": "cover_tree",
        "method": "remote_warm_fit",
        "n": N,
        "dim": DIM,
        "eps": EPS,
        "n_shards": N_SHARDS,
        "n_workers": N_WORKERS,
        "cold_fit_s": t_cold,
        "warm_fit_s": t_warm,
        "warm_fit_speedup": t_cold / t_warm,
        "usable_cpus": usable_cpus(),
    }
    print()
    print(
        f"remote pool ({N_WORKERS} workers, {N_SHARDS} shards): cold "
        f"{t_cold:.3f}s, warm {t_warm:.3f}s -> {row['warm_fit_speedup']:.2f}x"
    )
    write_benchmark_rows(out_path(f"remote_pool_n{N}.json"), [row])

    # The warm fit skipped every shard build; it must not be slower than
    # the cold fit beyond timing noise.
    assert row["warm_fit_speedup"] >= 1.0, (
        f"warm fit slower than cold fit ({row['warm_fit_speedup']:.2f}x)"
    )
