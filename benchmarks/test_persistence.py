"""Benchmark: reattaching a saved index vs rebuilding it from points.

The persistence layer's headline claim is that ``load()`` is a
manifest-validation plus ``mmap`` reattach — no distance computations,
no tree construction — so it must beat a fresh ``build()`` by a wide
margin on any backend whose build does real work. The tracked metric is
``load_vs_build_speedup`` (build seconds over load seconds, same
machine, same run), recorded per backend to
``benchmarks/out/persistence_n{N}.json`` for the CI regression gate.

Checksum verification reads every artifact byte, so ``verify=True``
load time scales with artifact size where the mmap reattach itself is
O(metadata); both are recorded (``load_s`` is the verified load — the
default and what users get — ``load_noverify_s`` is informational).

A correctness spot-check runs on every cell before it is timed: the
loaded index must answer a query batch bit-identically to the index
that was saved.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import out_path

from repro.index import BruteForceIndex, CoverTree, KMeansTree
from repro.persistence import load_index, save_index
from repro.testing import make_blobs_on_sphere, write_benchmark_rows

N = int(os.environ.get("REPRO_PERSIST_BENCH_N", "4096"))
DIM = 64
EPS = 0.25
REPEATS = 3

#: backend name -> constructor; the tree builds are the interesting
#: cells (construction does real work), brute force bounds the floor
#: (its "build" is a copy, so the speedup there is mostly checksum cost).
BACKENDS = {
    "brute_force": lambda: BruteForceIndex(),
    "cover_tree": lambda: CoverTree(),
    "kmeans_tree": lambda: KMeansTree(seed=0),
}


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_load_vs_build(tmp_path):
    X, _ = make_blobs_on_sphere(N // 8, 8, DIM, spread=0.7, seed=0)
    X = np.vstack([X] * (N // X.shape[0] + 1))[:N]
    queries = X[:64]

    rows = []
    for name, make in sorted(BACKENDS.items()):
        original = make().build(X)
        expected = original.batch_range_query(queries, EPS)
        path = tmp_path / name
        save_index(original, path)

        loaded = load_index(path)
        got = loaded.batch_range_query(queries, EPS)
        for got_row, exp_row in zip(got, expected):
            assert np.array_equal(got_row, exp_row)

        t_build = _best_of(lambda: make().build(X))
        t_load = _best_of(lambda: load_index(path))
        t_load_noverify = _best_of(lambda: load_index(path, verify=False))

        row = {
            "index": name,
            "method": "load_vs_build",
            "n": N,
            "dim": DIM,
            "eps": EPS,
            "build_s": t_build,
            "load_s": t_load,
            "load_noverify_s": t_load_noverify,
        }
        # Only the tree cells carry the tracked (gated) metric: the
        # brute-force "build" is a microsecond copy, so its ratio is
        # sub-1 timing noise — recorded informationally, never gated.
        key = (
            "load_vs_build_speedup" if name != "brute_force" else "load_vs_build_ratio"
        )
        row[key] = t_build / t_load
        rows.append(row)
        print()
        print(
            f"{name}: build {t_build:.4f}s, load {t_load:.4f}s "
            f"(noverify {t_load_noverify:.4f}s) -> {row[key]:.1f}x"
        )

    write_benchmark_rows(out_path(f"persistence_n{N}.json"), rows)

    # Acceptance criterion: on the tree backends, whose builds do real
    # distance work, a verified load is >= 3x faster than rebuilding.
    for row in rows:
        if row["index"] != "brute_force":
            assert row["load_vs_build_speedup"] >= 3.0, (
                f"{row['index']}: verified load only "
                f"{row['load_vs_build_speedup']:.1f}x faster than build"
            )
