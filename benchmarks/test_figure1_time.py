"""Figure 1 (a-c): clustering time of all methods on the three largest
datasets at the three (eps, tau) settings.

Paper shape to reproduce: LAF-DBSCAN and LAF-DBSCAN++ are the fastest in
most cases; DBSCAN is the slowest of the non-tree methods. Note on the
tree baselines: KNN-BLOCK and BLOCK-DBSCAN run on Python tree indexes
here, whose constant factors are far worse relative to numpy's
BLAS-backed brute force than the paper's all-C++ substrate — their
absolute times are distorted upward (documented in EXPERIMENTS.md);
their quality knobs and trade-off behaviour are still faithful.
"""

import pytest
from conftest import out_path

from repro.experiments.efficiency import speedup_summary, timing_comparison
from repro.experiments.param_select import PAPER_EPS_TAU
from repro.experiments.reporting import format_table, pivot, save_json


@pytest.mark.parametrize("eps,tau", PAPER_EPS_TAU, ids=lambda v: str(v))
def test_figure1_clustering_time(benchmark, largest_workloads, eps, tau):
    datasets = {name: wl.X_test for name, wl in largest_workloads.items()}
    estimators = {name: wl.estimator for name, wl in largest_workloads.items()}
    alphas = {name: wl.alpha for name, wl in largest_workloads.items()}

    records = benchmark.pedantic(
        timing_comparison,
        args=(datasets, estimators, alphas, eps, tau),
        rounds=1,
        iterations=1,
    )

    headers, rows = pivot(records, value="time_s")
    print()
    print(format_table(headers, rows, title=f"Figure 1: time (s) @ eps={eps}, tau={tau}"))
    summary = speedup_summary(records)
    print("speedups:", summary)

    # LAF-DBSCAN must skip a substantial share of range queries.
    for r in records:
        if r.method == "LAF-DBSCAN":
            assert r.stats["skipped_queries"] > 0

    save_json(
        out_path(f"figure1_time_eps{eps}_tau{tau}.json"),
        {"records": [r.as_row() for r in records], "speedups": summary},
    )
