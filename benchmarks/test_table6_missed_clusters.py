"""Table 6: fully-missed-cluster statistics of LAF-DBSCAN.

The paper evaluates the cells where LAF-DBSCAN scored lowest:
(0.5, 3) on NYT-150k, (0.55, 5) on Glove-150k and MS-150k. Paper shape
to reproduce: missed clusters are tiny (ASMC of a few points) and their
points are a small fraction of all clustered points, so the error is
negligible.
"""

from conftest import bench_workload, out_path

from repro.experiments.missed import missed_cluster_analysis
from repro.experiments.reporting import format_table, save_json

CASES = (
    ("NYT-150k", 0.5, 3),
    ("Glove-150k", 0.55, 5),
    ("MS-150k", 0.55, 5),
)


def _analyze_all():
    rows = []
    for name, eps, tau in CASES:
        workload = bench_workload(name)
        stats, run_stats = missed_cluster_analysis(
            workload.X_test, workload.estimator, eps, tau, workload.alpha
        )
        rows.append((name, eps, tau, stats, run_stats))
    return rows


def test_table6_missed_clusters(benchmark):
    rows = benchmark.pedantic(_analyze_all, rounds=1, iterations=1)

    table = []
    payload = []
    for name, eps, tau, stats, run_stats in rows:
        row = stats.as_row()
        table.append(
            [f"({eps}, {tau})", name, row["MC/TC"], row["MP/TPC"], row["ASMC"]]
        )
        payload.append(
            {
                "dataset": name,
                "eps": eps,
                "tau": tau,
                **row,
                "missed_point_fraction": stats.missed_point_fraction,
                "fn_detected": run_stats.get("fn_detected", 0),
            }
        )
    print()
    print(
        format_table(
            ["(eps,tau)", "dataset", "MC/TC", "MP/TPC", "ASMC"],
            table,
            title="Table 6: fully missed clusters (LAF-DBSCAN)",
        )
    )

    # Paper shape: missed clusters hold a small share of clustered points.
    for name, eps, tau, stats, _ in rows:
        assert stats.missed_point_fraction < 0.35, (
            f"{name}: missed fraction {stats.missed_point_fraction:.2f}"
        )

    save_json(out_path("table6_missed_clusters.json"), payload)
