#!/usr/bin/env python
"""CI benchmark-regression gate.

Compares freshly measured benchmark JSONs (``benchmarks/out/``) against
the committed baselines (``benchmarks/baselines/``) and exits non-zero
when a tracked metric regressed by more than the threshold (default
25%).

Tracked metrics are the keys ending in ``_speedup`` — dimensionless
ratios (batched vs per-point time measured on the *same* machine in the
*same* run), which are comparable across CI runners where absolute
seconds are not. Higher is better; a fresh value below
``baseline * (1 - threshold)`` fails the gate.

Rows within a file are matched by their identity keys (every
non-numeric field plus ``n`` / ``dim`` / ``eps``), so reordering rows or
adding new configurations never produces a false failure; a baseline
row that disappeared from the fresh file does.

Parallel speedups are runner-*class* comparable, not machine-proof: a
baseline measured on a 4-core runner is meaningless on a 1-core dev
container. Rows that record ``usable_cpus`` are therefore gated only
when the fresh run has at least as many usable CPUs as the baseline
run; otherwise the row is reported as skipped (and still counts as
present, so a silently-vanished benchmark keeps failing).

A baseline without a fresh counterpart fails too: that means the
benchmark silently stopped running, which is itself a regression. An
unparseable fresh file fails with a clear message (the writers use
atomic replace, so this indicates a real bug, not a torn write).

Usage::

    python benchmarks/check_regression.py \
        [--out benchmarks/out] [--baselines benchmarks/baselines] \
        [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass

#: Row fields that identify a measured configuration (not metrics).
IDENTITY_KEYS = ("index", "method", "dataset", "n", "dim", "eps", "k")

#: Metric-name suffix marking a tracked, higher-is-better ratio.
TRACKED_SUFFIX = "_speedup"


@dataclass
class Finding:
    """One gate result line."""

    file: str
    row: str
    metric: str
    baseline: float
    fresh: float | None
    ok: bool
    skipped_reason: str | None = None

    def describe(self) -> str:
        if self.skipped_reason is not None:
            return (
                f"skip {self.file} {self.row} {self.metric}: "
                f"{self.skipped_reason}"
            )
        status = "ok  " if self.ok else "FAIL"
        if self.fresh is None:
            return f"{status} {self.file} {self.row} {self.metric}: missing"
        change = (self.fresh - self.baseline) / self.baseline
        return (
            f"{status} {self.file} {self.row} {self.metric}: "
            f"{self.baseline:.2f} -> {self.fresh:.2f} ({change:+.0%})"
        )


def row_identity(row: dict) -> str:
    """Stable identity string for matching rows across files."""
    parts = [f"{k}={row[k]}" for k in IDENTITY_KEYS if k in row]
    return "[" + ", ".join(parts) + "]" if parts else "[row]"


def cpu_downgrade(baseline_row: dict, fresh_row: dict | None) -> str | None:
    """Why this row's ratios are incomparable on the fresh machine.

    Returns a skip reason when the baseline recorded ``usable_cpus`` and
    the fresh run has fewer of them (a multi-core anchor cannot gate a
    smaller machine); None when the rows are comparable. Baselines
    without the field — and fresh rows missing it — gate normally.
    """
    if fresh_row is None:
        return None
    base_cpus = baseline_row.get("usable_cpus")
    fresh_cpus = fresh_row.get("usable_cpus")
    if not isinstance(base_cpus, (int, float)):
        return None
    if not isinstance(fresh_cpus, (int, float)) or fresh_cpus >= base_cpus:
        return None
    return (
        f"fresh run has {int(fresh_cpus)} usable CPU(s), baseline was "
        f"measured with {int(base_cpus)}"
    )


def tracked_metrics(row: dict) -> dict[str, float]:
    return {
        key: float(value)
        for key, value in row.items()
        if key.endswith(TRACKED_SUFFIX) and isinstance(value, (int, float))
    }


def load_rows(path: str) -> dict[str, dict]:
    """Rows of one benchmark JSON, keyed by identity. Raises ValueError."""
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable benchmark file {path}: {exc}") from exc
    rows = payload.get("rows") if isinstance(payload, dict) else None
    if not isinstance(rows, list):
        raise ValueError(f"benchmark file {path} has no 'rows' list")
    return {row_identity(row): row for row in rows if isinstance(row, dict)}


def compare_file(
    name: str, baseline_path: str, fresh_path: str, threshold: float
) -> list[Finding]:
    """Gate one baseline file against its fresh counterpart."""
    baseline_rows = load_rows(baseline_path)
    if not os.path.exists(fresh_path):
        return [
            Finding(name, identity, metric, value, None, ok=False)
            for identity, row in baseline_rows.items()
            for metric, value in tracked_metrics(row).items()
        ]
    fresh_rows = load_rows(fresh_path)
    findings: list[Finding] = []
    for identity, row in baseline_rows.items():
        fresh_row = fresh_rows.get(identity)
        skip = cpu_downgrade(row, fresh_row)
        for metric, value in tracked_metrics(row).items():
            fresh_value = fresh_row.get(metric) if fresh_row else None
            if not isinstance(fresh_value, (int, float)):
                findings.append(Finding(name, identity, metric, value, None, ok=False))
                continue
            if skip is not None:
                findings.append(
                    Finding(
                        name,
                        identity,
                        metric,
                        value,
                        float(fresh_value),
                        ok=True,
                        skipped_reason=skip,
                    )
                )
                continue
            ok = float(fresh_value) >= value * (1.0 - threshold)
            findings.append(
                Finding(name, identity, metric, value, float(fresh_value), ok)
            )
    return findings


def check(out_dir: str, baselines_dir: str, threshold: float) -> list[Finding]:
    """Gate every committed baseline; returns all findings."""
    names = sorted(name for name in os.listdir(baselines_dir) if name.endswith(".json"))
    if not names:
        raise ValueError(f"no baseline files in {baselines_dir}")
    findings: list[Finding] = []
    for name in names:
        findings.extend(
            compare_file(
                name,
                os.path.join(baselines_dir, name),
                os.path.join(out_dir, name),
                threshold,
            )
        )
    return findings


def main(argv: list[str] | None = None) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(here, "out"))
    parser.add_argument("--baselines", default=os.path.join(here, "baselines"))
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional drop of a tracked metric",
    )
    args = parser.parse_args(argv)
    try:
        findings = check(args.out, args.baselines, args.threshold)
    except ValueError as exc:
        print(f"regression gate error: {exc}", file=sys.stderr)
        return 1
    for finding in findings:
        print(finding.describe())
    failures = [f for f in findings if not f.ok]
    if failures:
        print(
            f"regression gate: {len(failures)} of {len(findings)} tracked "
            f"metrics regressed beyond {args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    skips = sum(1 for f in findings if f.skipped_reason is not None)
    gated = len(findings) - skips
    suffix = f" ({skips} skipped: fewer CPUs than baseline)" if skips else ""
    print(f"regression gate: all {gated} tracked metrics within bounds{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
