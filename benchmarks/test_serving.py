"""Benchmark: micro-batching is where the serving subsystem earns its keep.

64 concurrent clients each stream small predict requests at a
:class:`~repro.serving.server.ModelServer`. The per-request
configuration (``max_batch_rows=1``) pays one ``ClusterModel.predict``
call — index dispatch, nearest-core selection, Python overhead — per
tiny request; the micro-batched configuration coalesces concurrent
requests into large batches and amortizes that fixed cost across every
row. The tracked metric is ``microbatch_throughput_speedup`` (rows/s
micro-batched over rows/s per-request, same model, same requests, same
machine, same run).

Correctness is asserted before timing counts: every label served by
either configuration must be bit-identical to sequential
``ClusterModel.predict`` on the same rows — batching must never show
up in the answers, only in the clock.

Each row records ``usable_cpus`` so the regression gate skips the ratio
on smaller machines than the committed baseline. Results land in
``benchmarks/out/serving_n{N}.json``.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
from conftest import out_path

import repro
from repro.serving import ModelServer
from repro.testing import make_blobs_on_sphere, write_benchmark_rows

N = int(os.environ.get("REPRO_SERVING_BENCH_N", "4096"))
DIM = 32
EPS = 0.45
TAU = 4
N_CLIENTS = 64
REQUESTS_PER_CLIENT = 32
ROWS_PER_REQUEST = 2


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _client_requests(queries: np.ndarray, seed: int) -> list[np.ndarray]:
    """One client's deterministic request stream (small random slices)."""
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(REQUESTS_PER_CLIENT):
        lo = int(rng.integers(0, queries.shape[0] - ROWS_PER_REQUEST))
        requests.append(queries[lo : lo + ROWS_PER_REQUEST])
    return requests


async def _drive(model, streams, *, max_batch_rows: int) -> tuple[float, list]:
    """Run every client stream; returns (seconds, per-client labels)."""
    async with ModelServer(
        max_batch_rows=max_batch_rows, max_wait_ms=2.0, max_queue_rows=1 << 20
    ) as server:
        server.add_model("m", model)

        async def client(requests):
            return [await server.submit("m", req) for req in requests]

        start = time.perf_counter()
        results = await asyncio.gather(*(client(s) for s in streams))
        elapsed = time.perf_counter() - start
    return elapsed, results


def test_microbatch_throughput():
    X, _ = make_blobs_on_sphere(N // 8, 8, DIM, spread=0.15, seed=0)
    queries, _ = make_blobs_on_sphere(N // 8, 8, DIM, spread=0.3, seed=0)
    streams = [_client_requests(queries, seed) for seed in range(N_CLIENTS)]
    total_rows = N_CLIENTS * REQUESTS_PER_CLIENT * ROWS_PER_REQUEST

    with repro.fit_model(X, "dbscan", eps=EPS, tau=TAU) as model:
        expected = [[model.predict(req) for req in s] for s in streams]

        t_single, got_single = asyncio.run(
            _drive(model, streams, max_batch_rows=1)
        )
        t_batched, got_batched = asyncio.run(
            _drive(model, streams, max_batch_rows=256)
        )

    for got in (got_single, got_batched):
        for client_got, client_exp in zip(got, expected):
            for labels, exp in zip(client_got, client_exp):
                assert np.array_equal(labels, exp)

    speedup = t_single / t_batched
    row = {
        "method": "microbatch_serving",
        "n": N,
        "dim": DIM,
        "eps": EPS,
        "n_clients": N_CLIENTS,
        "rows_served": total_rows,
        "per_request_s": t_single,
        "microbatched_s": t_batched,
        "per_request_rows_per_s": total_rows / t_single,
        "microbatched_rows_per_s": total_rows / t_batched,
        "microbatch_throughput_speedup": speedup,
        "usable_cpus": usable_cpus(),
    }
    print()
    print(
        f"serving ({N_CLIENTS} clients, {total_rows} rows): per-request "
        f"{t_single:.3f}s, micro-batched {t_batched:.3f}s -> {speedup:.2f}x"
    )
    write_benchmark_rows(out_path(f"serving_n{N}.json"), [row])

    # The headline claim: coalescing concurrent small requests must at
    # least double throughput over the per-request path.
    assert speedup >= 2.0, f"micro-batching speedup only {speedup:.2f}x"
