"""Table 5: quality across MS dataset scales (eps=0.55, tau=5).

Paper shape to reproduce: LAF-DBSCAN achieves the best quality in most
cells; LAF-DBSCAN++ tracks DBSCAN++ increasingly closely as the data
scale grows.
"""

from conftest import out_path

from repro.experiments.quality import quality_comparison
from repro.experiments.reporting import format_table, pivot, save_json

EPS, TAU = 0.55, 5


def test_table5_scalability_quality(benchmark, ms_workloads):
    datasets = {name: wl.X_test for name, wl in ms_workloads.items()}
    estimators = {name: wl.estimator for name, wl in ms_workloads.items()}
    alphas = {name: wl.alpha for name, wl in ms_workloads.items()}

    records = benchmark.pedantic(
        quality_comparison,
        args=(datasets, estimators, alphas, EPS, TAU),
        rounds=1,
        iterations=1,
    )

    for metric in ("ARI", "AMI"):
        headers, rows = pivot(records, value=metric)
        print()
        print(
            format_table(
                headers, rows, title=f"Table 5 ({metric}) @ eps={EPS}, tau={TAU}"
            )
        )

    laf = {r.dataset: r for r in records if r.method == "LAF-DBSCAN"}
    assert all(r.ami > 0.0 for r in laf.values())

    save_json(
        out_path("table5_scalability_quality.json"), [r.as_row() for r in records]
    )
