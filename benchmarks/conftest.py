"""Shared fixtures for the paper-reproduction benchmarks.

Scales are chosen so the whole suite runs in minutes on one machine
while preserving the paper's relative dataset sizes. Override via
environment variables:

* ``REPRO_BENCH_SCALE``  — fraction of the paper's dataset sizes
  (default 0.03; the paper itself is scale 1.0);
* ``REPRO_BENCH_HEADLINE_SCALE`` — larger scale used for the
  DBSCAN-vs-LAF headline timing (default 0.12);
* ``REPRO_BENCH_EPOCHS`` — RMI training epochs (default 40).

Every benchmark writes its measured rows as JSON under
``benchmarks/out/`` — EXPERIMENTS.md quotes those files.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.workloads import Workload, prepare_workload

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))
HEADLINE_SCALE = float(os.environ.get("REPRO_BENCH_HEADLINE_SCALE", "0.12"))
ESTIMATOR_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "40"))
SEED = 0

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def out_path(name: str) -> str:
    """Destination for one benchmark's JSON results."""
    return os.path.join(OUT_DIR, name)


def bench_workload(name: str, scale: float = BENCH_SCALE) -> Workload:
    """Memoized dataset + split + trained estimator at benchmark scale."""
    return prepare_workload(
        name,
        scale=scale,
        seed=SEED,
        epochs=ESTIMATOR_EPOCHS,
        n_train_queries=500,
        hidden_layers=(64, 64, 32),
    )


@pytest.fixture(scope="session")
def ms_workloads() -> dict[str, Workload]:
    """The MS scalability trio (Tables 2/4/5, Figure 4)."""
    return {name: bench_workload(name) for name in ("MS-50k", "MS-100k", "MS-150k")}


@pytest.fixture(scope="session")
def largest_workloads() -> dict[str, Workload]:
    """The three largest datasets (Table 3, Figure 1)."""
    return {
        name: bench_workload(name) for name in ("NYT-150k", "Glove-150k", "MS-150k")
    }
