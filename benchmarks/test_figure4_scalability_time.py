"""Figure 4: clustering time across MS dataset scales (eps=0.55, tau=5),
plus the headline DBSCAN-vs-LAF timing at a larger scale.

Paper shape to reproduce: LAF-DBSCAN has the slowest growth of
clustering time as the data scale increases (it skips a growing number
of quadratic-cost range queries for a linear-cost prediction pass), and
at the largest scale it is the fastest method.

The headline comparison runs only the brute-force-based methods
(DBSCAN, DBSCAN++, LAF-DBSCAN, LAF-DBSCAN++) at ``HEADLINE_SCALE``,
where range queries dominate and the paper's speedup factors
materialize on this substrate.
"""

from conftest import HEADLINE_SCALE, bench_workload, out_path

from repro.experiments.efficiency import speedup_summary, timing_comparison
from repro.experiments.reporting import format_table, pivot, save_json

EPS, TAU = 0.55, 5


def test_figure4_scalability_time(benchmark, ms_workloads):
    datasets = {name: wl.X_test for name, wl in ms_workloads.items()}
    estimators = {name: wl.estimator for name, wl in ms_workloads.items()}
    alphas = {name: wl.alpha for name, wl in ms_workloads.items()}

    records = benchmark.pedantic(
        timing_comparison,
        args=(datasets, estimators, alphas, EPS, TAU),
        rounds=1,
        iterations=1,
    )

    headers, rows = pivot(records, value="time_s")
    print()
    print(format_table(headers, rows, title=f"Figure 4: time (s) @ eps={EPS}, tau={TAU}"))

    save_json(out_path("figure4_scalability_time.json"), [r.as_row() for r in records])


#: Headline setting: at HEADLINE_SCALE the surrogate is ~4x denser than
#: at BENCH_SCALE, so tau is scaled up to keep the paper's noise-ratio
#: regime (~0.2-0.4 stop points) — holding tau fixed while quadrupling
#: density would leave almost no queries for LAF to skip.
HEADLINE_EPS, HEADLINE_TAU = 0.5, 12


def test_figure4_headline_speedup(benchmark):
    """DBSCAN vs the sampling/LAF methods where queries dominate."""
    names = ("MS-50k", "MS-100k", "MS-150k")
    workloads = {name: bench_workload(name, scale=HEADLINE_SCALE) for name in names}
    datasets = {name: wl.X_test for name, wl in workloads.items()}
    estimators = {name: wl.estimator for name, wl in workloads.items()}
    alphas = {name: wl.alpha for name, wl in workloads.items()}
    methods = ("DBSCAN", "DBSCAN++", "LAF-DBSCAN", "LAF-DBSCAN++")

    records = benchmark.pedantic(
        timing_comparison,
        args=(datasets, estimators, alphas, HEADLINE_EPS, HEADLINE_TAU),
        kwargs={"methods": methods},
        rounds=1,
        iterations=1,
    )

    headers, rows = pivot(records, value="time_s")
    print()
    print(
        format_table(
            headers,
            rows,
            title=(
                f"Figure 4 headline @ scale={HEADLINE_SCALE}, "
                f"eps={HEADLINE_EPS}, tau={HEADLINE_TAU}"
            ),
        )
    )
    summary = speedup_summary(records)
    print("speedups:", summary)

    # The paper's central efficiency claim, at the scale where range
    # queries dominate: LAF-DBSCAN beats DBSCAN on the largest dataset.
    by_key = {(r.method, r.dataset): r.elapsed_seconds for r in records}
    assert by_key[("LAF-DBSCAN", "MS-150k")] < by_key[("DBSCAN", "MS-150k")]

    save_json(
        out_path("figure4_headline_speedup.json"),
        {"records": [r.as_row() for r in records], "speedups": summary},
    )
