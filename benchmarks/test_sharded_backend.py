"""Scaling benchmark: sharded range-query backend, shards x workers grid.

Measures the headline claim of the sharded backend — that fanning
`batch_range_query` across row shards through the multiprocessing
executor (shared-memory dataset, per-worker shard indexes) beats
*serial* sharding once real cores exist — and records every
(executor, n_shards, n_workers) cell to
``benchmarks/out/sharded_backend_n{N}.json`` for the CI regression gate.
A second test measures the **build-once fit** win for tree inners: the
shard-before-build path never constructs the whole-dataset index that
``maybe_shard`` used to build and throw away, and shard→worker affinity
caps inner builds at one per live shard.

Methodology notes:

* The tracked metrics are same-machine, same-run ratios
  (``fanout_speedup``: serial-sharded time over this cell's time at the
  same shard count; ``fit_speedup``: legacy build-then-shard fit cost
  over the shard-before-build fit cost), which is what the regression
  gate can compare across runner generations. The single big unsharded
  GEMM is recorded as ``vs_single_ratio`` (informational): on few cores
  one GEMM usually wins, which is exactly the "when sharding loses"
  story in ``docs/engine.md``.
* Every row records ``usable_cpus``: the regression gate skips tracked
  ratios when the fresh run has fewer usable CPUs than the committed
  baseline was measured with (parallel speedups are runner-class
  comparable, not machine-proof).
* BLAS pools are pinned to one thread (best-effort, via threadpoolctl)
  for the duration: the benchmark isolates *executor* parallelism, and
  otherwise a multi-threaded serial GEMM masks it. Worker processes pin
  themselves the same way in their initializer.
* The >= 1.8x acceptance assertion fires only where >= 4 CPUs are
  actually usable; on smaller machines (including 1-core CI shards and
  dev containers) the JSON is still written so the trajectory accrues.
"""

from __future__ import annotations

import contextlib
import os
import time

import numpy as np
import pytest
from conftest import out_path

from repro.distances import normalize_rows
from repro.index import BruteForceIndex, CoverTree, ShardedIndex
from repro.testing import make_blobs_on_sphere, write_benchmark_rows

N = int(os.environ.get("REPRO_SHARD_BENCH_N", "16384"))
#: Fit benchmark size: big enough that a cover-tree build is a real
#: cost, small enough that the tree-inner query grid stays in CI budget.
N_FIT = int(os.environ.get("REPRO_SHARD_FIT_N", "4096"))
COVER_BASE = 1.3
DIM = 64
#: ~80 neighbors per query at this (eps, spread): heavy enough that the
#: distance work dominates, light enough that result pickling doesn't.
EPS = 0.25
REPEATS = 2

#: (executor, n_shards, n_workers) grid; serial cells are the anchors
#: the fanout_speedup of same-shard-count cells is measured against.
GRID = [
    ("serial", 2, 1),
    ("serial", 4, 1),
    ("thread", 4, 4),
    ("process", 2, 2),
    ("process", 4, 2),
    ("process", 4, 4),
]


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def single_thread_blas():
    """Pin BLAS pools to one thread while measuring (best-effort)."""
    try:
        import threadpoolctl

        return threadpoolctl.threadpool_limits(limits=1)
    except Exception:
        return contextlib.nullcontext()


def _dataset(n: int, dim: int = DIM, seed: int = 0) -> np.ndarray:
    """3/4 clustered blobs + 1/4 uniform noise on the sphere."""
    X, _ = make_blobs_on_sphere(n // 8, 6, dim, spread=0.7, seed=seed)
    rng = np.random.default_rng(seed + 1)
    noise = normalize_rows(rng.normal(size=(n - X.shape[0], dim)))
    return np.vstack([X, noise])


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sharded_backend_scaling():
    X = _dataset(N)
    single = BruteForceIndex().build(X)
    cpus = usable_cpus()

    with single_thread_blas():
        t_single = _best_of(lambda: single.batch_range_query(X, EPS))
        expected_sample = single.batch_range_query(X[:64], EPS)

        rows = []
        serial_times: dict[int, float] = {}
        for executor, n_shards, n_workers in GRID:
            index = ShardedIndex(
                inner="brute_force",
                n_shards=n_shards,
                executor=executor,
                n_workers=n_workers,
            ).build(X)
            try:
                # Exactness spot-check on every cell before timing it.
                got = index.batch_range_query(X[:64], EPS)
                for got_row, exp_row in zip(got, expected_sample):
                    assert np.array_equal(got_row, np.sort(exp_row))
                elapsed = _best_of(lambda: index.batch_range_query(X, EPS))
            finally:
                index.close()
            if executor == "serial":
                serial_times[n_shards] = elapsed
            row = {
                "index": "sharded_brute_force",
                "method": f"{executor}_s{n_shards}_w{n_workers}",
                "n": N,
                "dim": DIM,
                "eps": EPS,
                "n_shards": n_shards,
                "n_workers": n_workers,
                "query_s": elapsed,
                "single_index_s": t_single,
                "vs_single_ratio": t_single / elapsed,
                "usable_cpus": cpus,
            }
            if executor != "serial":
                row["fanout_speedup"] = serial_times[n_shards] / elapsed
            rows.append(row)
            print()
            print(
                f"{row['method']}: {elapsed:.3f}s"
                + (
                    f" ({row['fanout_speedup']:.2f}x over serial sharding)"
                    if "fanout_speedup" in row
                    else ""
                )
                + f"; single index {t_single:.3f}s"
            )

    write_benchmark_rows(out_path(f"sharded_backend_n{N}.json"), rows)

    # Acceptance criterion: the multiprocessing executor with 4 workers
    # beats serial sharding >= 1.8x at the same shard count — but only
    # where four cores actually exist to win on.
    headline = next(r for r in rows if r["method"] == "process_s4_w4")
    if cpus >= 4:
        assert headline["fanout_speedup"] >= 1.8, (
            f"process executor only {headline['fanout_speedup']:.2f}x over "
            f"serial sharding on {cpus} CPUs"
        )
    else:
        pytest.skip(
            f"only {cpus} usable CPU(s): recorded "
            f"{headline['fanout_speedup']:.2f}x, >=1.8x asserted on >=4 CPUs"
        )


def test_sharded_tree_fit_build_once():
    """Fit-time win of build-once sharding on a tree inner.

    The legacy sharded fit built the whole-dataset index and then threw
    it away when ``maybe_shard`` rebuilt per-shard copies; the
    shard-before-build path builds only the shards. ``fit_speedup``
    compares the two as (single build + sharded fit) / sharded fit —
    both halves measured fresh in this run, so the ratio is
    machine-resistant. The sharded fit here is build + one full query
    pass (the engine's fit workload); on the process executor the shard
    builds also overlap across workers, which is extra win on real
    cores.
    """
    X = _dataset(N_FIT)
    cpus = usable_cpus()
    inner_kwargs = {"base": COVER_BASE}

    with single_thread_blas():
        t_single_build = _best_of(lambda: CoverTree(**inner_kwargs).build(X))

        rows = []
        for executor, n_shards, n_workers in [
            ("serial", 4, 1),
            ("process", 4, 2),
            ("process", 4, 4),
        ]:

            def fit_and_query():
                index = ShardedIndex(
                    inner="cover_tree",
                    inner_kwargs=inner_kwargs,
                    n_shards=n_shards,
                    executor=executor,
                    n_workers=n_workers,
                ).build(X)
                try:
                    index.batch_range_query(X, EPS)
                    # The build-once contract, asserted inside the
                    # measured workload's own run.
                    stats = index.stats()
                    assert stats["shard_inner_builds"] == stats["shard_live_shards"]
                finally:
                    index.close()

            t_sharded = _best_of(fit_and_query)
            fit_speedup = (t_single_build + t_sharded) / t_sharded
            row = {
                "index": "sharded_cover_tree",
                "method": f"fit_{executor}_s{n_shards}_w{n_workers}",
                "n": N_FIT,
                "dim": DIM,
                "eps": EPS,
                "n_shards": n_shards,
                "n_workers": n_workers,
                "fit_and_query_s": t_sharded,
                "single_build_s": t_single_build,
                "fit_speedup": fit_speedup,
                "usable_cpus": cpus,
            }
            rows.append(row)
            print()
            print(
                f"{row['method']}: {t_sharded:.3f}s fit+query; "
                f"build-once saves the {t_single_build:.3f}s discarded "
                f"build ({fit_speedup:.2f}x)"
            )

    write_benchmark_rows(out_path(f"sharded_backend_fit_n{N_FIT}.json"), rows)
    # No fixed floor asserted here: fit_speedup > 1 holds by
    # construction, so the build-once guarantee is enforced by the
    # shard_inner_builds == shard_live_shards assertion inside the
    # measured workload, and the magnitude is tracked by the regression
    # gate (25% band) against the committed baseline.
