"""Ablation (beyond the paper): how much does Algorithm 3 recover?

Runs LAF-DBSCAN with and without the post-processing module at
increasing error factors. More alpha means more false negatives, more
wrongly split clusters — and more quality for Algorithm 3 to win back.
"""

from conftest import bench_workload, out_path

from repro.experiments.ablation import postprocessing_ablation
from repro.experiments.reporting import format_table, save_json

EPS, TAU = 0.55, 5


def test_ablation_postprocessing(benchmark):
    workload = bench_workload("MS-150k")

    records = benchmark.pedantic(
        postprocessing_ablation,
        args=(workload.X_test, workload.estimator, EPS, TAU),
        kwargs={"alphas": (1.5, 3.0, 7.7)},
        rounds=1,
        iterations=1,
    )

    headers = ["variant", "time_s", "ARI", "AMI", "FN", "merges"]
    rows = [[r.as_row()[h] for h in headers] for r in records]
    print()
    print(format_table(headers, rows, title="Ablation: post-processing on/off"))

    # Post-processing never runs merges when disabled.
    for r in records:
        if "no-postproc" in r.variant:
            assert r.merges == 0

    # Averaged over the alpha grid, enabling Algorithm 3 does not hurt.
    with_pp = [r.ami for r in records if "with-postproc" in r.variant]
    without = [r.ami for r in records if "no-postproc" in r.variant]
    assert sum(with_pp) >= sum(without) - 0.05

    save_json(out_path("ablation_postprocessing.json"), [r.as_row() for r in records])
