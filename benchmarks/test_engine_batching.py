"""Micro-benchmark: batched vs per-point brute-force neighborhood computation.

Measures the engine's headline claim — that computing every point's
eps-neighborhood through blocked ``batch_range_query`` matrix products
beats the per-point ``range_query`` Python loop — and writes the speedup
rows to ``benchmarks/out/engine_batching.json``. Also times the two
DBSCAN paths end to end, since the neighborhood loop is DBSCAN's
dominant cost.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import out_path

from repro.clustering import DBSCAN
from repro.distances import normalize_rows
from repro.engine_config import ExecutionConfig
from repro.experiments.reporting import save_json
from repro.index import BruteForceIndex
from repro.testing import make_blobs_on_sphere

EPS = 0.5
TAU = 5
REPEATS = 3


def _dataset(n: int, dim: int = 256, seed: int = 0) -> np.ndarray:
    """Blobs + noise at the paper's high-dimensional scale (d >= 200)."""
    X, _ = make_blobs_on_sphere(n // 4, 3, dim, spread=0.15, seed=seed)
    rng = np.random.default_rng(seed + 1)
    noise = normalize_rows(rng.normal(size=(n - X.shape[0], dim)))
    return np.vstack([X, noise])


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _neighborhoods_scalar(index: BruteForceIndex, X: np.ndarray) -> None:
    for i in range(X.shape[0]):
        index.range_query(X[i], EPS)


def _neighborhoods_batched(index: BruteForceIndex, X: np.ndarray) -> None:
    index.batch_range_query(X, EPS)


@pytest.mark.parametrize("n", [2000, 8000])
def test_engine_batching_speedup(n):
    X = _dataset(n)
    index = BruteForceIndex().build(X)

    t_scalar = _best_of(lambda: _neighborhoods_scalar(index, X))
    t_batched = _best_of(lambda: _neighborhoods_batched(index, X))
    query_speedup = t_scalar / t_batched

    per_point = ExecutionConfig(batch_queries=False)
    t_fit_scalar = _best_of(
        lambda: DBSCAN(eps=EPS, tau=TAU, execution=per_point).fit(X), repeats=1
    )
    t_fit_batched = _best_of(lambda: DBSCAN(eps=EPS, tau=TAU).fit(X), repeats=1)
    fit_speedup = t_fit_scalar / t_fit_batched

    rows = [
        {
            "n": n,
            "dim": int(X.shape[1]),
            "eps": EPS,
            "scalar_query_s": t_scalar,
            "batched_query_s": t_batched,
            "query_speedup": query_speedup,
            "scalar_fit_s": t_fit_scalar,
            "batched_fit_s": t_fit_batched,
            "fit_speedup": fit_speedup,
        }
    ]
    print()
    print(
        f"n={n}: neighborhoods {t_scalar:.3f}s -> {t_batched:.3f}s "
        f"({query_speedup:.1f}x); DBSCAN fit {t_fit_scalar:.3f}s -> "
        f"{t_fit_batched:.3f}s ({fit_speedup:.1f}x)"
    )
    save_json(out_path(f"engine_batching_n{n}.json"), {"rows": rows})

    # Acceptance criterion: >= 3x at n = 8000 (be lenient at the small
    # size, where fixed overheads dominate).
    if n >= 8000:
        assert query_speedup >= 3.0, f"batched speedup only {query_speedup:.2f}x"
