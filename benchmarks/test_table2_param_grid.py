"""Table 2: (noise ratio, number of clusters) grid for the MS datasets.

Paper shape to reproduce: at fixed tau, raising eps lowers the noise
ratio and eventually collapses everything into one cluster at
(0.7, 5); at fixed (eps, tau), larger datasets have lower noise ratios.
"""

from conftest import out_path

from repro.experiments.param_select import parameter_grid, select_representative
from repro.experiments.reporting import format_table, save_json


def test_table2_parameter_grid(benchmark, ms_workloads):
    datasets = {name: wl.X_test for name, wl in ms_workloads.items()}

    cells = benchmark.pedantic(
        parameter_grid,
        args=(datasets,),
        kwargs={"eps_values": (0.5, 0.55, 0.6, 0.7), "tau_values": (3, 5)},
        rounds=1,
        iterations=1,
    )

    names = list(datasets)
    by_pair: dict[tuple[float, int], dict[str, str]] = {}
    for cell in cells:
        by_pair.setdefault((cell.eps, cell.tau), {})[cell.dataset] = cell.as_pair()
    rows = [
        [f"({eps}, {tau})", *(by_pair[(eps, tau)].get(n, "-") for n in names)]
        for (eps, tau) in sorted(by_pair)
    ]
    print()
    print(format_table(["(eps,tau)", *names], rows, title="Table 2: (noise ratio, #clusters)"))

    # The paper's selection rule still finds usable settings (the
    # cluster-count bar scales with the reduced dataset size).
    selected = select_representative(cells, max_noise=0.65, min_clusters=3)
    print("selected representative (eps, tau):", selected)
    assert selected, "no (eps, tau) passed the selection rule"

    # Monotone shape: noise ratio falls as eps rises (per dataset, tau=5).
    for name in names:
        series = [c.noise_ratio for c in cells if c.dataset == name and c.tau == 5]
        assert series == sorted(series, reverse=True) or series[-1] <= series[0]

    save_json(
        out_path("table2_param_grid.json"),
        {
            "cells": [
                {
                    "dataset": c.dataset,
                    "eps": c.eps,
                    "tau": c.tau,
                    "noise_ratio": c.noise_ratio,
                    "n_clusters": c.n_clusters,
                }
                for c in cells
            ],
            "selected": selected,
        },
    )
