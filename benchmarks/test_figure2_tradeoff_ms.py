"""Figure 2: speed-quality trade-off on MS-150k (eps=0.5, tau=3).

Each method sweeps its own knob, exactly as Section 3.4 prescribes:
LAF-DBSCAN's alpha 1.1-15, DBSCAN++/LAF-DBSCAN++'s delta 0.1-0.9,
KNN-BLOCK's branching/checks, BLOCK-DBSCAN's basis 1.1-5.

Paper shape to reproduce: in the high-quality region the LAF methods
sit on the lower (faster) envelope, and raising LAF-DBSCAN's alpha
moves it monotonically toward faster/lower-quality operation.
"""

from conftest import bench_workload, out_path

from repro.experiments.runner import ground_truth
from repro.experiments.reporting import format_table, save_json
from repro.experiments.tradeoff import (
    sweep_block_dbscan,
    sweep_dbscanpp,
    sweep_knn_block,
    sweep_laf_alpha,
    sweep_laf_dbscanpp,
)

EPS, TAU = 0.5, 3


def _run_all_sweeps(X, gt_labels, estimator):
    points = []
    points += sweep_laf_alpha(
        X, gt_labels, estimator, EPS, TAU, alphas=(1.1, 1.5, 2.0, 3.0, 5.0, 8.0, 15.0)
    )
    points += sweep_dbscanpp(
        X, gt_labels, estimator, EPS, TAU, deltas=(0.1, 0.3, 0.5, 0.7, 0.9)
    )
    points += sweep_laf_dbscanpp(
        X, gt_labels, estimator, EPS, TAU, deltas=(0.1, 0.3, 0.5, 0.7, 0.9)
    )
    points += sweep_knn_block(
        X, gt_labels, EPS, TAU, branchings=(3, 10, 20), checks=(0.01, 0.1, 0.3)
    )
    points += sweep_block_dbscan(X, gt_labels, EPS, TAU, bases=(1.1, 2.0, 5.0))
    return points


def test_figure2_tradeoff_ms150k(benchmark):
    workload = bench_workload("MS-150k")
    X = workload.X_test
    gt = ground_truth(X, EPS, TAU)

    points = benchmark.pedantic(
        _run_all_sweeps, args=(X, gt.labels, workload.estimator), rounds=1, iterations=1
    )

    headers = ["method", "knob", "value", "time_s", "ARI", "AMI"]
    rows = [[p.as_row()[h] for h in headers] for p in points]
    print()
    print(format_table(headers, rows, title="Figure 2: trade-off on MS-150k"))

    # alpha sweep: more alpha -> never more executed work (time noise
    # aside, the skip count is monotone); check via quality ordering.
    laf = [p for p in points if p.method == "LAF-DBSCAN"]
    assert laf[0].ami >= laf[-1].ami - 0.05  # alpha=1.1 at least as good as 15

    save_json(out_path("figure2_tradeoff_ms150k.json"), [p.as_row() for p in points])
