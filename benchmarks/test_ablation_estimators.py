"""Ablation (beyond the paper): which cardinality estimator drives LAF best?

The paper defers "studying the impact of the cardinality estimator
being used" to future work; this bench runs LAF-DBSCAN with the learned
RMI against the exact oracle (upper bound) and the classical estimators
(sampling, KDE, radial histogram) on the MS-150k surrogate.
"""

from conftest import bench_workload, out_path

from repro.experiments.ablation import estimator_ablation
from repro.experiments.reporting import format_table, save_json

EPS, TAU = 0.55, 5


def test_ablation_estimator_choice(benchmark):
    workload = bench_workload("MS-150k")

    records = benchmark.pedantic(
        estimator_ablation,
        args=(workload.X_test, workload.X_train, workload.estimator, EPS, TAU),
        kwargs={"alpha": 1.5},
        rounds=1,
        iterations=1,
    )

    headers = ["variant", "time_s", "ARI", "AMI", "FN", "merges"]
    rows = [[r.as_row()[h] for h in headers] for r in records]
    print()
    print(format_table(headers, rows, title="Ablation: estimator choice (LAF-DBSCAN)"))

    # Note the oracle is NOT an upper bound at alpha > 1: it then skips
    # every true core with count in [tau, alpha*tau) *deterministically*,
    # while noisy estimators overestimate some of them and keep them.
    # (At alpha = 1 the oracle is exactly DBSCAN — covered by unit tests.)
    for r in records:
        assert r.ami > 0.2, f"{r.variant} collapsed: AMI={r.ami:.3f}"

    save_json(out_path("ablation_estimators.json"), [r.as_row() for r in records])
