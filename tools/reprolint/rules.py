"""The rule registry: one class per repo invariant.

Each rule carries its code, a one-line summary (shown by
``--list-rules``), an optional path scope, and a ``check`` method that
yields :class:`~reprolint.core.Finding` objects. Pragma suppression and
scope filtering happen in the engine, so rules only encode detection.
"""

from __future__ import annotations

import ast
import functools
import os
from collections.abc import Iterator
from pathlib import Path

from reprolint.core import Finding, LintContext

__all__ = ["RULES", "Rule", "all_rule_codes"]


class Rule:
    """Base class. Subclasses set the class attributes and ``check``."""

    code: str = "RPL000"
    summary: str = ""
    #: path-segment prefixes the rule applies to; ``None`` = everywhere
    scope: tuple[str, ...] | None = None
    #: file suffixes the rule never applies to
    exempt_files: tuple[str, ...] = ()

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function.

    Statements inside nested functions belong to the nested scope only;
    class bodies stay with the enclosing scope (a method is still its
    own scope).
    """
    pending: list[tuple[ast.AST, list[ast.stmt]]] = [(tree, tree.body)]
    while pending:
        scope_node, body = pending.pop()
        yield scope_node, body
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                pending.append((node, node.body))
                continue  # nested function = new scope, don't descend
            if isinstance(node, ast.Lambda):
                continue
            stack.extend(ast.iter_child_nodes(node))


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements of one scope without entering nested functions."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ResourceLifecycleRule(Rule):
    """RPL001: resource acquisitions must be scoped or cleaned up.

    PR 4's bug class: a ``NeighborhoodCache`` (and its shm segment)
    constructed outside any ``with``/``finally`` leaked the segment on
    the first exception. Any call that acquires an OS-level resource
    must be one of: a ``with`` item, closed via a name referenced in a
    ``finally`` block, or handed off (returned / yielded / stored on
    ``self``) to an owner with its own lifecycle.
    """

    code = "RPL001"
    summary = (
        "engine/shm/socket/executor acquisitions must be bound in a "
        "`with` or closed in a `finally`"
    )

    RESOURCE_NAMES = frozenset(
        {
            "NeighborhoodCache",
            "ShardedIndex",
            "SharedMemory",
            "ProcessPoolExecutor",
            "ThreadPoolExecutor",
        }
    )
    RESOURCE_ATTRS = frozenset({"socket", "create_connection", "_engine"})

    def _is_resource_call(self, node: ast.AST) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.RESOURCE_NAMES:
            return func.id
        if isinstance(func, ast.Attribute):
            if func.attr in self.RESOURCE_NAMES:
                return func.attr
            if func.attr == "socket":
                # only the stdlib constructor, not e.g. self.socket(...)
                if isinstance(func.value, ast.Name) and func.value.id == "socket":
                    return "socket.socket"
            if func.attr == "create_connection":
                if isinstance(func.value, ast.Name) and func.value.id == "socket":
                    return "socket.create_connection"
            if func.attr == "_engine":
                return "_engine"
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for _scope, body in _iter_scopes(ctx.tree):
            yield from self._check_scope(ctx, body)

    def _check_scope(
        self, ctx: LintContext, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        with_exprs: set[int] = set()  # id() of context-manager call nodes
        escaping: set[str] = set()  # names that escape or get cleaned up
        for node in _walk_scope(body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        with_exprs.add(id(sub))
                        if isinstance(sub, ast.Name):
                            escaping.add(sub.id)
            elif isinstance(node, ast.Try) and node.finalbody:
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Name):
                            escaping.add(sub.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name):
                            escaping.add(sub.id)

        for node in _walk_scope(body):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                kind = self._is_resource_call(value)
                if kind is None or id(value) in with_exprs:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        continue  # self._shm = ... — owner manages lifecycle
                    if isinstance(target, ast.Name) and target.id in escaping:
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"{kind}(...) bound outside a `with` and never "
                        "closed in a `finally`; scope the resource or "
                        "hand it off explicitly",
                    )
            elif isinstance(node, ast.Expr):
                kind = self._is_resource_call(node.value)
                if kind is not None and id(node.value) not in with_exprs:
                    yield self.finding(
                        ctx,
                        node,
                        f"{kind}(...) result discarded — the acquired "
                        "resource can never be released",
                    )


class PickleSafetyRule(Rule):
    """RPL002: no pickle, and numpy IO must pin ``allow_pickle=False``.

    PRs 6-7 removed pickle from the remote wire and the persistence
    format; ``np.load`` defaults are version-dependent, so the intent
    must be explicit at every call site. ``np.savez`` has no
    ``allow_pickle`` switch at all, so any use needs a justified pragma
    plus an object-dtype guard.
    """

    code = "RPL002"
    summary = (
        "no `pickle` import; np.load/np.save require allow_pickle=False "
        "(src/repro only)"
    )
    scope = ("src/repro",)

    NUMPY_ALIASES = frozenset({"np", "numpy"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("pickle", "_pickle", "cPickle", "dill", "cloudpickle"):
                        yield self.finding(
                            ctx, node, f"import of `{alias.name}` is forbidden"
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in ("pickle", "_pickle", "cPickle", "dill", "cloudpickle"):
                    yield self.finding(
                        ctx, node, f"import from `{node.module}` is forbidden"
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: LintContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if not (
            isinstance(func.value, ast.Name)
            and func.value.id in self.NUMPY_ALIASES
        ):
            return
        if func.attr in ("load", "save"):
            for kw in node.keywords:
                if kw.arg == "allow_pickle":
                    if (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    ):
                        return
                    yield self.finding(
                        ctx,
                        node,
                        f"np.{func.attr} must pass allow_pickle=False "
                        "(literally), not a computed or truthy value",
                    )
                    return
            yield self.finding(
                ctx,
                node,
                f"np.{func.attr} without explicit allow_pickle=False",
            )
        elif func.attr in ("savez", "savez_compressed"):
            yield self.finding(
                ctx,
                node,
                f"np.{func.attr} cannot disable pickle; guard against "
                "object dtypes and document with a pragma, or write "
                "arrays individually via np.save(allow_pickle=False)",
            )


class ModuleStateRule(Rule):
    """RPL003: no module-level mutable state outside named registries.

    PR 5's bug class: ``_ACTIVE_SHARDING`` made execution config
    ambient, breaking concurrent clusterers. Append-at-import-time
    registries (``_INDEX_REGISTRY`` style) are the one sanctioned
    pattern; anything else mutable at module scope needs a pragma with
    a justification.
    """

    code = "RPL003"
    summary = (
        "no module-level mutable containers outside *_REGISTRY-style "
        "registries (src/repro only)"
    )
    scope = ("src/repro",)

    REGISTRY_SUFFIXES = (
        "_REGISTRY",
        "_BACKENDS",
        "_COMMANDS",
        "_ALIASES",
        "_METHODS",
        "_CLUSTERERS",
        "_OPS",
        "_NAMES",
        "_DATASETS",
        "_HANDLERS",
    )
    MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "deque"}
    )

    def _is_mutable_value(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in self.MUTABLE_CALLS
        return False

    def _is_registry_name(self, name: str) -> bool:
        if name == "__all__":
            return True
        return name.isupper() and name.endswith(self.REGISTRY_SUFFIXES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            if not self._is_mutable_value(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if self._is_registry_name(target.id):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"module-level mutable `{target.id}` — use an "
                    "immutable constant, a *_REGISTRY name, or thread "
                    "the state through ExecutionConfig",
                )


class TypedErrorsRule(Rule):
    """RPL004: raise sites must use ``repro.exceptions`` or a whitelist.

    Callers catch ``ReproError`` subclasses to distinguish user error
    from infrastructure failure (the remote pool's retry logic depends
    on it); raising ad-hoc ``RuntimeError`` breaks that contract.
    """

    code = "RPL004"
    summary = (
        "raise sites must use the repro.exceptions hierarchy or "
        "whitelisted builtins (src/repro only)"
    )
    scope = ("src/repro",)

    BUILTIN_WHITELIST = frozenset(
        {
            "ValueError",
            "TypeError",
            "NotImplementedError",
            "KeyError",
            "SystemExit",
            "KeyboardInterrupt",
            "AssertionError",
            "StopIteration",
            "OSError",
            "TimeoutError",
        }
    )
    DOTTED_WHITELIST = frozenset({"argparse.ArgumentTypeError"})
    # fallback if src/repro/exceptions.py cannot be located at lint time
    FALLBACK_REPRO_EXCEPTIONS = frozenset(
        {
            "ReproError",
            "InvalidParameterError",
            "DataValidationError",
            "NotFittedError",
            "EstimatorError",
            "PersistenceError",
            "IndexError_",
            "RemovedAPIError",
            "RemoteExecutorError",
            "RemoteProtocolError",
            "RemoteTimeoutError",
            "WorkerUnavailableError",
            "RetryExhaustedError",
        }
    )

    @staticmethod
    @functools.lru_cache(maxsize=8)
    def _repro_exception_names(root: str) -> frozenset[str]:
        """Class names defined in src/repro/exceptions.py, parsed live."""
        candidate = Path(root) / "src" / "repro" / "exceptions.py"
        if not candidate.is_file():
            return TypedErrorsRule.FALLBACK_REPRO_EXCEPTIONS
        try:
            tree = ast.parse(candidate.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return TypedErrorsRule.FALLBACK_REPRO_EXCEPTIONS
        names = {
            node.name for node in tree.body if isinstance(node, ast.ClassDef)
        }
        return frozenset(names) or TypedErrorsRule.FALLBACK_REPRO_EXCEPTIONS

    def _allowed_names(self) -> frozenset[str]:
        return self.BUILTIN_WHITELIST | self._repro_exception_names(os.getcwd())

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        allowed = self._allowed_names()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name):
                # lowercase names are re-raised exception variables
                if not exc.id[:1].isupper():
                    continue
                if exc.id in allowed:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"raise of `{exc.id}` — use the repro.exceptions "
                    "hierarchy or a whitelisted builtin",
                )
            elif isinstance(exc, ast.Attribute):
                dotted = _dotted(exc)
                if dotted is None:
                    continue
                if dotted in self.DOTTED_WHITELIST:
                    continue
                if ".exceptions." in f".{dotted}" and dotted.split(".")[-1]:
                    continue  # repro.exceptions.Foo / exceptions.Foo
                yield self.finding(
                    ctx,
                    node,
                    f"raise of `{dotted}` — use the repro.exceptions "
                    "hierarchy or a whitelisted builtin",
                )


class WireSafetyRule(Rule):
    """RPL005: raw ``sendall`` lives only in ``remote/protocol.py``.

    The frame helpers there are the single place that handles partial
    writes, length prefixes, and ``ascontiguousarray`` before putting
    array buffers on the wire. A ``sendall`` anywhere else bypasses
    framing and will interleave with protocol messages.
    """

    code = "RPL005"
    summary = "raw sock.sendall only inside remote/protocol.py"
    exempt_files = ("remote/protocol.py",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sendall"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "raw .sendall bypasses the frame helpers in "
                    "remote/protocol.py; use send_msg/send_array",
                )


class GlobalRandomRule(Rule):
    """RPL006: no global-state ``np.random.*`` calls under ``src/``.

    Every stochastic code path takes a ``numpy.random.Generator`` (see
    ``repro.rng.ensure_rng``) so runs are reproducible and parallel
    workers do not share hidden RNG state.
    """

    code = "RPL006"
    summary = (
        "no global np.random.* state under src/ — accept a Generator "
        "(repro.rng.ensure_rng)"
    )
    scope = ("src",)

    ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )
    NUMPY_ALIASES = frozenset({"np", "numpy"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self.NUMPY_ALIASES
            ):
                continue
            if node.attr in self.ALLOWED:
                continue
            yield self.finding(
                ctx,
                node,
                f"np.random.{node.attr} uses hidden global RNG state; "
                "accept a numpy Generator instead",
            )


class SwallowedExceptionRule(Rule):
    """RPL007: no bare/blind ``except`` that swallows silently.

    A handler for ``Exception``/``BaseException`` (or a bare
    ``except:``) whose body neither re-raises nor calls anything (log,
    convert, record) hides infrastructure failures — the worker-pool
    bug class where a dead worker looked like an empty result.
    """

    code = "RPL007"
    summary = "no bare/blind `except:` that swallows without re-raise or handling"

    BLIND = frozenset({"Exception", "BaseException"})

    def _is_blind(self, node: ast.ExceptHandler) -> bool:
        if node.type is None:
            return True
        types = (
            node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for t in types:
            if isinstance(t, ast.Name) and t.id in self.BLIND:
                return True
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` — catch a specific type, or at "
                    "minimum `except Exception` with handling",
                )
                continue
            if not self._is_blind(node):
                continue
            handles = any(
                isinstance(sub, (ast.Raise, ast.Call))
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if not handles:
                yield self.finding(
                    ctx,
                    node,
                    "`except Exception` swallows silently — re-raise, "
                    "convert to a typed error, or log before continuing",
                )


class FloatEqualityRule(Rule):
    """RPL008: no ``==``/``!=`` against float literals on distances.

    Accumulated float error means exact comparison against ``0.0`` (or
    any literal) silently mis-classifies border points; the codebase
    uses squared-threshold comparisons instead. The one sanctioned
    shape is the clamp idiom ``x[x == 0.0] = 1.0`` (guarding division),
    which is exempt.
    """

    code = "RPL008"
    summary = (
        "float-literal ==/!= comparisons flagged (clamp idiom "
        "`x[x == 0.0] = y` exempt)"
    )

    def _clamp_exempt(self, tree: ast.Module) -> set[int]:
        """id()s of Compare nodes inside a Subscript assign target."""
        exempt: set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Subscript):
                    continue
                for sub in ast.walk(target.slice):
                    if isinstance(sub, ast.Compare):
                        exempt.add(id(sub))
        return exempt

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        exempt = self._clamp_exempt(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare) or id(node) in exempt:
                continue
            lefts = [node.left, *node.comparators[:-1]]
            for op, left, right in zip(node.ops, lefts, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"float equality against {side.value!r} — "
                            "use a squared-threshold comparison "
                            "(abs(x - y) <= eps) instead",
                        )
                        break


_RULE_CLASSES: tuple[type[Rule], ...] = (
    ResourceLifecycleRule,
    PickleSafetyRule,
    ModuleStateRule,
    TypedErrorsRule,
    WireSafetyRule,
    GlobalRandomRule,
    SwallowedExceptionRule,
    FloatEqualityRule,
)

RULES: dict[str, Rule] = {cls.code: cls() for cls in _RULE_CLASSES}


def all_rule_codes() -> list[str]:
    return sorted(RULES)
