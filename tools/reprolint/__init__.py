"""reprolint: AST-level invariant checker for the repro codebase.

Every rule encodes an invariant a previous PR established after shipping
(and then fixing) the corresponding bug class — resource lifecycles,
wire safety, global state, typed errors. Ruff cannot express these
checks; reprolint walks the stdlib ``ast`` and enforces them at lint
time so regressions are caught by machines, not by reviewer memory.

Usage::

    python -m reprolint src benchmarks
    python -m reprolint src --format json --output report.json
    python -m reprolint --list-rules

Suppress a finding with a same-line pragma and a justification::

    _WORKER_STATE: dict = {}  # reprolint: disable=RPL003 -- per-worker
    # process state, installed exactly once by the pool initializer

or a whole file with ``# reprolint: disable-file=RPL008`` on any line.

See ``docs/development.md`` for the invariant-by-invariant rationale.
"""

from reprolint.core import Finding, LintContext, lint_file, lint_paths, lint_source
from reprolint.rules import RULES, Rule, all_rule_codes

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "LintContext",
    "RULES",
    "Rule",
    "all_rule_codes",
    "lint_file",
    "lint_paths",
    "lint_source",
    "__version__",
]
