"""Command-line front end: ``python -m reprolint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage error. The JSON format is
stable and consumed by CI (uploaded as an artifact), so additions are
fine but renames are not.
"""

from __future__ import annotations

import argparse
import collections
import json
import sys

from reprolint import __version__
from reprolint.core import Finding, lint_paths
from reprolint.rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-level invariant checker for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--version", action="version", version=f"reprolint {__version__}"
    )
    return parser


def _render_human(findings: list[Finding], checked: int) -> str:
    lines = [f.render() for f in findings]
    noun = "file" if checked == 1 else "files"
    if findings:
        lines.append(f"{len(findings)} finding(s) in {checked} {noun}")
    else:
        lines.append(f"clean: 0 findings in {checked} {noun}")
    return "\n".join(lines)


def _render_json(findings: list[Finding], checked: int) -> str:
    counts = collections.Counter(f.code for f in findings)
    return json.dumps(
        {
            "tool": "reprolint",
            "version": __version__,
            "checked_files": checked,
            "findings": [f.as_dict() for f in findings],
            "counts": dict(sorted(counts.items())),
        },
        indent=2,
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            scope = "/".join(rule.scope) if rule.scope else "everywhere"
            print(f"{code}  [{scope}]  {rule.summary}")
        return 0

    paths = args.paths or ["src", "benchmarks"]
    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        unknown = select - set(RULES)
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")

    findings, checked = lint_paths(list(paths), select=select)
    if checked == 0:
        parser.error(f"no python files found under: {' '.join(map(str, paths))}")

    if args.format == "json":
        report = _render_json(findings, checked)
    else:
        report = _render_human(findings, checked)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        summary = f"{len(findings)} finding(s)" if findings else "clean"
        print(f"reprolint: {summary}; report written to {args.output}")
    else:
        print(report)

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
