"""The lint engine: file walking, pragma suppression, rule dispatch.

A :class:`LintContext` bundles everything a rule needs about one file —
the parsed tree, the raw source lines, and the file's path normalized
to posix form relative to the lint root (so rule scopes like
``src/repro`` match regardless of the invoking directory). Pragmas are
parsed once per file from the token stream's comments, never from
string literals.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import os
import re
import tokenize
from pathlib import Path

__all__ = [
    "Finding",
    "LintContext",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: ``# reprolint: disable=RPL001,RPL002 -- optional justification``
_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*="
    r"\s*([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclasses.dataclass
class LintContext:
    """Everything the rules see about one file."""

    path: str  # posix-normalized, relative to the lint root when possible
    tree: ast.Module
    lines: list[str]
    #: line number -> set of rule codes disabled on that line
    line_pragmas: dict[int, set[str]]
    #: rule codes disabled for the whole file
    file_pragmas: set[str]

    def in_scope(self, prefixes: tuple[str, ...] | None) -> bool:
        """Whether this file falls under any of the scope prefixes.

        ``None`` means the rule applies everywhere. Matching is by path
        segment so ``src/repro`` matches ``src/repro/cli.py`` and
        ``/abs/repo/src/repro/cli.py`` but never ``src/repro_other``.
        """
        if prefixes is None:
            return True
        posix = self.path
        for prefix in prefixes:
            if posix == prefix or posix.startswith(prefix + "/"):
                return True
            if f"/{prefix}/" in posix:
                return True
        return False

    def matches_file(self, suffixes: tuple[str, ...]) -> bool:
        """Whether the file path ends with any of the given suffixes."""
        return any(
            self.path == suffix or self.path.endswith("/" + suffix)
            for suffix in suffixes
        )


def _parse_pragmas(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Collect line- and file-scoped pragmas from the comment tokens."""
    line_pragmas: dict[int, set[str]] = {}
    file_pragmas: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if not match:
                continue
            codes = {code.strip() for code in match.group(2).split(",")}
            if match.group(1) == "disable-file":
                file_pragmas |= codes
            else:
                line_pragmas.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass  # a truncated final token; the pragmas seen so far stand
    return line_pragmas, file_pragmas


def _normalize_path(path: str | Path, root: str | Path | None) -> str:
    """Posix path relative to ``root`` when possible, else as given."""
    text = str(path)
    if root is not None:
        try:
            text = os.path.relpath(text, str(root))
        except ValueError:
            pass  # different drive (windows); keep the original spelling
    return text.replace(os.sep, "/")


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    root: str | Path | None = None,
    select: set[str] | None = None,
) -> list[Finding]:
    """Lint one source string as if it lived at ``path``.

    The unit-test entry point: rules see the same :class:`LintContext`
    they would for an on-disk file, so good/bad snippet pairs exercise
    exactly the shipping code path.
    """
    from reprolint.rules import RULES

    normalized = _normalize_path(path, root)
    try:
        tree = ast.parse(source, filename=normalized)
    except SyntaxError as exc:
        return [
            Finding(
                path=normalized,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0),
                code="RPL000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    line_pragmas, file_pragmas = _parse_pragmas(source)
    ctx = LintContext(
        path=normalized,
        tree=tree,
        lines=source.splitlines(),
        line_pragmas=line_pragmas,
        file_pragmas=file_pragmas,
    )
    findings: list[Finding] = []
    for rule in RULES.values():
        if select is not None and rule.code not in select:
            continue
        if not ctx.in_scope(rule.scope):
            continue
        if rule.exempt_files and ctx.matches_file(rule.exempt_files):
            continue
        if rule.code in ctx.file_pragmas:
            continue
        for finding in rule.check(ctx):
            if finding.code in ctx.line_pragmas.get(finding.line, ()):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_file(
    path: str | Path,
    *,
    root: str | Path | None = None,
    select: set[str] | None = None,
) -> list[Finding]:
    """Lint one file on disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, str(path), root=root, select=select)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for child in p.rglob("*.py"):
                if "__pycache__" in child.parts:
                    continue
                if any(part.startswith(".") for part in child.parts):
                    continue
                out.add(child)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_paths(
    paths: list[str | Path],
    *,
    root: str | Path | None = None,
    select: set[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint files/directories; returns ``(findings, n_files_checked)``."""
    if root is None:
        root = os.getcwd()
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for file in files:
        findings.extend(lint_file(file, root=root, select=select))
    return sorted(findings), len(files)
