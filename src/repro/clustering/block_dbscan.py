"""BLOCK-DBSCAN (Chen et al. 2021), adapted to angular distance.

Like KNN-BLOCK DBSCAN this method reasons about *inner core blocks* —
balls of half the clustering radius in which every point is provably
core — but it discovers them with **cover-tree range queries** instead of
KNN queries, and it approximates the block-merge test with a bounded
number of alternating nearest-point iterations (the paper's ``RNT``
parameter, default 10). The trade-off knob the paper sweeps for this
baseline is the cover tree basis (1.1-5).

Algorithm outline:

1. repeatedly pick an unvisited point ``p`` and fetch its half-radius
   ball from the cover tree; if it holds at least ``tau`` points it is an
   inner core block (all members core, no more queries for them),
   otherwise ``p`` alone is resolved with one full-radius query;
2. merge blocks whose approximate minimum inter-block distance falls
   below ``eps`` (alternating projection, at most ``RNT`` rounds — may
   miss borderline merges, which is the method's quality approximation);
3. attach border points to their nearest core point within ``eps``.

Ball arithmetic is Euclidean-on-the-sphere via Equation 1 (a half-radius
Euclidean ball guarantees pairwise cosine distance below ``eps``; the
cosine "half" radius is ``eps / 4`` because the conversion is quadratic).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.clustering.union_find import UnionFind
from repro.distances import (
    check_unit_norm,
    euclidean_distance_to_many,
    euclidean_from_cosine,
    iter_distance_blocks,
)
from repro.engine_config import ExecutionConfig
from repro.exceptions import InvalidParameterError
from repro.index.cover_tree import CoverTree

__all__ = ["BlockDBSCAN"]


class BlockDBSCAN(Clusterer):
    """Block-based approximate DBSCAN over cover-tree range queries.

    Parameters
    ----------
    eps, tau:
        DBSCAN density parameters (cosine distance).
    base:
        Cover tree basis (paper default 2; swept 1.1-5 in the trade-off).
    rnt:
        Maximum iterations when approximating the minimum distance
        between two inner core blocks (paper default 10).
    execution:
        Execution policy. The default backend is the cover tree at
        ``base`` (an ``execution.index`` spec overrides it). On the
        default batched path seed queries route through the shared
        engine seam: which seeds get queried depends on earlier balls
        (visited members are skipped), so nothing is planned ahead and
        the backend answers per point either way — the seam buys uniform
        engine statistics and sharding. The algorithm itself visits each
        seed at most once, so no query repeats on either path.
    batch_queries:
        Deprecated: folds into ``execution`` (a ``DeprecationWarning``)
        and produces identical results.
    """

    algo_name = "block-dbscan"

    def __init__(
        self,
        eps: float,
        tau: int,
        base: float = 2.0,
        rnt: int = 10,
        batch_queries: bool | None = None,
        execution: ExecutionConfig | None = None,
    ) -> None:
        super().__init__(eps, tau, execution=execution)
        self._resolve_legacy_execution(batch_queries=batch_queries)
        if rnt < 1:
            raise InvalidParameterError(f"rnt must be >= 1; got {rnt}")
        self.base = float(base)
        self.rnt = int(rnt)

    def model_params(self) -> dict:
        params = super().model_params()
        params.update(base=self.base, rnt=self.rnt)
        return params

    def _default_index(self) -> CoverTree:
        return CoverTree(base=self.base)

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = check_unit_norm(X)
        n = X.shape[0]
        # Cosine threshold whose Euclidean equivalent is half the radius.
        half_eps_cos = self.eps / 4.0
        r_e = euclidean_from_cosine(self.eps)

        visited = np.zeros(n, dtype=bool)
        core_mask = np.zeros(n, dtype=bool)
        unit_of_point = np.full(n, -1, dtype=np.int64)
        blocks: list[np.ndarray] = []
        n_range_queries = 0

        with self._engine(X) as engine:
            fetch = engine.fetch
            for p in range(n):
                if visited[p]:
                    continue
                visited[p] = True
                # One full-radius query per seed; the half-radius ball is
                # the distance-filtered subset (same information as the
                # original half-then-full query pair, at half the tree
                # traversals).
                neighbors = fetch(p)
                n_range_queries += 1
                ball = neighbors[1.0 - X[neighbors] @ X[p] < half_eps_cos]
                if ball.size >= self.tau:
                    # Inner core block: pairwise Euclidean < r_e, all core.
                    fresh = ball[~core_mask[ball]]
                    core_mask[ball] = True
                    visited[ball] = True
                    unit_id = len(blocks)
                    blocks.append(ball)
                    unit_of_point[fresh] = unit_id
                elif neighbors.size >= self.tau:
                    # Sparse region: p alone is core (no block around it).
                    core_mask[p] = True
                    unit_id = len(blocks)
                    blocks.append(np.array([p], dtype=np.int64))
                    unit_of_point[p] = unit_id

            stats: dict[str, int | float] = {
                "range_queries": n_range_queries,
                "n_core": int(core_mask.sum()),
                "n_blocks": len(blocks),
            }
            stats.update(engine.stats())

        labels = self._merge_and_assign(X, core_mask, unit_of_point, blocks, r_e)
        return ClusteringResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Block merging
    # ------------------------------------------------------------------

    def _blocks_connected(
        self, X: np.ndarray, block_a: np.ndarray, block_b: np.ndarray, r_e: float
    ) -> bool:
        """Approximate min-distance test with at most ``rnt`` iterations.

        Alternating projection: hop between the blocks following nearest
        members. Converges to a local minimum of the inter-block
        distance; with few iterations borderline connections can be
        missed (the documented approximation of BLOCK-DBSCAN). Singleton
        "blocks" degenerate to exact point-to-block distance.
        """
        pts_a = X[block_a]
        pts_b = X[block_b]
        center_b = pts_b.mean(axis=0)
        a = int(np.argmin(euclidean_distance_to_many(center_b, pts_a)))
        prev_a = -1
        for _ in range(self.rnt):
            dists_b = euclidean_distance_to_many(pts_a[a], pts_b)
            b = int(np.argmin(dists_b))
            if dists_b[b] < r_e:
                return True
            dists_a = euclidean_distance_to_many(pts_b[b], pts_a)
            a_next = int(np.argmin(dists_a))
            if dists_a[a_next] < r_e:
                return True
            if a_next == prev_a or a_next == a:
                break  # converged to a local minimum
            prev_a, a = a, a_next
        return False

    def _merge_and_assign(
        self,
        X: np.ndarray,
        core_mask: np.ndarray,
        unit_of_point: np.ndarray,
        blocks: list[np.ndarray],
        r_e: float,
    ) -> np.ndarray:
        n = X.shape[0]
        labels = np.full(n, NOISE, dtype=np.int64)
        if not blocks:
            return labels
        uf = UnionFind(len(blocks))
        # Overlapping blocks share points: union them outright.
        for unit_id, members in enumerate(blocks):
            for q in members:
                other = unit_of_point[q]
                if other >= 0 and other != unit_id:
                    uf.union(unit_id, other)
        centers = np.stack([X[m].mean(axis=0) for m in blocks])
        radii = np.array(
            [
                float(euclidean_distance_to_many(c, X[m]).max())
                for c, m in zip(centers, blocks)
            ]
        )
        # Candidate pairs by center-distance bound, then RNT refinement.
        for i in range(len(blocks)):
            center_dists = euclidean_distance_to_many(centers[i], centers[i + 1 :])
            bounds = r_e + radii[i] + radii[i + 1 :]
            for offset in np.flatnonzero(center_dists <= bounds):
                j = i + 1 + int(offset)
                if uf.connected(i, j):
                    continue
                if self._blocks_connected(X, blocks[i], blocks[j], r_e):
                    uf.union(i, j)
        core_idx = np.flatnonzero(core_mask)
        for point in core_idx:
            labels[point] = uf.find(int(unit_of_point[point]))
        # Borders: nearest core point within eps (cosine).
        non_core = np.flatnonzero(~core_mask)
        if non_core.size and core_idx.size:
            core_X = X[core_idx]
            for start, stop, block in iter_distance_blocks(X[non_core], core_X):
                nearest = np.argmin(block, axis=1)
                nearest_dist = block[np.arange(block.shape[0]), nearest]
                chunk = non_core[start:stop]
                ok = nearest_dist < self.eps
                labels[chunk[ok]] = [
                    uf.find(int(unit_of_point[core_idx[j]])) for j in nearest[ok]
                ]
        return labels
