"""Baseline clustering algorithms the paper evaluates against.

* :class:`DBSCAN` — the original algorithm (Ester et al. 1996); its
  output is the paper's quality ground truth.
* :class:`DBSCANPlusPlus` — sampling-based variant (Jang & Jiang 2018);
  also the host algorithm of LAF-DBSCAN++.
* :class:`KNNBlockDBSCAN` — block-based variant driven by approximate
  KNN queries on a k-means tree (Chen et al. 2019).
* :class:`BlockDBSCAN` — block-based variant driven by cover-tree range
  queries with bounded merge iterations (Chen et al. 2021).
* :class:`RhoApproxDBSCAN` — grid-based rho-approximate DBSCAN
  (Gan & Tao 2015), included to reproduce the paper's finding that it is
  slower than plain DBSCAN in high dimensions (Table 4).

All operate on unit-normalized vectors under cosine distance with the
paper's neighborhood convention ``N(P) = {Q : d(P, Q) < eps}`` (a point
neighbors itself) and core test ``|N(P)| >= tau``.
"""

from repro.clustering.base import ClusteringResult, Clusterer
from repro.clustering.block_dbscan import BlockDBSCAN
from repro.clustering.dbscan import DBSCAN
from repro.clustering.dbscanpp import DBSCANPlusPlus
from repro.clustering.knn_block import KNNBlockDBSCAN
from repro.clustering.rho_approx import RhoApproxDBSCAN
from repro.clustering.union_find import UnionFind

__all__ = [
    "BlockDBSCAN",
    "Clusterer",
    "ClusteringResult",
    "DBSCAN",
    "DBSCANPlusPlus",
    "KNNBlockDBSCAN",
    "RhoApproxDBSCAN",
    "UnionFind",
]
