"""Disjoint-set union (union-find) with path compression and union by size.

Used wherever clusters merge: DBSCAN++ core-graph components,
block-merging in the block-based baselines, cell merging in
rho-approximate DBSCAN, and LAF's post-processing cluster merges.
"""

from __future__ import annotations

from collections import defaultdict

from repro.exceptions import InvalidParameterError

__all__ = ["UnionFind"]


class UnionFind:
    """Forest over the integers ``0 .. n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise InvalidParameterError(f"n must be non-negative; got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Current number of disjoint sets."""
        return self._n_components

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._n_components -= 1
        return ra

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` share a set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[int, list[int]]:
        """Mapping from representative to sorted members."""
        out: dict[int, list[int]] = defaultdict(list)
        for x in range(len(self._parent)):
            out[self.find(x)].append(x)
        return dict(out)
