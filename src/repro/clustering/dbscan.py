"""Original DBSCAN (Ester et al. 1996) under cosine distance.

This is Algorithm 1 of the paper *without* the red LAF insertions: one
range query per point, expansion of clusters through core points, noise
points reclaimable as borders. Its output is the ground truth every
approximate method is scored against in the paper's evaluation.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.distances.metric import COSINE, Metric
from repro.engine_config import ExecutionConfig
from repro.index.base import NeighborIndex

__all__ = ["DBSCAN"]

#: Internal sentinel for points not yet visited (paper: "undefined").
UNDEFINED = -2


class DBSCAN(Clusterer):
    """Exact density-based clustering with per-point range queries.

    Parameters
    ----------
    eps:
        Cosine-distance threshold; neighbors satisfy ``d(P, Q) < eps``.
    tau:
        Minimum neighborhood size (including the point itself) for a
        core point — the paper's "minimum number of neighbors".
    metric:
        "cosine" (default) or "euclidean" — the future-work extension.
    execution:
        Execution policy (:class:`~repro.engine_config.ExecutionConfig`):
        backend spec (default exact brute force in the chosen metric),
        sharding, batched-vs-per-point switch, engine block size, cache
        eviction. On the default batched path plain DBSCAN plans all
        ``n`` queries up front (every point is queried exactly once, in
        the outer loop or at its dequeue) and executes them as blocked
        matrix products; ``batch_queries=False`` keeps the per-point
        reference loop. The clustering is identical either way.
    index_factory, batch_queries:
        Deprecated: both fold into ``execution`` (a
        ``DeprecationWarning`` each) and produce identical results.

    Examples
    --------
    >>> from repro.data import load_dataset
    >>> ds = load_dataset("Glove-150k", scale=0.002, seed=0)
    >>> result = DBSCAN(eps=0.5, tau=3).fit(ds.X)
    >>> result.labels.shape == (ds.n_points,)
    True
    """

    algo_name = "dbscan"

    def __init__(
        self,
        eps: float,
        tau: int,
        index_factory: Callable[[], NeighborIndex] | None = None,
        metric: str | Metric = COSINE,
        batch_queries: bool | None = None,
        execution: ExecutionConfig | None = None,
    ) -> None:
        super().__init__(eps, tau, metric=metric, execution=execution)
        self._resolve_legacy_execution(index_factory, batch_queries)

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = self.metric.validate(X)
        n = X.shape[0]
        labels = np.full(n, UNDEFINED, dtype=np.int64)
        core_mask = np.zeros(n, dtype=bool)
        # Queue dedup: enqueueing a point twice is a semantic no-op (its
        # second visit hits the label check), so skip the duplicate.
        enqueued = np.zeros(n, dtype=bool)
        n_range_queries = 0
        cluster_id = -1

        # Every point's range query executes exactly once (in the outer
        # loop or at its dequeue), so the full visit order is a safe
        # prefetch plan: nothing speculative is ever computed.
        with self._engine(X, plan=np.arange(n)) as engine:
            fetch = engine.fetch
            for p in range(n):
                if labels[p] != UNDEFINED:
                    continue
                neighbors = fetch(p)
                n_range_queries += 1
                if neighbors.size < self.tau:
                    labels[p] = NOISE
                    continue
                cluster_id += 1
                labels[p] = cluster_id
                core_mask[p] = True
                # Expansion queue: the paper's growing seed set S = N - {P}.
                queue = neighbors[neighbors != p].tolist()
                enqueued[neighbors] = True
                head = 0
                while head < len(queue):
                    q = queue[head]
                    head += 1
                    if labels[q] == NOISE:
                        labels[q] = cluster_id  # noise reclaimed as border
                    if labels[q] != UNDEFINED:
                        continue
                    labels[q] = cluster_id
                    q_neighbors = fetch(q)
                    n_range_queries += 1
                    if q_neighbors.size >= self.tau:
                        core_mask[q] = True
                        fresh = q_neighbors[~enqueued[q_neighbors]]
                        enqueued[fresh] = True
                        queue.extend(fresh.tolist())

            stats: dict[str, int | float] = {"range_queries": n_range_queries}
            stats.update(engine.stats())
        return ClusteringResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            stats=stats,
        )
