"""Original DBSCAN (Ester et al. 1996) under cosine distance.

This is Algorithm 1 of the paper *without* the red LAF insertions: one
range query per point, expansion of clusters through core points, noise
points reclaimable as borders. Its output is the ground truth every
approximate method is scored against in the paper's evaluation.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.distances.metric import COSINE, Metric
from repro.index.base import NeighborIndex
from repro.index.brute_force import BruteForceIndex
from repro.index.engine import NeighborhoodCache, fresh_engine_index

__all__ = ["DBSCAN"]

#: Internal sentinel for points not yet visited (paper: "undefined").
UNDEFINED = -2


class DBSCAN(Clusterer):
    """Exact density-based clustering with per-point range queries.

    Parameters
    ----------
    eps:
        Cosine-distance threshold; neighbors satisfy ``d(P, Q) < eps``.
    tau:
        Minimum neighborhood size (including the point itself) for a
        core point — the paper's "minimum number of neighbors".
    index_factory:
        Builds the range-query index; ``None`` (default) uses exact brute
        force in the chosen metric.
    metric:
        "cosine" (default) or "euclidean" — the future-work extension.
    batch_queries:
        When True (default), neighborhoods are computed through the
        batched engine (:class:`~repro.index.engine.NeighborhoodCache`):
        plain DBSCAN queries every point exactly once, so all ``n``
        queries are planned up front and executed as blocked matrix
        products instead of a per-point Python loop. The clustering is
        identical either way; False keeps the per-point reference path.

    Examples
    --------
    >>> from repro.data import load_dataset
    >>> ds = load_dataset("Glove-150k", scale=0.002, seed=0)
    >>> result = DBSCAN(eps=0.5, tau=3).fit(ds.X)
    >>> result.labels.shape == (ds.n_points,)
    True
    """

    def __init__(
        self,
        eps: float,
        tau: int,
        index_factory: Callable[[], NeighborIndex] | None = None,
        metric: str | Metric = COSINE,
        batch_queries: bool = True,
    ) -> None:
        super().__init__(eps, tau, metric=metric)
        self.index_factory = index_factory
        self.batch_queries = bool(batch_queries)

    def _make_index(self) -> NeighborIndex:
        """The configured range-query backend, unbuilt."""
        if self.index_factory is None:
            return BruteForceIndex(metric=self.metric)
        return self.index_factory()

    def _build_index(self, X: np.ndarray) -> NeighborIndex:
        return self._make_index().build(X)

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = self.metric.validate(X)
        n = X.shape[0]
        engine: NeighborhoodCache | None = None
        if self.batch_queries:
            # Every point's range query executes exactly once (in the
            # outer loop or at its dequeue), so the full visit order is a
            # safe prefetch plan: nothing speculative is ever computed.
            # Each point is fetched exactly once, so serve-and-release
            # keeps resident memory to the prefetched-but-unserved tail.
            # The index is handed over *unbuilt* (fresh_engine_index):
            # the engine builds it exactly once — shard-first when
            # sharding is active, so no whole-dataset index is
            # constructed just to be discarded.
            engine = NeighborhoodCache(
                fresh_engine_index(self._make_index(), X),
                X,
                self.eps,
                evict_on_fetch=True,
            )
            engine.plan(np.arange(n))
            fetch = engine.fetch
        else:
            index = self._build_index(X)
            fetch = lambda p: index.range_query(X[p], self.eps)  # noqa: E731
        labels = np.full(n, UNDEFINED, dtype=np.int64)
        core_mask = np.zeros(n, dtype=bool)
        # Queue dedup: enqueueing a point twice is a semantic no-op (its
        # second visit hits the label check), so skip the duplicate.
        enqueued = np.zeros(n, dtype=bool)
        n_range_queries = 0
        cluster_id = -1

        try:
            for p in range(n):
                if labels[p] != UNDEFINED:
                    continue
                neighbors = fetch(p)
                n_range_queries += 1
                if neighbors.size < self.tau:
                    labels[p] = NOISE
                    continue
                cluster_id += 1
                labels[p] = cluster_id
                core_mask[p] = True
                # Expansion queue: the paper's growing seed set S = N - {P}.
                queue = neighbors[neighbors != p].tolist()
                enqueued[neighbors] = True
                head = 0
                while head < len(queue):
                    q = queue[head]
                    head += 1
                    if labels[q] == NOISE:
                        labels[q] = cluster_id  # noise reclaimed as border
                    if labels[q] != UNDEFINED:
                        continue
                    labels[q] = cluster_id
                    q_neighbors = fetch(q)
                    n_range_queries += 1
                    if q_neighbors.size >= self.tau:
                        core_mask[q] = True
                        fresh = q_neighbors[~enqueued[q_neighbors]]
                        enqueued[fresh] = True
                        queue.extend(fresh.tolist())

            stats: dict[str, int | float] = {"range_queries": n_range_queries}
            if engine is not None:
                stats.update(engine.stats())
        finally:
            # Deterministic release even when a query raises mid-fit: an
            # exception traceback pins this frame (and with it the
            # engine), so waiting for refcount collection would leak a
            # process executor's shared-memory segment until gc.
            if engine is not None:
                engine.close()
        return ClusteringResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            stats=stats,
        )
