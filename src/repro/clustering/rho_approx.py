"""rho-approximate DBSCAN (Gan & Tao, SIGMOD 2015 / TODS 2017).

Relaxes DBSCAN's density predicate by a multiplicative factor
``1 + rho``: the neighbor count used for the core test may include any
points between ``eps`` and ``eps * (1 + rho)``, and two core points may
be connected at up to ``eps * (1 + rho)``. In low dimensions this makes
DBSCAN run in near-linear time via a grid; in the high-dimensional
regime this paper studies the grid degenerates (every point its own
cell, candidate cells found by scanning), making the method *slower*
than plain DBSCAN — the exact effect Table 4 of the paper documents.
See :mod:`repro.index.grid` for the honest high-d adaptation.

Steps:

1. every cell with at least ``tau`` points is all-core (cell diagonal is
   ``eps``, so its points are pairwise within ``eps``);
2. remaining points get an approximate count obeying the rho sandwich;
3. cells containing core points merge when core points of the two cells
   are within ``eps`` (cells entirely within ``eps (1 + rho)`` of each
   other may merge without point-level checks — the approximation);
4. border points attach to any core point within ``eps``.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.clustering.union_find import UnionFind
from repro.distances import check_unit_norm, euclidean_from_cosine
from repro.engine_config import ExecutionConfig
from repro.exceptions import InvalidParameterError
from repro.index.grid import GridIndex

__all__ = ["RhoApproxDBSCAN"]


class RhoApproxDBSCAN(Clusterer):
    """Grid-based approximate DBSCAN with a rho-relaxed density predicate.

    Parameters
    ----------
    eps, tau:
        DBSCAN density parameters (cosine distance).
    rho:
        Approximation factor (> 0). The paper sets 1.0 in its evaluation
        (after finding the 0.001-0.1 range of the original work too slow
        in high dimensions).
    execution:
        Execution policy. The method is *defined* on its grid, so the
        grid always answers (an ``execution.index`` spec is ignored);
        the grid-specific approximate counts stay direct, while the
        exact border-attachment range queries route through the shared
        engine over the already-built grid. On the default batched path
        both run blockwise (the cell-center distance matrix is one
        blocked product instead of a per-point loop);
        ``batch_queries=False`` keeps the per-point reference loops.
        Identical output either way.
    batch_queries:
        Deprecated: folds into ``execution`` (a ``DeprecationWarning``)
        and produces identical results.
    """

    algo_name = "rho-approx"

    def __init__(
        self,
        eps: float,
        tau: int,
        rho: float = 1.0,
        batch_queries: bool | None = None,
        execution: ExecutionConfig | None = None,
    ) -> None:
        super().__init__(eps, tau, execution=execution)
        self._resolve_legacy_execution(batch_queries=batch_queries)
        if rho <= 0:
            raise InvalidParameterError(f"rho must be positive; got {rho}")
        self.rho = float(rho)

    def model_params(self) -> dict:
        params = super().model_params()
        params.update(rho=self.rho)
        return params

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = check_unit_norm(X)
        n = X.shape[0]
        grid = GridIndex(self.eps, self.rho).build(X)
        r_e = euclidean_from_cosine(self.eps)
        r_outer = r_e * (1.0 + self.rho)

        core_mask = np.zeros(n, dtype=bool)
        n_count_queries = 0
        # Rule 1: dense cells are all-core (pairwise within the diagonal).
        sizes = grid.cell_sizes()
        for cell in np.flatnonzero(sizes >= self.tau):
            core_mask[grid.cell_points[cell]] = True
        # Rule 2: everyone else gets an approximate count. The rho
        # sandwich is a grid-level contract, so these stay direct grid
        # calls on both execution paths.
        candidates = np.flatnonzero(~core_mask)
        n_count_queries += int(candidates.size)
        if candidates.size:
            if self.execution.batch_queries:
                counts = grid.batch_approx_range_count(X[candidates])
            else:
                counts = np.fromiter(
                    (grid.approx_range_count(X[p]) for p in candidates),
                    dtype=np.int64,
                    count=candidates.size,
                )
            core_mask[candidates[counts >= self.tau]] = True

        labels = np.full(n, NOISE, dtype=np.int64)
        core_cells = [
            cell
            for cell in range(grid.n_cells)
            if bool(core_mask[grid.cell_points[cell]].any())
        ]
        stats: dict[str, int | float] = {
            "count_queries": n_count_queries,
            "n_cells": grid.n_cells,
        }
        # The exact border queries are ordinary eps-range queries, so
        # they run through the shared engine over the already-built grid.
        with self._engine(X, prebuilt=grid) as engine:
            if core_cells:
                labels = self._merge_cells(
                    X, grid, core_mask, core_cells, r_e, r_outer, engine
                )
            stats["n_core"] = int(core_mask.sum())
            stats.update(engine.stats())
        return ClusteringResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            stats=stats,
        )

    def _merge_cells(
        self,
        X: np.ndarray,
        grid: GridIndex,
        core_mask: np.ndarray,
        core_cells: list[int],
        r_e: float,
        r_outer: float,
        engine,
    ) -> np.ndarray:
        n = X.shape[0]
        labels = np.full(n, NOISE, dtype=np.int64)
        cell_rank = {cell: i for i, cell in enumerate(core_cells)}
        uf = UnionFind(len(core_cells))
        core_members = {
            cell: grid.cell_points[cell][core_mask[grid.cell_points[cell]]]
            for cell in core_cells
        }
        for cell in core_cells:
            candidates = grid.cells_within(cell, r_outer)
            for other in candidates:
                other = int(other)
                if other == cell or other not in cell_rank:
                    continue
                if uf.connected(cell_rank[cell], cell_rank[other]):
                    continue
                if self._cells_connected(
                    X, core_members[cell], core_members[other], r_e, r_outer
                ):
                    uf.union(cell_rank[cell], cell_rank[other])
        for cell in core_cells:
            cluster = uf.find(cell_rank[cell])
            labels[core_members[cell]] = cluster
        # Borders: any core point within eps adopts the point. These are
        # exact eps-range queries, served through the shared engine (each
        # border point is fetched exactly once, so the whole set is a
        # safe prefetch plan).
        border_candidates = np.flatnonzero(~core_mask)
        if border_candidates.size:
            engine.plan(border_candidates)
            for p in border_candidates.tolist():
                neighbors = engine.fetch(p)
                core_neighbors = neighbors[core_mask[neighbors]]
                if core_neighbors.size:
                    labels[p] = labels[core_neighbors[0]]
        return labels

    def _cells_connected(
        self,
        X: np.ndarray,
        members_a: np.ndarray,
        members_b: np.ndarray,
        r_e: float,
        r_outer: float,
    ) -> bool:
        """Core-connectivity between two cells' core points.

        The rho relaxation permits connecting anything within
        ``eps (1 + rho)``; we connect exactly when the minimum core-core
        Euclidean distance is below ``r_e`` and *approximately* (allowed
        by the guarantee) when it is below ``r_outer`` and the cheap
        wholesale bound already proves it.
        """
        pts_a = X[members_a]
        pts_b = X[members_b]
        diff_sq = (
            np.einsum("ij,ij->i", pts_a, pts_a)[:, None]
            - 2.0 * (pts_a @ pts_b.T)
            + np.einsum("ij,ij->i", pts_b, pts_b)[None, :]
        )
        min_dist = float(np.sqrt(max(diff_sq.min(), 0.0)))
        if min_dist < r_e:
            return True
        # Approximate regime: connect when everything is within r_outer.
        return bool(np.sqrt(np.clip(diff_sq, 0.0, None)).max() < r_outer)
