"""DBSCAN++ (Jang & Jiang 2018): sampling-based approximate DBSCAN.

The paper's description (Section 3.1): sample a subset of data points,
detect core points *within the subset* w.r.t. the entire dataset, grow
clusters around those core points within the subset, then assign every
remaining unclassified point to its closest core point. The sample
fraction ``p`` is the efficiency/quality knob (the paper derives it from
the predicted core ratio, ``p = delta + R_c``).

Both uniform and greedy K-center initializations of the original paper
are implemented.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.clustering.components import connected_components_within
from repro.distances import check_unit_norm, iter_distance_blocks
from repro.engine_config import ExecutionConfig
from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["DBSCANPlusPlus"]

_INIT_METHODS = ("uniform", "k-center")


class DBSCANPlusPlus(Clusterer):
    """Approximate DBSCAN running the heavy computation on a sample.

    Parameters
    ----------
    eps, tau:
        DBSCAN density parameters (cosine distance, neighbor threshold).
    p:
        Sample fraction in (0, 1].
    init:
        ``"uniform"`` (default) or ``"k-center"`` (farthest-first
        traversal, as in the original paper).
    assign_within_eps:
        When True (default), an unsampled point joins its closest core
        point's cluster only if within ``eps`` of it, otherwise it stays
        noise — keeping DBSCAN's noise semantics. When False, every
        point is absorbed by its closest core point.
    seed:
        Sampling seed.
    execution:
        Execution policy. On the default batched path the per-sample
        core test runs through the engine's blocked ``count`` (the
        index's ``batch_range_count`` kernel, sharded when a sharding
        config is set); ``batch_queries=False`` keeps the per-point
        reference loop. Identical output either way.
    batch_queries:
        Deprecated: folds into ``execution`` (a ``DeprecationWarning``)
        and produces identical results.
    """

    algo_name = "dbscan++"

    def __init__(
        self,
        eps: float,
        tau: int,
        p: float = 0.3,
        init: str = "uniform",
        assign_within_eps: bool = True,
        seed: int | np.random.Generator | None = 0,
        batch_queries: bool | None = None,
        execution: ExecutionConfig | None = None,
    ) -> None:
        super().__init__(eps, tau, execution=execution)
        self._resolve_legacy_execution(batch_queries=batch_queries)
        if not 0.0 < p <= 1.0:
            raise InvalidParameterError(f"sample fraction p must lie in (0, 1]; got {p}")
        if init not in _INIT_METHODS:
            raise InvalidParameterError(
                f"init must be one of {_INIT_METHODS}; got {init!r}"
            )
        self.p = float(p)
        self.init = init
        self.assign_within_eps = bool(assign_within_eps)
        self._rng = ensure_rng(seed)

    def model_params(self) -> dict:
        params = super().model_params()
        params.update(
            p=self.p, init=self.init, assign_within_eps=self.assign_within_eps
        )
        return params

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _sample_indices(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        m = max(1, int(round(self.p * n)))
        if self.init == "uniform":
            return np.sort(self._rng.choice(n, size=m, replace=False))
        return self._k_center_indices(X, m)

    def _k_center_indices(self, X: np.ndarray, m: int) -> np.ndarray:
        """Greedy farthest-first traversal (2-approximate K-center)."""
        n = X.shape[0]
        chosen = np.empty(m, dtype=np.int64)
        chosen[0] = int(self._rng.integers(n))
        min_dists = 1.0 - X @ X[chosen[0]]
        for i in range(1, m):
            chosen[i] = int(np.argmax(min_dists))
            new_dists = 1.0 - X @ X[chosen[i]]
            np.minimum(min_dists, new_dists, out=min_dists)
        return np.sort(chosen)

    # ------------------------------------------------------------------
    # Clustering
    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = check_unit_norm(X)
        n = X.shape[0]
        sample = self._sample_indices(X)

        # Core detection within the sample, counted against the full set
        # (count-only: the engine's count surface never materializes or
        # caches the neighbor lists).
        with self._engine(X) as engine:
            counts = engine.count(sample)
            engine_stats = engine.stats()
        core_sample = sample[counts >= self.tau]
        stats = {
            "range_queries": int(sample.size),
            "sample_size": int(sample.size),
            "n_core": int(core_sample.size),
        }
        stats.update(engine_stats)
        if core_sample.size == 0:
            return ClusteringResult(
                labels=np.full(n, NOISE, dtype=np.int64),
                core_mask=np.zeros(n, dtype=bool),
                stats=stats,
            )

        # Connect core points that are mutual eps-neighbors.
        core_X = X[core_sample]
        core_labels = connected_components_within(core_X, self.eps)

        # Every point joins its closest core point's cluster.
        labels = np.full(n, NOISE, dtype=np.int64)
        for start, stop, block in iter_distance_blocks(X, core_X):
            nearest = np.argmin(block, axis=1)
            nearest_dist = block[np.arange(block.shape[0]), nearest]
            assigned = core_labels[nearest]
            if self.assign_within_eps:
                assigned = np.where(nearest_dist < self.eps, assigned, NOISE)
            labels[start:stop] = assigned
        # Core points always belong to their own cluster.
        labels[core_sample] = core_labels

        core_mask = np.zeros(n, dtype=bool)
        core_mask[core_sample] = True
        return ClusteringResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            stats=stats,
        )
