"""KNN-BLOCK DBSCAN (Chen et al. 2019), adapted to angular distance.

Accelerates DBSCAN by replacing per-point range queries with approximate
KNN queries on a FLANN-style k-means tree, then reasoning about whole
*blocks* of points at once:

* if the tau-th nearest neighbor of ``p`` lies within half the radius,
  every point within that half-radius ball is provably core ("core
  block") and needs no further queries;
* if the tau-th neighbor lies beyond the radius, points sufficiently
  close to ``p`` are provably non-core and are dismissed together
  ("non-core block", via the triangle inequality);
* the remaining points are classified individually from their own KNN
  result.

Approximation enters through the k-means tree: with a low
``checks_ratio`` the tau-th neighbor distance is overestimated and some
cores are missed — the trade-off knobs the paper sweeps are exactly the
tree's branching factor (3-20) and leaves-checked ratio (0.001-0.3).

All ball arithmetic happens in the Euclidean metric on the unit sphere
(triangle inequality required), converting via the paper's Equation 1.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.clustering.union_find import UnionFind
from repro.distances import (
    check_unit_norm,
    euclidean_from_cosine,
    iter_distance_blocks,
)
from repro.exceptions import InvalidParameterError
from repro.index.kmeans_tree import KMeansTree
from repro.rng import ensure_rng

__all__ = ["KNNBlockDBSCAN"]


class KNNBlockDBSCAN(Clusterer):
    """Block-based approximate DBSCAN on top of approximate KNN.

    Parameters
    ----------
    eps, tau:
        DBSCAN density parameters (cosine distance).
    branching:
        K-means tree branching factor (paper default 10).
    checks_ratio:
        Fraction of tree leaves inspected per query (paper default 0.6).
    block_k:
        How many neighbors each KNN query fetches, as a multiple of
        ``tau``; larger values form larger blocks per query.
    seed:
        Seed for the k-means tree.
    execution:
        Accepted for interface parity (the registry facade passes one to
        every clusterer). The method is defined on approximate *KNN*
        queries over its own k-means tree — there is no range-query
        engine to configure — so only the config's presence is honored;
        backend/sharding/batching fields do not apply.
    """

    algo_name = "knn-block"

    def __init__(
        self,
        eps: float,
        tau: int,
        branching: int = 10,
        checks_ratio: float = 0.6,
        block_k: int = 4,
        seed: int | np.random.Generator | None = 0,
        execution=None,
    ) -> None:
        super().__init__(eps, tau, execution=execution)
        if block_k < 1:
            raise InvalidParameterError(f"block_k must be >= 1; got {block_k}")
        self.branching = int(branching)
        self.checks_ratio = float(checks_ratio)
        self.block_k = int(block_k)
        self._rng = ensure_rng(seed)

    def model_params(self) -> dict:
        params = super().model_params()
        params.update(
            branching=self.branching,
            checks_ratio=self.checks_ratio,
            block_k=self.block_k,
        )
        return params

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = check_unit_norm(X)
        n = X.shape[0]
        r_e = euclidean_from_cosine(self.eps)  # full radius, Euclidean
        half_r = r_e / 2.0

        tree = KMeansTree(
            branching=self.branching,
            checks_ratio=self.checks_ratio,
            seed=self._rng,
        ).build(X)

        visited = np.zeros(n, dtype=bool)
        core_mask = np.zeros(n, dtype=bool)
        # Unit id per point: core blocks and individual cores become
        # union-find members; -1 = not part of any core unit.
        unit_of_point = np.full(n, -1, dtype=np.int64)
        units: list[np.ndarray] = []
        n_knn_queries = 0
        k = max(self.tau, self.tau * self.block_k)

        for p in range(n):
            if visited[p]:
                continue
            visited[p] = True
            idx, dists_cos = tree.knn_query(X[p], k)
            n_knn_queries += 1
            dists_e = np.sqrt(2.0 * np.clip(dists_cos, 0.0, None))
            if idx.size < self.tau:
                continue  # degenerate tiny dataset: p cannot be core
            d_tau = dists_e[self.tau - 1]
            if d_tau < half_r:
                # Core block: everything within half_r of p is core.
                members = idx[dists_e < half_r]
                fresh = members[~core_mask[members]]
                core_mask[members] = True
                visited[members] = True
                unit_id = len(units)
                units.append(members)
                unit_of_point[fresh] = unit_id
            elif d_tau >= r_e:
                # Non-core block: q with d(p,q) < d_tau - r_e cannot have
                # tau neighbors within r_e (triangle inequality).
                dismiss = idx[dists_e < (d_tau - r_e)]
                visited[dismiss] = True
            else:
                # Individual decision: core iff tau-th neighbor inside r_e.
                core_mask[p] = True
                unit_id = len(units)
                units.append(np.array([p], dtype=np.int64))
                unit_of_point[p] = unit_id

        labels = self._merge_and_assign(X, core_mask, unit_of_point, units)
        return ClusteringResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            stats={
                "knn_queries": n_knn_queries,
                "n_core": int(core_mask.sum()),
                "n_blocks": len(units),
            },
        )

    def _merge_and_assign(
        self,
        X: np.ndarray,
        core_mask: np.ndarray,
        unit_of_point: np.ndarray,
        units: list[np.ndarray],
    ) -> np.ndarray:
        """Union core units connected within eps; attach borders."""
        n = X.shape[0]
        labels = np.full(n, NOISE, dtype=np.int64)
        core_idx = np.flatnonzero(core_mask)
        if core_idx.size == 0:
            return labels
        uf = UnionFind(len(units))
        core_X = X[core_idx]
        # A core point may appear in several blocks (overlap): its home
        # unit is the first one that claimed it; overlaps union below.
        core_units = np.array(
            [unit_of_point[i] if unit_of_point[i] >= 0 else 0 for i in core_idx]
        )
        for unit_id, members in enumerate(units):
            for q in members:
                other = unit_of_point[q]
                if other >= 0 and other != unit_id:
                    uf.union(unit_id, other)
        # Core-core connectivity within eps (cosine strict <).
        for start, stop, block in iter_distance_blocks(core_X, core_X):
            rows, cols = np.nonzero(block < self.eps)
            for r, c in zip(rows.tolist(), cols.tolist()):
                if start + r < c:
                    uf.union(int(core_units[start + r]), int(core_units[c]))
        for i, point in enumerate(core_idx):
            labels[point] = uf.find(int(core_units[i]))
        # Borders: nearest core point within eps.
        non_core = np.flatnonzero(~core_mask)
        if non_core.size:
            for start, stop, block in iter_distance_blocks(X[non_core], core_X):
                nearest = np.argmin(block, axis=1)
                nearest_dist = block[np.arange(block.shape[0]), nearest]
                chunk = non_core[start:stop]
                ok = nearest_dist < self.eps
                labels[chunk[ok]] = [uf.find(int(core_units[j])) for j in nearest[ok]]
        return labels
