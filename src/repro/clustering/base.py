"""Shared clustering result type and the clusterer interface."""

from __future__ import annotations

import abc
import contextlib
import dataclasses

import numpy as np

from repro.distances.metric import COSINE, Metric, get_metric
from repro.engine_config import ExecutionConfig, IndexSpec
from repro.exceptions import InvalidParameterError, RemovedAPIError
from repro.index.brute_force import BruteForceIndex
from repro.index.engine import NeighborhoodCache, PerPointQueries, fresh_engine_index

__all__ = [
    "NOISE",
    "ClusteringResult",
    "Clusterer",
    "canonicalize_labels",
    "resolve_index_spec",
]

#: Label value for noise points in every result of this library.
NOISE = -1


def canonicalize_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel clusters to ``0 .. k-1`` in order of first appearance.

    Noise (``-1``) is preserved. Makes results deterministic and
    comparable regardless of internal id assignment order. Vectorized:
    one ``np.unique(return_inverse)`` pass plus a first-appearance rank,
    no per-element Python loop.
    """
    labels = np.asarray(labels, dtype=np.int64)
    out = np.full_like(labels, NOISE)
    clustered = np.flatnonzero(labels != NOISE)
    if clustered.size == 0:
        return out
    uniq, inverse = np.unique(labels[clustered], return_inverse=True)
    # Position of each unique label's first appearance, then the rank of
    # those positions = the label's first-appearance order.
    first_pos = np.full(uniq.size, labels.size, dtype=np.int64)
    np.minimum.at(first_pos, inverse, clustered)
    rank = np.empty(uniq.size, dtype=np.int64)
    rank[np.argsort(first_pos, kind="stable")] = np.arange(uniq.size)
    out[clustered] = rank[inverse]
    return out


@dataclasses.dataclass
class ClusteringResult:
    """Labels plus the operational statistics the paper analyses.

    Attributes
    ----------
    labels:
        Cluster id per point, ``-1`` for noise, clusters numbered
        ``0 .. k-1`` in first-appearance order.
    core_mask:
        Boolean core-point indicator where the algorithm determines it
        (None for methods that never materialize core status per point).
    stats:
        Method-specific counters, e.g. ``range_queries`` (executed range
        queries), ``cardest_calls`` / ``skipped_queries`` /
        ``fn_detected`` / ``merges`` for LAF methods.
    """

    labels: np.ndarray
    core_mask: np.ndarray | None = None
    stats: dict[str, int | float] = dataclasses.field(default_factory=dict)

    @property
    def n_points(self) -> int:
        return int(self.labels.shape[0])

    @property
    def n_clusters(self) -> int:
        non_noise = self.labels[self.labels != NOISE]
        return int(np.unique(non_noise).size)

    @property
    def noise_ratio(self) -> float:
        if self.labels.size == 0:
            return 0.0
        return float(np.count_nonzero(self.labels == NOISE) / self.labels.size)

    def cluster_members(self, cluster_id: int) -> np.ndarray:
        """Indices of the points in one cluster."""
        return np.flatnonzero(self.labels == cluster_id)


def resolve_index_spec(spec: IndexSpec | None, metric: Metric, default=None):
    """Resolve an execution config's index spec under a host's metric.

    A named spec carries no metric of its own, so the host's metric is
    threaded into backends that take one (brute force) — otherwise
    ``IndexSpec("brute_force")`` would silently answer cosine queries
    under a euclidean host. The tree/grid backends are tied to the unit
    sphere by their Equation 1 conversions, so naming one under a
    non-cosine metric is a configuration error, not a silent
    degradation. Custom factory specs wire their own metric.

    ``default`` is a zero-argument callable used when ``spec`` is None
    (a brute-force index in the host's metric if omitted). Shared by
    clusterer fits and :class:`~repro.persistence.ClusterModel` serving,
    so a loaded model resolves its query backend exactly like the fit
    that produced it.
    """
    if spec is None:
        if default is not None:
            return default()
        return BruteForceIndex(metric=metric)
    if spec.is_custom:
        return spec.make()
    if spec.name == "brute_force":
        if "metric" not in spec.kwargs:
            return BruteForceIndex(metric=metric, **spec.kwargs)
        spec_metric = get_metric(spec.kwargs["metric"])
        if spec_metric.name != metric.name:
            raise InvalidParameterError(
                f"IndexSpec metric {spec_metric.name!r} contradicts the "
                f"clusterer's metric {metric.name!r}; drop the "
                "spec's 'metric' kwarg to inherit the clusterer's"
            )
        return spec.make()
    if metric.name != COSINE.name:
        raise InvalidParameterError(
            f"index backend {spec.name!r} is tied to cosine distance "
            f"(Equation 1) and cannot serve metric={metric.name!r}; "
            "use a brute_force spec or a custom factory"
        )
    return spec.make()


class Clusterer(abc.ABC):
    """Interface of every clustering algorithm in this library.

    Construction fixes the hyperparameters; :meth:`fit` runs the
    algorithm on one dataset and returns a :class:`ClusteringResult`.

    The default metric is cosine distance (the paper's setting). DBSCAN
    and LAF-DBSCAN also accept ``metric="euclidean"`` (the paper's
    future-work extension); the tree/grid-based baselines are tied to
    the unit sphere by their Equation 1 conversions and stay cosine.

    Execution policy — backend choice, batching, sharding, cache
    eviction — is one declarative
    :class:`~repro.engine_config.ExecutionConfig` passed as
    ``execution``; :meth:`_engine` resolves it into the engine a fit
    queries through. Nothing about execution lives in global state, so
    concurrent fits with different configurations cannot interfere.
    """

    #: Registry name of the algorithm (overridden per subclass); recorded
    #: in saved :class:`~repro.persistence.ClusterModel` artifacts.
    algo_name: str = ""

    def __init__(
        self,
        eps: float,
        tau: int,
        metric: str | Metric = COSINE,
        execution: ExecutionConfig | None = None,
    ) -> None:
        self.metric = get_metric(metric)
        self.metric.check_eps(eps)
        if tau < 1:
            raise InvalidParameterError(f"tau must be at least 1; got {tau}")
        self.eps = float(eps)
        self.tau = int(tau)
        if execution is None:
            execution = ExecutionConfig()
        elif not isinstance(execution, ExecutionConfig):
            raise InvalidParameterError(
                "execution must be an ExecutionConfig or None; "
                f"got {type(execution).__name__}"
            )
        self.execution = execution

    # ------------------------------------------------------------------
    # Execution resolution
    # ------------------------------------------------------------------

    def _resolve_legacy_execution(
        self,
        index_factory=None,
        batch_queries: bool | None = None,
    ) -> None:
        """Reject the retired ``index_factory=`` / ``batch_queries=`` kwargs.

        The PR 5 deprecation cycle is over: the kwargs survive in the
        constructor signatures only so that passing one raises a typed
        :class:`~repro.exceptions.RemovedAPIError` naming the
        :class:`ExecutionConfig` replacement (instead of an opaque
        ``TypeError: unexpected keyword argument``).
        """
        owner = type(self).__name__
        if index_factory is not None:
            raise RemovedAPIError(
                f"{owner}(index_factory=...) was removed after its "
                "deprecation cycle; pass "
                "execution=ExecutionConfig(index=IndexSpec(name, kwargs)) "
                "(or IndexSpec.custom(factory) for a custom backend)"
            )
        if batch_queries is not None:
            raise RemovedAPIError(
                f"{owner}(batch_queries=...) was removed after its "
                "deprecation cycle; pass "
                "execution=ExecutionConfig(batch_queries=...)"
            )

    def _default_index(self):
        """The backend used when the execution config names none."""
        return BruteForceIndex(metric=self.metric)

    def _make_index(self):
        """Resolve :attr:`execution`'s index spec in this clusterer's metric.

        Delegates to :func:`resolve_index_spec` (shared with the serving
        path) with this clusterer's default backend.
        """
        return resolve_index_spec(
            self.execution.index, self.metric, default=self._default_index
        )

    @contextlib.contextmanager
    def _engine(self, X: np.ndarray, *, plan=None, prebuilt=None):
        """The shared engine lifecycle of every fit.

        Resolves :attr:`execution` into a query engine over ``X`` —
        :class:`~repro.index.engine.NeighborhoodCache` (batched path,
        handed the *unbuilt* backend so it builds exactly once,
        shard-first when sharding is configured) or
        :class:`~repro.index.engine.PerPointQueries` (the per-point
        reference path) — optionally pre-planning ``plan``, and closes
        it deterministically on exit. The ``finally`` matters: a fit
        raising mid-query pins its frame in the traceback, so without
        an explicit close a process executor's shared-memory segment
        would leak until gc.

        ``prebuilt`` hands over an already-built substrate instead of
        resolving one from the config (ρ-approximate DBSCAN's grid,
        which the algorithm also needs directly).
        """
        cfg = self.execution
        if cfg.batch_queries:
            if prebuilt is not None:
                backend = prebuilt
            else:
                backend = fresh_engine_index(self._make_index(), X)
            engine = NeighborhoodCache(
                backend,
                X,
                self.eps,
                block_size=cfg.query_block,
                sharding=cfg.sharding,
                evict_on_fetch=cfg.evict_on_fetch,
            )
        else:
            if prebuilt is not None:
                backend = prebuilt
            else:
                backend = self._make_index().build(X)
            engine = PerPointQueries(backend, X, self.eps)
        try:
            if plan is not None:
                engine.plan(plan)
            yield engine
        finally:
            engine.close()

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def fit(self, X: np.ndarray) -> ClusteringResult:
        """Cluster the rows of ``X`` (unit-normalized vectors)."""

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Convenience: :meth:`fit` and return only the labels."""
        return self.fit(X).labels

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def model_params(self) -> dict:
        """JSON-safe hyperparameters recorded in a saved model.

        Subclasses extend with their own knobs; everything here must
        survive a JSON round-trip unchanged.
        """
        return {"eps": self.eps, "tau": self.tau, "metric": self.metric.name}

    def fit_model(self, X: np.ndarray):
        """Fit and freeze the result as a :class:`~repro.persistence.ClusterModel`.

        The model holds the labels, core mask and enough execution
        metadata to serve ``predict(X_new)`` and survive
        ``save(path)`` / :func:`repro.persistence.load_model`. Requires
        the algorithm to materialize per-point core status.
        """
        from repro.exceptions import PersistenceError
        from repro.persistence import ClusterModel

        X = self.metric.validate(X)
        result = self.fit(X)
        if result.core_mask is None:
            raise PersistenceError(
                f"{type(self).__name__} does not materialize per-point "
                "core status, so its fits cannot be frozen into a "
                "servable ClusterModel"
            )
        estimator = getattr(getattr(self, "laf", None), "estimator", None)
        return ClusterModel(
            points=X,
            labels=result.labels,
            core_mask=result.core_mask,
            algo=self.algo_name or type(self).__name__,
            params=self.model_params(),
            metric=self.metric,
            execution=self.execution,
            estimator=estimator,
        )
