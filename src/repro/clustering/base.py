"""Shared clustering result type and the clusterer interface."""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.distances.metric import COSINE, Metric, get_metric
from repro.exceptions import InvalidParameterError

__all__ = ["NOISE", "ClusteringResult", "Clusterer", "canonicalize_labels"]

#: Label value for noise points in every result of this library.
NOISE = -1


def canonicalize_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel clusters to ``0 .. k-1`` in order of first appearance.

    Noise (``-1``) is preserved. Makes results deterministic and
    comparable regardless of internal id assignment order.
    """
    labels = np.asarray(labels, dtype=np.int64)
    out = np.full_like(labels, NOISE)
    mapping: dict[int, int] = {}
    for i, label in enumerate(labels):
        if label == NOISE:
            continue
        if label not in mapping:
            mapping[label] = len(mapping)
        out[i] = mapping[label]
    return out


@dataclasses.dataclass
class ClusteringResult:
    """Labels plus the operational statistics the paper analyses.

    Attributes
    ----------
    labels:
        Cluster id per point, ``-1`` for noise, clusters numbered
        ``0 .. k-1`` in first-appearance order.
    core_mask:
        Boolean core-point indicator where the algorithm determines it
        (None for methods that never materialize core status per point).
    stats:
        Method-specific counters, e.g. ``range_queries`` (executed range
        queries), ``cardest_calls`` / ``skipped_queries`` /
        ``fn_detected`` / ``merges`` for LAF methods.
    """

    labels: np.ndarray
    core_mask: np.ndarray | None = None
    stats: dict[str, int | float] = dataclasses.field(default_factory=dict)

    @property
    def n_points(self) -> int:
        return int(self.labels.shape[0])

    @property
    def n_clusters(self) -> int:
        non_noise = self.labels[self.labels != NOISE]
        return int(np.unique(non_noise).size)

    @property
    def noise_ratio(self) -> float:
        if self.labels.size == 0:
            return 0.0
        return float(np.count_nonzero(self.labels == NOISE) / self.labels.size)

    def cluster_members(self, cluster_id: int) -> np.ndarray:
        """Indices of the points in one cluster."""
        return np.flatnonzero(self.labels == cluster_id)


class Clusterer(abc.ABC):
    """Interface of every clustering algorithm in this library.

    Construction fixes the hyperparameters; :meth:`fit` runs the
    algorithm on one dataset and returns a :class:`ClusteringResult`.

    The default metric is cosine distance (the paper's setting). DBSCAN
    and LAF-DBSCAN also accept ``metric="euclidean"`` (the paper's
    future-work extension); the tree/grid-based baselines are tied to
    the unit sphere by their Equation 1 conversions and stay cosine.
    """

    def __init__(self, eps: float, tau: int, metric: str | Metric = COSINE) -> None:
        self.metric = get_metric(metric)
        self.metric.check_eps(eps)
        if tau < 1:
            raise InvalidParameterError(f"tau must be at least 1; got {tau}")
        self.eps = float(eps)
        self.tau = int(tau)

    @abc.abstractmethod
    def fit(self, X: np.ndarray) -> ClusteringResult:
        """Cluster the rows of ``X`` (unit-normalized vectors)."""

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Convenience: :meth:`fit` and return only the labels."""
        return self.fit(X).labels
