"""Connected components of the eps-proximity graph over a point set.

DBSCAN++ (and LAF-DBSCAN++) cluster their detected core points by
connecting any two within ``eps``. Materializing all edges is quadratic
in the worst case, so this helper runs a BFS whose adjacency test is one
matrix-vector product per visited point — O(m) BLAS calls total, no
Python-level pair loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["connected_components_within"]


def connected_components_within(X: np.ndarray, eps: float) -> np.ndarray:
    """Component id per row of ``X`` under cosine-distance-< eps adjacency.

    Returns an int array of component labels ``0 .. k-1`` (every row gets
    one; singletons form their own components).
    """
    X = np.asarray(X, dtype=np.float64)
    m = X.shape[0]
    labels = np.full(m, -1, dtype=np.int64)
    component = -1
    for start in range(m):
        if labels[start] != -1:
            continue
        component += 1
        labels[start] = component
        frontier = [start]
        while frontier:
            node = frontier.pop()
            dists = 1.0 - X @ X[node]
            neighbors = np.flatnonzero((dists < eps) & (labels == -1))
            if neighbors.size:
                labels[neighbors] = component
                frontier.extend(neighbors.tolist())
    return labels
