"""First-class execution configuration for the clustering engine.

Execution policy — which range-query backend answers the queries, how
they batch, whether they shard, how cached neighborhoods are evicted —
used to be scattered across per-clusterer ``index_factory`` /
``batch_queries`` constructor kwargs and a process-wide mutable sharding
global. This module replaces all of it with two small declarative
objects:

* :class:`IndexSpec` — a picklable, registry-resolved description of a
  range-query backend (``name`` + constructor ``kwargs``), with an
  escape hatch (:meth:`IndexSpec.custom`) for arbitrary user factories;
* :class:`ExecutionConfig` — the complete execution policy of one fit:
  the index spec, an optional
  :class:`~repro.index.sharded.ShardingConfig`, the batched-vs-per-point
  switch, the engine block size and the cache eviction policy.

Every clusterer accepts ``execution=ExecutionConfig(...)`` and resolves
its engine through one shared helper
(:meth:`repro.clustering.base.Clusterer._engine`), so two concurrent
fits with different configurations can never interfere: nothing about
execution lives in module state anymore.

Both objects are value types (frozen dataclasses) and — apart from the
custom-factory escape hatch — JSON-serializable through
:meth:`ExecutionConfig.to_dict` / :meth:`ExecutionConfig.from_dict`,
which is the wire format a remote worker pool needs to reconstruct the
same execution policy elsewhere.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping

from repro.exceptions import InvalidParameterError
from repro.index.engine import DEFAULT_QUERY_BLOCK
from repro.index.sharded import INNER_BACKENDS, ShardingConfig, make_inner_backend

__all__ = [
    "DEFAULT_ENGINE_BLOCK",
    "ExecutionConfig",
    "IndexSpec",
]

#: Default number of queries per batched engine call — by construction
#: the :class:`~repro.index.engine.NeighborhoodCache` block-size default.
DEFAULT_ENGINE_BLOCK = DEFAULT_QUERY_BLOCK

#: Name under which custom factory-backed specs appear (never registered,
#: so it can't collide with a real backend).
_CUSTOM = "custom"

#: Cache eviction policies: "serve" releases each neighborhood as soon as
#: it is served (every clusterer here fetches each point at most once, so
#: this bounds resident memory to the prefetched-but-unserved tail);
#: "keep" retains every computed neighborhood for the fit's lifetime.
EVICTION_POLICIES = ("serve", "keep")


@dataclasses.dataclass(frozen=True)
class IndexSpec:
    """Declarative description of a range-query backend.

    Parameters
    ----------
    name:
        A registered backend name (``"brute_force"``, ``"cover_tree"``,
        ``"kmeans_tree"``, ``"grid"``) — the same registry worker
        processes rebuild shard indexes from, so a named spec is always
        picklable and shard-compatible.
    kwargs:
        Constructor arguments for the named backend (JSON-safe values:
        the grid's ``eps``/``rho``, the cover tree's ``base``, ...).
    factory:
        Escape hatch for custom backends: a zero-argument callable
        returning an unbuilt index. Factory specs resolve and fit like
        any other but are not serializable and (lacking a registered
        rebuild spec) run unsharded. Build one with
        :meth:`IndexSpec.custom` rather than by hand.
    """

    name: str
    kwargs: Mapping[str, object] = dataclasses.field(default_factory=dict)
    factory: Callable[[], object] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        if self.factory is not None:
            if not callable(self.factory):
                raise InvalidParameterError(
                    f"factory must be callable; got {type(self.factory).__name__}"
                )
        elif self.name not in INNER_BACKENDS:
            raise InvalidParameterError(
                f"unknown index backend {self.name!r}; "
                f"available: {', '.join(sorted(INNER_BACKENDS))} "
                "(or IndexSpec.custom(factory) for a custom backend)"
            )

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the kwargs
        # dict (a plain dict keeps the spec picklable); hash the sorted
        # items instead so equal specs hash equal and the spec works as
        # a dict key / set member like any value type.
        return hash((self.name, tuple(sorted(self.kwargs.items())), self.factory))

    @classmethod
    def custom(cls, factory: Callable[[], object]) -> "IndexSpec":
        """A spec wrapping a zero-argument factory for a custom backend."""
        return cls(name=_CUSTOM, factory=factory)

    @property
    def is_custom(self) -> bool:
        """Whether this spec resolves through a user factory."""
        return self.factory is not None

    def make(self) -> object:
        """Construct the (unbuilt) backend this spec describes."""
        if self.factory is not None:
            return self.factory()
        return make_inner_backend(self.name, dict(self.kwargs))

    def to_dict(self) -> dict:
        """JSON-safe representation; rejects custom factory specs."""
        if self.factory is not None:
            raise InvalidParameterError(
                "custom IndexSpec factories are not serializable; use a "
                "registered backend name to cross a process boundary"
            )
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    def wire_dict(self) -> dict:
        """Like :meth:`to_dict`, but records custom specs as a marker.

        A saved artifact must record *that* a fit used a custom factory
        even though the factory itself cannot cross a process boundary;
        the persistence loader turns the marker into an actionable
        error instead of silently substituting a default backend.
        """
        if self.factory is not None:
            return {"name": _CUSTOM}
        return self.to_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "IndexSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        data = _checked_mapping(data, {"name", "kwargs"}, "IndexSpec")
        if "name" not in data:
            raise InvalidParameterError("IndexSpec dict is missing 'name'")
        kwargs = data.get("kwargs", {})
        if not isinstance(kwargs, Mapping):
            raise InvalidParameterError(
                f"IndexSpec 'kwargs' must be a mapping; got {type(kwargs).__name__}"
            )
        return cls(name=str(data["name"]), kwargs=dict(kwargs))


#: The JSON-visible fields of ShardingConfig (kept in lockstep with the
#: dataclass; a mismatch fails the round-trip tests).
_SHARDING_FIELDS = ("n_shards", "executor", "n_workers", "query_block")


@dataclasses.dataclass(frozen=True)
class ExecutionConfig:
    """The complete execution policy of one clusterer fit.

    Parameters
    ----------
    index:
        Range-query backend spec, or None for the clusterer's default
        substrate (brute force for DBSCAN and the sampling variants, the
        cover tree for BLOCK-DBSCAN; ρ-approximate DBSCAN is defined on
        its grid and always uses it).
    sharding:
        Optional :class:`~repro.index.sharded.ShardingConfig`: fan range
        queries across row shards (any registered executor — serial,
        thread, process, remote). Threaded explicitly into the engine —
        no global state — so concurrent fits with different sharding
        cannot interfere. ``None`` (the default) and ``False`` both mean
        unsharded execution; the distinction survives the wire format
        because ``False`` records an explicit opt-out.
    batch_queries:
        True (default) routes neighborhood computation through the
        batched engine; False keeps the per-point reference loop the
        differential tests diff against. Identical output either way.
    query_block:
        Maximum queries per batched engine call (the
        :class:`~repro.index.engine.NeighborhoodCache` block size).
    cache_eviction:
        ``"serve"`` (default) releases each neighborhood as soon as it
        is served — safe for every clusterer here, which fetches each
        point at most once — while ``"keep"`` retains all computed
        neighborhoods for the fit's lifetime.
    """

    index: IndexSpec | None = None
    sharding: "ShardingConfig | None | bool" = None
    batch_queries: bool = True
    query_block: int = DEFAULT_ENGINE_BLOCK
    cache_eviction: str = "serve"

    def __post_init__(self) -> None:
        if self.index is not None and not isinstance(self.index, IndexSpec):
            raise InvalidParameterError(
                f"index must be an IndexSpec or None; got {type(self.index).__name__}"
            )
        if not (
            self.sharding is None
            or self.sharding is False
            or isinstance(self.sharding, ShardingConfig)
        ):
            raise InvalidParameterError(
                "sharding must be a ShardingConfig, None (unset) or False "
                f"(explicitly disabled); got {self.sharding!r}"
            )
        if self.query_block < 1:
            raise InvalidParameterError(
                f"query_block must be >= 1; got {self.query_block}"
            )
        if self.cache_eviction not in EVICTION_POLICIES:
            raise InvalidParameterError(
                f"cache_eviction must be one of {EVICTION_POLICIES}; "
                f"got {self.cache_eviction!r}"
            )
        if isinstance(self.sharding, ShardingConfig) and not self.batch_queries:
            # Sharding fans *batched* query blocks across shards; the
            # per-point reference path has no batches to fan out. Running
            # it unsharded anyway would silently drop the parallelism the
            # caller explicitly asked for.
            raise InvalidParameterError(
                "sharding requires the batched engine: "
                "batch_queries=False cannot fan queries across shards"
            )

    @property
    def evict_on_fetch(self) -> bool:
        """The engine-level boolean form of :attr:`cache_eviction`."""
        return self.cache_eviction == "serve"

    def to_dict(self) -> dict:
        """JSON-safe representation (the remote-worker wire format)."""
        if isinstance(self.sharding, ShardingConfig):
            sharding = {f: getattr(self.sharding, f) for f in _SHARDING_FIELDS}
            sharding["executor"] = self.sharding.executor.wire_value()
        else:
            sharding = self.sharding  # None (unset) or False (disabled)
        return {
            "index": None if self.index is None else self.index.to_dict(),
            "sharding": sharding,
            "batch_queries": bool(self.batch_queries),
            "query_block": int(self.query_block),
            "cache_eviction": self.cache_eviction,
        }

    def wire_dict(self) -> dict:
        """Like :meth:`to_dict`, but custom index specs become markers.

        Used by the persistence layer, which must faithfully record an
        execution policy that contained a non-serializable custom
        factory (so load can fail with an actionable message rather
        than misreport the policy the model was fit under).
        """
        payload = dataclasses.replace(self, index=None).to_dict()
        payload["index"] = None if self.index is None else self.index.wire_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExecutionConfig":
        """Inverse of :meth:`to_dict`; unknown keys (at every level) raise."""
        data = _checked_mapping(
            data,
            {"index", "sharding", "batch_queries", "query_block", "cache_eviction"},
            "ExecutionConfig",
        )
        index = data.get("index")
        if index is not None:
            index = IndexSpec.from_dict(index)
        sharding = data.get("sharding")
        if sharding is False:
            pass  # the explicit opt-out round-trips as JSON false
        elif sharding is not None:
            sharding = ShardingConfig(
                **_checked_mapping(sharding, set(_SHARDING_FIELDS), "ShardingConfig")
            )
        # Strict, not coercing: a wire payload saying "false" (a string)
        # must fail loudly, not silently run the batched path.
        batch_queries = data.get("batch_queries", True)
        if not isinstance(batch_queries, bool):
            raise InvalidParameterError(
                f"batch_queries must be a bool; got {type(batch_queries).__name__}"
            )
        query_block = data.get("query_block", DEFAULT_ENGINE_BLOCK)
        if isinstance(query_block, bool) or not isinstance(query_block, int):
            raise InvalidParameterError(
                f"query_block must be an int; got {type(query_block).__name__}"
            )
        cache_eviction = data.get("cache_eviction", "serve")
        if not isinstance(cache_eviction, str):
            raise InvalidParameterError(
                f"cache_eviction must be a string; got {type(cache_eviction).__name__}"
            )
        return cls(
            index=index,
            sharding=sharding,
            batch_queries=batch_queries,
            query_block=query_block,
            cache_eviction=cache_eviction,
        )


def _checked_mapping(data: object, allowed: set[str], owner: str) -> dict:
    """Validate a from_dict payload: a mapping with no unknown keys."""
    if not isinstance(data, Mapping):
        raise InvalidParameterError(
            f"{owner} payload must be a mapping; got {type(data).__name__}"
        )
    unknown = set(data) - allowed
    if unknown:
        raise InvalidParameterError(
            f"unknown {owner} keys: {', '.join(sorted(map(str, unknown)))}"
        )
    return dict(data)
