"""Async serving subsystem: micro-batched multi-tenant prediction.

The serving layer turns a saved :class:`~repro.persistence.ClusterModel`
into a query service: concurrent per-user ``predict(x)`` calls are
coalesced into one blocked kernel call per flush
(:class:`MicroBatcher`), routed by model name with per-request
deadlines, bounded admission, and graceful drain (:class:`ModelServer`),
and exposed over the repo's length-prefixed TCP protocol
(:class:`ServingFrontend` / :class:`ServingClient`,
``python -m repro.serving``). See ``docs/serving.md``.
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.client import ServingClient
from repro.serving.frontend import ServingFrontend, parse_model_specs, serve
from repro.serving.server import ModelServer
from repro.serving.stats import ServingStats

__all__ = [
    "MicroBatcher",
    "ModelServer",
    "ServingClient",
    "ServingFrontend",
    "ServingStats",
    "parse_model_specs",
    "serve",
]
