"""Stdlib TCP front door for :class:`~repro.serving.server.ModelServer`.

One wire idiom for the whole repo: frames are the length-prefixed
JSON-header + raw-array format of :mod:`repro.remote.protocol`, so the
serving front door and the remote worker pool speak the same protocol
(a serving client is a pool client with different ops).

Threading model (the :mod:`repro.remote.worker` idiom): the asyncio
event loop that owns the :class:`ModelServer` runs on one background
thread; a 0.2 s-timeout accept loop runs on another; each connection
gets a thread that parses frames and bridges into the loop with
``asyncio.run_coroutine_threadsafe`` — so slow clients never stall the
batcher, and a dead client costs one thread, not the server.

Ops (``header["op"]``):

- ``ping``     -> ``{"ok", "role": "serving", "models"}``
- ``predict``  -> header ``{"model", "timeout_ms"?}``, arrays
  ``{"X"}``; replies arrays ``{"labels"}`` (int64, one per query row)
- ``stats``    -> ``{"ok", "stats": {model: snapshot}}``
- ``reload``   -> header ``{"model", "path"}``
- ``shutdown`` -> drains and stops the front door

Server-side failures come back as ``{"error": {"type", "message"}}``
and are re-raised typed by :class:`~repro.serving.client.ServingClient`.
"""

from __future__ import annotations

import argparse
import asyncio
import socket
import threading
from typing import Any

import numpy as np

from repro.exceptions import InvalidParameterError, RemoteProtocolError, ReproError
from repro.remote.protocol import recv_msg, send_msg
from repro.serving.server import ModelServer

_CALL_TIMEOUT_GRACE_S = 30.0


class ServingFrontend:
    """Bind, accept, and serve a :class:`ModelServer` over TCP.

    ``start()`` returns the bound ``(host, port)`` (``port=0`` binds an
    ephemeral port); ``wait()`` blocks until a ``shutdown`` op or
    :meth:`close`; :meth:`close` drains the server gracefully and
    releases every socket and thread. Usable as a context manager.
    """

    def __init__(
        self, server: ModelServer, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._server = server
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._accept_thread: threading.Thread | None = None
        self._listener: socket.socket | None = None
        self._conns: set[socket.socket] = set()
        self._conn_threads: list[threading.Thread] = []
        self._conn_lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> tuple[str, int]:
        if self._loop is not None:
            raise InvalidParameterError("frontend is already started")
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serving-loop", daemon=True
        )
        self._loop_thread.start()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, self._port))
        self._listener.listen()
        # Wake the accept loop periodically to notice the stop flag.
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serving-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def wait(self, timeout: float | None = None) -> bool:
        """Block until shutdown is requested; True if it was."""
        return self._stop.wait(timeout)

    def close(self) -> None:
        """Graceful drain: stop accepting, flush batches, release sockets."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        try:
            if self._loop is not None:
                # Drain in-flight batches before cutting connections, so
                # requests admitted before close still get their replies.
                asyncio.run_coroutine_threadsafe(
                    self._server.aclose(), self._loop
                ).result(timeout=_CALL_TIMEOUT_GRACE_S)
        finally:
            self._teardown()

    def _teardown(self) -> None:
        with self._conn_lock:
            conns = list(self._conns)
            threads = list(self._conn_threads)
            self._conns.clear()
            self._conn_threads.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=5.0)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=5.0)
            self._loop.close()

    def __enter__(self) -> "ServingFrontend":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # accept + connection threads

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(None)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-serving-conn",
                daemon=True,
            )
            with self._conn_lock:
                self._conns.add(conn)
                self._conn_threads.append(thread)
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive() or t is thread
                ]
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                msg = recv_msg(conn)
                if msg is None:
                    return  # client hung up cleanly
                header, arrays = msg
                try:
                    reply, out, keep = self._handle(header, arrays)
                except ReproError as exc:
                    reply, out, keep = (
                        {"error": {"type": type(exc).__name__, "message": str(exc)}},
                        {},
                        True,
                    )
                send_msg(conn, reply, out)
                if not keep:
                    self._stop.set()
                    return
        except ReproError:
            # Client died mid-frame or spoke garbage: drop the
            # connection, keep the server (and its warm batches) alive.
            return
        except OSError:
            return
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # op dispatch (connection threads -> event loop)

    def _submit(self, coro: Any, timeout_s: float | None) -> Any:
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        grace = None if timeout_s is None else timeout_s + _CALL_TIMEOUT_GRACE_S
        return future.result(timeout=grace)

    def _handle(self, header: dict, arrays: dict) -> tuple[dict, dict, bool]:
        op = header.get("op")
        if op == "ping":
            return (
                {
                    "ok": True,
                    "role": "serving",
                    "models": self._server.model_names(),
                },
                {},
                True,
            )
        if op == "predict":
            X = arrays.get("X")
            if X is None:
                raise RemoteProtocolError("predict frame is missing the X array")
            timeout_ms = header.get("timeout_ms")
            timeout_s = None if timeout_ms is None else float(timeout_ms) / 1e3
            labels = self._submit(
                self._server.submit(
                    str(header.get("model")), X, timeout_s=timeout_s
                ),
                timeout_s,
            )
            labels = np.asarray(labels, dtype=np.int64)
            return {"ok": True, "n": int(labels.shape[0])}, {"labels": labels}, True
        if op == "stats":
            return {"ok": True, "stats": self._server.stats()}, {}, True
        if op == "reload":
            self._submit(
                self._server.reload(
                    str(header.get("model")), str(header.get("path"))
                ),
                None,
            )
            return {"ok": True}, {}, True
        if op == "shutdown":
            return {"ok": True}, {}, False
        raise RemoteProtocolError(f"unknown serving op {op!r}")


def parse_model_specs(specs: list[str]) -> dict[str, str]:
    """``name=path`` pairs (bare paths name themselves by directory)."""
    models: dict[str, str] = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = spec.rstrip("/").rsplit("/", 1)[-1], spec
        if not name or not path:
            raise InvalidParameterError(
                f"bad model spec {spec!r}; expected name=path or a path"
            )
        if name in models:
            raise InvalidParameterError(f"duplicate model name {name!r}")
        models[name] = path
    return models


def serve(
    models: dict[str, str],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_batch_rows: int = 256,
    max_wait_ms: float = 2.0,
    max_queue_rows: int = 8192,
    default_timeout_s: float | None = None,
    log_interval_s: float = 60.0,
    on_bound: Any = None,
) -> None:
    """Load ``models`` (name -> artifact path), serve until shutdown."""
    server = ModelServer(
        max_batch_rows=max_batch_rows,
        max_wait_ms=max_wait_ms,
        max_queue_rows=max_queue_rows,
        default_timeout_s=default_timeout_s,
        log_interval_s=log_interval_s,
    )
    for name, path in models.items():
        server.add_model(name, path)
    frontend = ServingFrontend(server, host=host, port=port)
    try:
        bound = frontend.start()
        if on_bound is not None:
            on_bound(*bound)
        frontend.wait()
    finally:
        frontend.close()


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flag set for ``repro serve`` and ``python -m repro.serving``."""
    parser.add_argument(
        "--model",
        action="append",
        required=True,
        metavar="NAME=PATH",
        help="model artifact to serve (repeatable; bare paths name themselves)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-batch-rows",
        type=int,
        default=256,
        help="flush a batch at this many pending rows (default 256)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="flush at latest this long after the oldest request (default 2)",
    )
    parser.add_argument(
        "--max-queue-rows",
        type=int,
        default=8192,
        help="admission bound before backpressure (default 8192)",
    )
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="default per-request deadline (default: none)",
    )
    parser.add_argument(
        "--log-interval-s",
        type=float,
        default=60.0,
        help="period of the structured stats log line (0 disables)",
    )


def run_serve_args(args: argparse.Namespace) -> int:
    models = parse_model_specs(args.model)

    def announce(host: str, port: int) -> None:
        print(f"repro serving {sorted(models)} on {host}:{port}", flush=True)

    serve(
        models,
        args.host,
        args.port,
        max_batch_rows=args.max_batch_rows,
        max_wait_ms=args.max_wait_ms,
        max_queue_rows=args.max_queue_rows,
        default_timeout_s=(
            None if args.timeout_ms is None else args.timeout_ms / 1e3
        ),
        log_interval_s=args.log_interval_s,
        on_bound=announce,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.serving --model NAME=PATH``."""
    parser = argparse.ArgumentParser(
        prog="repro-serving",
        description=(
            "Serve ClusterModel artifacts over TCP with micro-batched "
            "multi-tenant prediction."
        ),
    )
    add_serve_arguments(parser)
    return run_serve_args(parser.parse_args(argv))
