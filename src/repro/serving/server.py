"""Multi-tenant model server: named models, deadlines, graceful drain.

:class:`ModelServer` routes requests by model name to one
:class:`~repro.serving.batcher.MicroBatcher` per tenant, each wrapping a
(usually memory-mapped) :class:`~repro.persistence.ClusterModel`. It
adds the service-level semantics on top of the batcher:

- **multi-tenant routing** — tenants are isolated: each has its own
  admission queue, kernel thread, and stats, so one hot model cannot
  starve another's event-loop fairness (the loop round-robins ready
  tasks) and a bad request only poisons its own tenant;
- **reload-by-path** — :meth:`reload` swaps a tenant's model without
  dropping in-flight requests: the new artifact is opened on the
  tenant's kernel thread, the reference is swapped on the event loop,
  and the old model is closed via a job queued *behind* every kernel
  call that may still reference it (the one-thread executor is FIFO);
- **graceful drain** — :meth:`aclose` stops admissions
  (:class:`~repro.exceptions.ServerClosedError`), flushes every pending
  batch, then releases kernel threads and owned models;
- **observability** — :meth:`stats` returns a JSON-safe per-model
  snapshot, and ``log_interval_s`` emits it periodically as one
  structured line on the ``repro.serving`` logger.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import InvalidParameterError, ServerClosedError
from repro.persistence import ClusterModel, load_model
from repro.serving.batcher import MicroBatcher

logger = logging.getLogger("repro.serving")

_UNSET: Any = object()


class _Tenant:
    __slots__ = ("name", "model", "batcher", "owned")

    def __init__(
        self, name: str, model: ClusterModel, batcher: MicroBatcher, owned: bool
    ) -> None:
        self.name = name
        self.model = model
        self.batcher = batcher
        self.owned = owned


class ModelServer:
    """Serve one or more named ``ClusterModel`` artifacts concurrently.

    Batching knobs (``max_batch_rows``, ``max_wait_ms``,
    ``max_queue_rows``) apply per tenant; ``default_timeout_s`` is the
    per-request deadline used when :meth:`submit` is called without an
    explicit one (``None`` means wait indefinitely).
    """

    def __init__(
        self,
        *,
        max_batch_rows: int = 256,
        max_wait_ms: float = 2.0,
        max_queue_rows: int = 8192,
        default_timeout_s: float | None = None,
        log_interval_s: float = 0.0,
    ) -> None:
        self._max_batch_rows = max_batch_rows
        self._max_wait_ms = max_wait_ms
        self._max_queue_rows = max_queue_rows
        self._default_timeout_s = default_timeout_s
        self._log_interval_s = float(log_interval_s)
        self._tenants: dict[str, _Tenant] = {}
        self._log_task: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # tenant management

    def add_model(
        self, name: str, source: ClusterModel | str | Path
    ) -> "ModelServer":
        """Register ``source`` (a live model, or an artifact path) as ``name``.

        Paths are opened memory-mapped and owned by the server (closed
        on :meth:`aclose`); live models stay caller-owned. Returns
        ``self`` so registrations chain.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        if name in self._tenants:
            raise InvalidParameterError(f"model name {name!r} is already registered")
        owned = not isinstance(source, ClusterModel)
        model = load_model(source) if owned else source
        tenant = _Tenant(name, model, _UNSET, owned)
        tenant.batcher = MicroBatcher(
            lambda X, _t=tenant: _t.model.predict(X),
            max_batch_rows=self._max_batch_rows,
            max_wait_ms=self._max_wait_ms,
            max_queue_rows=self._max_queue_rows,
            n_features=model.points.shape[1],
            validate_fn=lambda rows, _t=tenant: _t.model.metric.validate(rows),
            name=name,
        )
        self._tenants[name] = tenant
        return self

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            known = ", ".join(sorted(self._tenants)) or "<none>"
            raise InvalidParameterError(
                f"unknown model {name!r}; registered models: {known}"
            )
        return tenant

    def model_names(self) -> list[str]:
        return sorted(self._tenants)

    # ------------------------------------------------------------------
    # request path

    async def submit(
        self, name: str, X: np.ndarray, *, timeout_s: float | None = _UNSET
    ) -> np.ndarray:
        """Labels for ``X`` from model ``name`` (micro-batched).

        Same output contract as ``ClusterModel.predict``: a 1-d int64
        array with one label per query row (a 1-d input is one query).
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        tenant = self._tenant(name)
        if timeout_s is _UNSET:
            timeout_s = self._default_timeout_s
        self._ensure_log_task()
        return await tenant.batcher.submit(X, timeout_s=timeout_s)

    async def reload(self, name: str, path: str | Path) -> None:
        """Swap ``name`` to the artifact at ``path`` without a serving gap.

        In-flight requests are never dropped: each batch runs against
        whichever model is current when its kernel starts, so requests
        admitted before the swap complete against the old or the new
        model but always complete. The old model (if server-owned) is
        closed only after every kernel call that may still reference it
        has finished (the per-tenant kernel executor is FIFO).
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        tenant = self._tenant(name)
        new_model = await tenant.batcher.run_on_worker(lambda: load_model(path))
        if new_model.points.shape[1] != tenant.model.points.shape[1]:
            dim = new_model.points.shape[1]
            await tenant.batcher.run_on_worker(new_model.close)
            raise InvalidParameterError(
                f"reload of {name!r} changed dimensionality "
                f"({tenant.model.points.shape[1]} -> {dim}); register a new "
                "model name instead"
            )
        old_model, old_owned = tenant.model, tenant.owned
        tenant.model = new_model
        tenant.owned = True
        tenant.batcher.stats.count("reloads")
        if old_owned:
            # FIFO on the one-thread executor: every kernel queued before
            # the swap runs before this close job.
            await tenant.batcher.run_on_worker(old_model.close)

    # ------------------------------------------------------------------
    # observability

    def stats(self) -> dict[str, Any]:
        """JSON-safe per-model snapshot of counters and latency histograms."""
        return {
            name: tenant.batcher.stats.snapshot()
            for name, tenant in sorted(self._tenants.items())
        }

    def _ensure_log_task(self) -> None:
        if self._log_interval_s <= 0.0:
            return
        if self._log_task is None or self._log_task.done():
            self._log_task = asyncio.get_running_loop().create_task(self._log_loop())

    async def _log_loop(self) -> None:
        while True:
            await asyncio.sleep(self._log_interval_s)
            logger.info(
                "serving-stats %s",
                json.dumps({"ts": time.time(), "models": self.stats()}),
            )

    # ------------------------------------------------------------------
    # shutdown

    async def aclose(self) -> None:
        """Stop admissions, drain every tenant, release owned models."""
        if self._closed:
            return
        self._closed = True
        if self._log_task is not None:
            self._log_task.cancel()
            try:
                await self._log_task
            except asyncio.CancelledError:
                pass
            self._log_task = None
        for tenant in self._tenants.values():
            await tenant.batcher.aclose()
            if tenant.owned:
                tenant.model.close()

    async def __aenter__(self) -> "ModelServer":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
