"""Async request coalescer: many small queries, one blocked kernel call.

:class:`MicroBatcher` is the serving half of the engine's batching
thesis (LAF wins by amortizing work across grouped queries): concurrent
``predict(x)`` awaiters are accumulated until either ``max_batch_rows``
rows are pending or the oldest request has waited ``max_wait_ms``, then
the whole batch runs as **one** ``ClusterModel.predict`` call on a
dedicated single worker thread and the label rows are demultiplexed back
to per-request futures.

Concurrency model:

- all queue state is touched only from the owning event loop (the loop
  of the first ``submit`` call), so no locks are needed;
- the kernel runs on a per-batcher one-thread executor, so kernels for
  one model serialize (``ClusterModel`` instances are not re-entrant)
  while the event loop stays free to admit and time out requests;
- admission is bounded by ``max_queue_rows`` — when the queue is full
  the batcher sheds load immediately with
  :class:`~repro.exceptions.ServerOverloadedError` instead of growing
  without bound.

Deadlines are best-effort cancellation points: an expired request is
dropped at batch-assembly time, and a request whose deadline fires while
queued fails with :class:`~repro.exceptions.DeadlineExceededError`
without poisoning the rest of its batch.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    InvalidParameterError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serving.stats import ServingStats


class _Request:
    __slots__ = ("rows", "future", "t_submit", "t_assembled", "deadline")

    def __init__(
        self,
        rows: np.ndarray,
        future: asyncio.Future,
        t_submit: float,
        deadline: float | None,
    ) -> None:
        self.rows = rows
        self.future = future
        self.t_submit = t_submit
        self.t_assembled = t_submit
        self.deadline = deadline


class MicroBatcher:
    """Coalesce concurrent small queries into blocked kernel calls.

    Parameters
    ----------
    predict_fn:
        The per-batch kernel: takes a C-contiguous ``(rows, dim)``
        float64 matrix, returns one int64 label per row. Called on a
        dedicated worker thread, never on the event loop.
    max_batch_rows:
        Flush as soon as this many rows are pending. A single request
        larger than this still runs as one batch (requests are never
        split across kernel calls).
    max_wait_ms:
        Flush at latest this many milliseconds after the oldest pending
        request arrived, even if the batch is not full.
    max_queue_rows:
        Admission bound: a request that would push the pending-row count
        past this is rejected with ``ServerOverloadedError`` (unless the
        queue is empty, so oversized single requests are still servable).
    n_features:
        Expected query dimensionality; mismatching requests are rejected
        at submit time so they cannot poison a shared batch.
    validate_fn:
        Optional per-request validator (e.g. ``metric.validate``) run at
        submit time; its exceptions reject only the offending request.
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        *,
        max_batch_rows: int = 256,
        max_wait_ms: float = 2.0,
        max_queue_rows: int = 8192,
        n_features: int | None = None,
        validate_fn: Callable[[np.ndarray], Any] | None = None,
        stats: ServingStats | None = None,
        name: str = "model",
    ) -> None:
        if max_batch_rows < 1:
            raise InvalidParameterError(
                f"max_batch_rows must be >= 1; got {max_batch_rows}"
            )
        if max_wait_ms < 0.0:
            raise InvalidParameterError(f"max_wait_ms must be >= 0; got {max_wait_ms}")
        if max_queue_rows < 1:
            raise InvalidParameterError(
                f"max_queue_rows must be >= 1; got {max_queue_rows}"
            )
        self._predict_fn = predict_fn
        self._max_batch_rows = int(max_batch_rows)
        self._max_wait_s = float(max_wait_ms) / 1e3
        self._max_queue_rows = int(max_queue_rows)
        self._n_features = n_features
        self._validate_fn = validate_fn
        self.stats = stats if stats is not None else ServingStats()
        self.name = name
        self._pending: deque[_Request] = deque()
        self._pending_rows = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._timer: asyncio.TimerHandle | None = None
        self._flush_task: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serving-{name}"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # submission path (event-loop thread)

    @property
    def pending_rows(self) -> int:
        return self._pending_rows

    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif loop is not self._loop:
            raise InvalidParameterError(
                f"MicroBatcher {self.name!r} is bound to a different event loop; "
                "one batcher serves one loop"
            )
        return loop

    def _coerce(self, X: np.ndarray) -> np.ndarray:
        rows = np.ascontiguousarray(X, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2:
            raise InvalidParameterError(
                f"queries must be one vector or a 2-d row matrix; got shape "
                f"{np.shape(X)}"
            )
        if self._n_features is not None and rows.shape[1] != self._n_features:
            raise InvalidParameterError(
                f"queries must have dimension {self._n_features}; "
                f"got shape {rows.shape}"
            )
        if self._validate_fn is not None and rows.shape[0]:
            self._validate_fn(rows)
        return rows

    async def submit(self, X: np.ndarray, *, timeout_s: float | None = None):
        """Labels for ``X`` (same contract as ``ClusterModel.predict``).

        Returns a 1-d int64 array with one label per query row (a 1-d
        input is one query). Raises ``ServerClosedError`` after
        :meth:`aclose`, ``ServerOverloadedError`` when the admission
        queue is full, and ``DeadlineExceededError`` when ``timeout_s``
        elapses before the result is delivered.
        """
        loop = self._bind_loop()
        if self._closed:
            raise ServerClosedError(f"batcher {self.name!r} is closed")
        rows = self._coerce(X)
        n = rows.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self._pending_rows and self._pending_rows + n > self._max_queue_rows:
            self.stats.count("rejected_overload")
            raise ServerOverloadedError(
                f"admission queue for {self.name!r} is full "
                f"({self._pending_rows} rows pending, cap {self._max_queue_rows}); "
                "back off and retry"
            )
        t_submit = time.monotonic()
        deadline = t_submit + timeout_s if timeout_s is not None else None
        fut: asyncio.Future = loop.create_future()
        req = _Request(rows, fut, t_submit, deadline)
        self._pending.append(req)
        self._pending_rows += n
        self.stats.record_admitted(n)
        if self._pending_rows >= self._max_batch_rows:
            self._schedule_flush()
        elif self._timer is None:
            self._timer = loop.call_later(self._max_wait_s, self._on_timer)
        if timeout_s is None:
            return await fut
        try:
            return await asyncio.wait_for(asyncio.shield(fut), timeout_s)
        except asyncio.CancelledError:
            fut.cancel()
            raise
        except asyncio.TimeoutError:
            if not fut.done():
                self.stats.count("deadline_missed")
                fut.set_exception(
                    DeadlineExceededError(
                        f"request to {self.name!r} missed its "
                        f"{timeout_s * 1e3:.1f} ms deadline"
                    )
                )
            if fut.cancelled():
                raise DeadlineExceededError(
                    f"request to {self.name!r} was cancelled at its deadline"
                ) from None
            exc = fut.exception()
            if exc is not None:
                raise exc from None
            return fut.result()

    # ------------------------------------------------------------------
    # flush path (event-loop thread + worker thread for the kernel)

    def _on_timer(self) -> None:
        self._timer = None
        self._schedule_flush()

    def _schedule_flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._flush_task is None or self._flush_task.done():
            assert self._loop is not None
            self._flush_task = self._loop.create_task(self._drain())

    def _take_batch(self) -> list[_Request]:
        """Pop live requests up to ``max_batch_rows`` (never splitting one)."""
        batch: list[_Request] = []
        taken = 0
        now = time.monotonic()
        while self._pending:
            req = self._pending[0]
            n = req.rows.shape[0]
            if batch and taken + n > self._max_batch_rows:
                break
            self._pending.popleft()
            self._pending_rows -= n
            if req.future.done():
                # Cancelled by the caller (or already failed) while
                # queued; deadline expiries were counted when they fired.
                if req.future.cancelled():
                    self.stats.count("cancelled")
                continue
            if req.deadline is not None and now >= req.deadline:
                self.stats.count("deadline_missed")
                req.future.set_exception(
                    DeadlineExceededError(
                        f"request to {self.name!r} expired before batch assembly"
                    )
                )
                continue
            req.t_assembled = now
            batch.append(req)
            taken += n
        return batch

    async def _drain(self) -> None:
        while self._pending:
            batch = self._take_batch()
            if batch:
                await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Request]) -> None:
        assert self._loop is not None
        t0 = batch[0].t_assembled
        X = (
            batch[0].rows
            if len(batch) == 1
            else np.concatenate([req.rows for req in batch], axis=0)
        )
        n_rows = X.shape[0]
        t1 = time.monotonic()
        try:
            labels = await self._loop.run_in_executor(
                self._executor, self._predict_fn, X
            )
        except Exception as exc:
            self.stats.count("errors", len(batch))
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        t2 = time.monotonic()
        self.stats.record_batch(n_rows, assembly_s=t1 - t0, kernel_s=t2 - t1)
        offset = 0
        for req in batch:
            n = req.rows.shape[0]
            if not req.future.done():
                req.future.set_result(labels[offset : offset + n])
                self.stats.record_request(
                    queue_wait_s=req.t_assembled - req.t_submit,
                    e2e_s=t2 - req.t_submit,
                )
            offset += n

    # ------------------------------------------------------------------
    # shutdown

    async def aclose(self) -> None:
        """Stop admissions, drain pending requests, release the worker."""
        if self._closed:
            self._executor.shutdown(wait=True)
            return
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._pending:
            self._schedule_flush()
        if self._flush_task is not None and not self._flush_task.done():
            await self._flush_task
        self._executor.shutdown(wait=True)

    def run_on_worker(self, fn: Callable[[], Any]) -> "asyncio.Future[Any]":
        """Queue ``fn`` behind every kernel already submitted.

        The server's reload path uses this to close a swapped-out model
        only after any kernel that may still reference it has finished
        (the one-thread executor runs jobs FIFO).
        """
        loop = self._loop if self._loop is not None else asyncio.get_running_loop()
        return loop.run_in_executor(self._executor, fn)
