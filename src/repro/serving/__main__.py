"""``python -m repro.serving`` — serve model artifacts over TCP."""

from repro.serving.frontend import main

if __name__ == "__main__":
    raise SystemExit(main())
