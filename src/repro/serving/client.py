"""Blocking TCP client for the serving front door.

Speaks the :mod:`repro.remote.protocol` frame format against a
:class:`~repro.serving.frontend.ServingFrontend`. Server-side failures
arrive as ``{"error": {"type", "message"}}`` replies and are re-raised
as the named :mod:`repro.exceptions` class when one exists (so a caller
can catch :class:`~repro.exceptions.ServerOverloadedError` and back
off), falling back to :class:`~repro.exceptions.ServingError`.

Thread-safe: one lock serializes round-trips on the single connection;
open one client per thread for concurrent load.
"""

from __future__ import annotations

import socket
import threading

import numpy as np

from repro import exceptions
from repro.exceptions import (
    ReproError,
    ServingError,
    WorkerUnavailableError,
)
from repro.remote.protocol import recv_msg, send_msg


def _raise_remote(error: dict) -> None:
    """Re-raise a server-reported error as its typed local class."""
    name = str(error.get("type"))
    message = str(error.get("message"))
    exc_type = getattr(exceptions, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        raise exc_type(message)
    raise ServingError(f"server reported {name}: {message}")


class ServingClient:
    """Round-trip client: ``predict`` / ``stats`` / ``reload`` / ``shutdown``.

    Connects lazily on first call; context-manager use closes the
    socket. ``timeout_s`` bounds each socket operation (connect, send,
    recv) — the per-request *deadline* is separate and travels in the
    predict frame as ``timeout_ms``.
    """

    def __init__(
        self, host: str, port: int, *, timeout_s: float | None = 60.0
    ) -> None:
        self.address = (host, port)
        self._timeout_s = timeout_s
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    def _call(self, header: dict, arrays: dict | None = None) -> tuple[dict, dict]:
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        self.address, timeout=self._timeout_s
                    )
                send_msg(self._sock, header, arrays)
                reply = recv_msg(self._sock)
            except OSError as exc:
                self.close()
                raise WorkerUnavailableError(
                    f"cannot reach serving front door at {self.address}: {exc}"
                ) from exc
            if reply is None:
                self.close()
                raise WorkerUnavailableError(
                    f"serving front door at {self.address} closed the connection"
                )
        header_out, arrays_out = reply
        error = header_out.get("error")
        if error:
            _raise_remote(error)
        return header_out, arrays_out

    def ping(self) -> dict:
        header, _ = self._call({"op": "ping"})
        return header

    def predict(
        self,
        model: str,
        X: np.ndarray,
        *,
        timeout_ms: float | None = None,
    ) -> np.ndarray:
        """Labels for ``X`` (``ClusterModel.predict`` contract, remote)."""
        header = {"op": "predict", "model": model, "timeout_ms": timeout_ms}
        _, arrays = self._call(header, {"X": np.asarray(X, dtype=np.float64)})
        return np.asarray(arrays["labels"], dtype=np.int64)

    def stats(self) -> dict:
        header, _ = self._call({"op": "stats"})
        return header["stats"]

    def reload(self, model: str, path: str) -> None:
        self._call({"op": "reload", "model": model, "path": str(path)})

    def shutdown(self) -> None:
        self._call({"op": "shutdown"})

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
