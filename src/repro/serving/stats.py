"""Service-level metrics for the serving subsystem.

Per-model rolling counters plus fixed-bucket latency histograms. The
histograms use logarithmically spaced bucket bounds so one layout covers
microsecond kernel times and multi-second tail latencies alike; quantile
estimates are read off the cumulative bucket counts (upper-edge rule,
clamped to the exact observed maximum), which keeps recording O(1) and
allocation-free on the hot path.

Everything here is thread-safe: the batcher records from the event-loop
thread, kernel timings arrive from the executor thread, and ``stats()``
snapshots may be taken from any frontend connection thread.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

# Log-spaced latency bucket upper bounds, in milliseconds: 24 buckets
# from 10 microseconds to ~2 minutes, ~x2 per step, plus an overflow
# bucket. Fixed at import time so snapshots from different models (or
# different processes) are always comparable bucket-for-bucket.
_LATENCY_BOUNDS_MS: tuple[float, ...] = tuple(0.01 * 2.0**i for i in range(24))

# Batch-size bucket upper bounds (rows per flushed batch), powers of two.
_SIZE_BOUNDS: tuple[int, ...] = tuple(2**i for i in range(13))


class Histogram:
    """Fixed-bucket histogram with cumulative-count quantile estimates.

    ``bounds`` are inclusive upper edges; values above the last bound
    land in an overflow bucket. Not thread-safe on its own — callers
    hold the owning :class:`ServingStats` lock.
    """

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        value = max(0.0, float(value))
        self._counts[bisect_left(self._bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Upper-edge quantile estimate; exact-max clamped, 0.0 if empty."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank and c > 0:
                edge = self._bounds[i] if i < len(self._bounds) else self.max
                return min(edge, self.max)
        return self.max

    def snapshot(self) -> dict[str, float | int]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean": mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


class ServingStats:
    """Rolling counters + latency histograms for one served model.

    All latency histograms are in milliseconds:

    - ``queue_wait_ms``  — submit to batch assembly start
    - ``assembly_ms``    — batch assembly (concatenate + bookkeeping)
    - ``kernel_ms``      — one blocked ``ClusterModel.predict`` call
    - ``e2e_ms``         — submit to result delivery

    ``batch_rows`` is a row-count histogram over flushed batches (the
    batch-size distribution: its mean is the effective coalescing
    factor).
    """

    _COUNTERS = (
        "requests",
        "rows",
        "batches",
        "rejected_overload",
        "deadline_missed",
        "cancelled",
        "errors",
        "reloads",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = dict.fromkeys(self._COUNTERS, 0)
        self._queue_wait = Histogram(_LATENCY_BOUNDS_MS)
        self._assembly = Histogram(_LATENCY_BOUNDS_MS)
        self._kernel = Histogram(_LATENCY_BOUNDS_MS)
        self._e2e = Histogram(_LATENCY_BOUNDS_MS)
        self._batch_rows = Histogram(tuple(float(b) for b in _SIZE_BOUNDS))

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def record_admitted(self, n_rows: int) -> None:
        with self._lock:
            self._counters["requests"] += 1
            self._counters["rows"] += n_rows

    def record_batch(self, n_rows: int, assembly_s: float, kernel_s: float) -> None:
        with self._lock:
            self._counters["batches"] += 1
            self._batch_rows.record(float(n_rows))
            self._assembly.record(assembly_s * 1e3)
            self._kernel.record(kernel_s * 1e3)

    def record_request(self, queue_wait_s: float, e2e_s: float) -> None:
        with self._lock:
            self._queue_wait.record(queue_wait_s * 1e3)
            self._e2e.record(e2e_s * 1e3)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe point-in-time snapshot of counters and histograms."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "queue_wait_ms": self._queue_wait.snapshot(),
                "assembly_ms": self._assembly.snapshot(),
                "kernel_ms": self._kernel.snapshot(),
                "e2e_ms": self._e2e.snapshot(),
                "batch_rows": self._batch_rows.snapshot(),
            }
