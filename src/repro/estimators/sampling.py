"""Sampling-based cardinality estimator (classical baseline).

The traditional pre-learning approach the paper contrasts with: keep a
uniform sample of the data and scale up the sample's neighbor count.
Unbiased but high-variance at small radii/sample sizes — exactly the
regime DBSCAN's core test lives in, which is the motivation for learned
estimators.
"""

from __future__ import annotations

import numpy as np

from repro.distances import check_unit_norm
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.rng import ensure_rng

__all__ = ["SamplingCardinalityEstimator"]


class SamplingCardinalityEstimator(CardinalityEstimator):
    """Estimate fractions by exact counting within a uniform sample.

    Parameters
    ----------
    sample_size:
        Number of training rows retained (capped at the split size).
    seed:
        Sampling seed.
    """

    def __init__(
        self, sample_size: int = 256, seed: int | np.random.Generator | None = 0
    ) -> None:
        if sample_size <= 0:
            raise InvalidParameterError(
                f"sample_size must be positive; got {sample_size}"
            )
        self.sample_size = int(sample_size)
        self._rng = ensure_rng(seed)
        self._sample: np.ndarray | None = None

    def fit(self, X_train: np.ndarray) -> "SamplingCardinalityEstimator":
        X_train = check_unit_norm(X_train, name="X_train")
        n = X_train.shape[0]
        take = min(self.sample_size, n)
        idx = self._rng.choice(n, size=take, replace=False)
        self._sample = X_train[idx]
        return self

    def predict_fraction(self, Q: np.ndarray, eps: float) -> np.ndarray:
        if self._sample is None:
            raise NotFittedError("SamplingCardinalityEstimator.fit was not called")
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        dists = 1.0 - Q @ self._sample.T
        return np.count_nonzero(dists < eps, axis=1) / self._sample.shape[0]
