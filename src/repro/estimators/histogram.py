"""Pivot-based radial histogram estimator (classical baseline).

Precomputes, for a handful of pivot points, the empirical CDF of cosine
distances from the pivot to the training data. A query is answered from
its nearest pivot's CDF, shifted by the query-pivot distance (a crude
triangle-inequality correction in the converted Euclidean metric). Very
cheap, very coarse — the kind of non-learned synopsis learned estimators
supersede, included for the ablation study.
"""

from __future__ import annotations

import numpy as np

from repro.distances import check_unit_norm
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.rng import ensure_rng

__all__ = ["RadialHistogramEstimator"]


class RadialHistogramEstimator(CardinalityEstimator):
    """Per-pivot distance CDFs with nearest-pivot lookup.

    Parameters
    ----------
    n_pivots:
        Number of pivots sampled from the training split.
    n_bins:
        Histogram resolution on the cosine-distance axis [0, 2].
    seed:
        Pivot-sampling seed.
    """

    def __init__(
        self,
        n_pivots: int = 16,
        n_bins: int = 64,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_pivots <= 0 or n_bins <= 0:
            raise InvalidParameterError("n_pivots and n_bins must be positive")
        self.n_pivots = int(n_pivots)
        self.n_bins = int(n_bins)
        self._rng = ensure_rng(seed)
        self._pivots: np.ndarray | None = None
        self._cdfs: np.ndarray | None = None  # (n_pivots, n_bins)
        self._bin_edges: np.ndarray | None = None

    def fit(self, X_train: np.ndarray) -> "RadialHistogramEstimator":
        X_train = check_unit_norm(X_train, name="X_train")
        n = X_train.shape[0]
        take = min(self.n_pivots, n)
        idx = self._rng.choice(n, size=take, replace=False)
        self._pivots = X_train[idx]
        self._bin_edges = np.linspace(0.0, 2.0, self.n_bins + 1)
        cdfs = np.empty((take, self.n_bins))
        for i, pivot in enumerate(self._pivots):
            dists = 1.0 - X_train @ pivot
            hist, _ = np.histogram(dists, bins=self._bin_edges)
            cdfs[i] = np.cumsum(hist) / n
        self._cdfs = cdfs
        return self

    def predict_fraction(self, Q: np.ndarray, eps: float) -> np.ndarray:
        if self._pivots is None:
            raise NotFittedError("RadialHistogramEstimator.fit was not called")
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        pivot_dists = 1.0 - Q @ self._pivots.T
        nearest = pivot_dists.argmin(axis=1)
        fractions = np.empty(Q.shape[0])
        for row, pivot_idx in enumerate(nearest):
            # Look the radius up in the pivot's CDF as if the query sat at
            # the pivot; nearest-pivot choice keeps the offset small.
            bin_idx = np.searchsorted(self._bin_edges, eps, side="right") - 1
            bin_idx = int(np.clip(bin_idx, 0, self.n_bins - 1))
            fractions[row] = self._cdfs[pivot_idx, bin_idx]
        return fractions
