"""Training-set construction for learned cardinality estimators.

Follows the paper's recipe: queries are data points from the training
split, thresholds sweep the bounded cosine range (0.1-0.9, "enough to
cover most cases" precisely because angular distance is bounded — the
paper's argument for why angular metrics suit learned estimation), and
the target is the exact neighbor count at that threshold, stored as a
fraction of the training-set size.

Features are the raw query vector with the threshold appended as one
extra coordinate, matching the regressor interface of the learned
estimators the paper cites (query point + range -> cardinality).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.distances.metric import COSINE, Metric, get_metric
from repro.exceptions import InvalidParameterError
from repro.index.brute_force import BruteForceIndex
from repro.rng import ensure_rng

__all__ = ["TrainingSet", "build_training_set", "DEFAULT_RADII", "make_features"]

#: The paper's threshold grid: cosine distances 0.1 .. 0.9.
DEFAULT_RADII: tuple[float, ...] = tuple(np.round(np.arange(0.1, 0.95, 0.1), 2))


@dataclasses.dataclass(frozen=True)
class TrainingSet:
    """Featurized supervision for a cardinality regressor.

    Attributes
    ----------
    features:
        ``(m, dim + 1)`` — query vector with the radius appended.
    fractions:
        ``(m,)`` — exact neighbor count divided by the reference size.
    n_reference:
        Size of the set the counts were measured against.
    radii:
        The threshold grid used.
    """

    features: np.ndarray
    fractions: np.ndarray
    n_reference: int
    radii: tuple[float, ...]

    @property
    def n_examples(self) -> int:
        return int(self.features.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality of the underlying vectors (without the radius)."""
        return int(self.features.shape[1]) - 1


def make_features(Q: np.ndarray, eps: float) -> np.ndarray:
    """Append the radius column to a batch of query vectors."""
    Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
    radius_col = np.full((Q.shape[0], 1), float(eps))
    return np.hstack([Q, radius_col])


def build_training_set(
    X_train: np.ndarray,
    n_queries: int | None = None,
    radii: tuple[float, ...] = DEFAULT_RADII,
    seed: int | np.random.Generator | None = 0,
    metric: str | Metric = COSINE,
) -> TrainingSet:
    """Build (query, radius) -> fraction supervision from a training split.

    Parameters
    ----------
    X_train:
        Training vectors (unit-normalized for the cosine metric); also
        the reference set counted against.
    n_queries:
        How many training rows to use as queries (sampled without
        replacement). ``None`` uses all rows.
    radii:
        Distance thresholds; each query contributes one example per
        radius. The default grid is the paper's cosine 0.1-0.9; for the
        unbounded Euclidean metric supply a data-driven grid (e.g. from
        :func:`repro.distances.metric.suggest_radii`).
    seed:
        Seed for query sampling.
    metric:
        "cosine" (default) or "euclidean".
    """
    metric = get_metric(metric)
    if not radii:
        raise InvalidParameterError("radii must be non-empty")
    if any(not 0.0 < r <= metric.max_eps for r in radii):
        raise InvalidParameterError(
            f"radii must lie in (0, {metric.max_eps}]; got {radii}"
        )
    X_train = metric.validate(X_train)
    rng = ensure_rng(seed)
    n = X_train.shape[0]
    if n_queries is None or n_queries >= n:
        queries = X_train
    else:
        if n_queries <= 0:
            raise InvalidParameterError(f"n_queries must be positive; got {n_queries}")
        queries = X_train[rng.choice(n, size=n_queries, replace=False)]
    index = BruteForceIndex(metric=metric).build(X_train)
    radii_arr = np.asarray(sorted(radii), dtype=np.float64)
    counts = index.range_count_multi_eps(queries, radii_arr)  # (q, r)
    m = queries.shape[0] * radii_arr.size
    features = np.empty((m, X_train.shape[1] + 1))
    features[:, :-1] = np.repeat(queries, radii_arr.size, axis=0)
    features[:, -1] = np.tile(radii_arr, queries.shape[0])
    fractions = counts.reshape(-1).astype(np.float64) / n
    return TrainingSet(
        features=features,
        fractions=fractions,
        n_reference=n,
        radii=tuple(float(r) for r in radii_arr),
    )
