"""Exact (oracle) cardinality estimator.

Counts neighbors by brute force instead of predicting them. Useless for
acceleration (it *is* the range query), but invaluable for testing and
ablation: with this oracle and ``alpha = 1``, LAF-DBSCAN provably
reproduces original DBSCAN exactly (no false predictions exist), which
the integration tests assert. It also upper-bounds the quality any
learned estimator can reach at a given ``alpha``.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import CardinalityEstimator
from repro.index.brute_force import BruteForceIndex

__all__ = ["ExactCardinalityEstimator"]


class ExactCardinalityEstimator(CardinalityEstimator):
    """Oracle that returns exact neighbor counts over the bound dataset."""

    def __init__(self, metric: str = "cosine") -> None:
        self.metric = metric
        self._index: BruteForceIndex | None = None

    def fit(self, X_train: np.ndarray) -> "ExactCardinalityEstimator":
        """No-op: the oracle has nothing to learn."""
        return self

    def bind(self, X_target: np.ndarray) -> "ExactCardinalityEstimator":
        super().bind(X_target)
        self._index = BruteForceIndex(metric=self.metric).build(
            np.asarray(X_target, dtype=np.float64)
        )
        return self

    def predict_fraction(self, Q: np.ndarray, eps: float) -> np.ndarray:
        counts = self._counts(Q, eps)
        return counts / self.n_target

    def estimate_many(self, Q: np.ndarray, eps: float) -> np.ndarray:
        return self._counts(Q, eps)

    def _counts(self, Q: np.ndarray, eps: float) -> np.ndarray:
        if self._index is None:
            from repro.exceptions import NotFittedError

            raise NotFittedError("ExactCardinalityEstimator requires bind() first")
        return self._index.range_count_many(np.atleast_2d(Q), eps).astype(np.float64)
