"""Abstract cardinality-estimator interface."""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["CardinalityEstimator"]


class CardinalityEstimator(abc.ABC):
    """Predicts range-query result sizes without running the query.

    Lifecycle::

        estimator.fit(X_train)        # learn the data distribution
        estimator.bind(X_target)      # attach the set being clustered
        counts = estimator.estimate_many(Q, eps)

    ``fit`` learns *fractions* — the share of the distribution within a
    given cosine radius of a query — so the estimator transfers across
    dataset sizes. ``bind`` only records the target size for the
    fraction-to-count conversion (the exact oracle additionally keeps the
    target data, which is its whole point).
    """

    _n_target: int | None = None

    @abc.abstractmethod
    def fit(self, X_train: np.ndarray) -> "CardinalityEstimator":
        """Learn the distribution from the training split; return self."""

    def bind(self, X_target: np.ndarray) -> "CardinalityEstimator":
        """Attach the dataset whose cardinalities will be estimated."""
        self._n_target = int(np.asarray(X_target).shape[0])
        return self

    @property
    def n_target(self) -> int:
        if self._n_target is None:
            raise NotFittedError(
                f"{type(self).__name__} has no bound target dataset; call bind()"
            )
        return self._n_target

    @abc.abstractmethod
    def predict_fraction(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Predicted fraction of the distribution within ``eps`` of each query."""

    def estimate_many(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Predicted neighbor counts in the bound target set, one per query."""
        fractions = np.clip(self.predict_fraction(np.atleast_2d(Q), eps), 0.0, 1.0)
        return fractions * self.n_target

    def estimate(self, q: np.ndarray, eps: float) -> float:
        """Predicted neighbor count for a single query (the paper's CardEst)."""
        return float(self.estimate_many(np.atleast_2d(q), eps)[0])
