"""Cardinality estimation for distance-range queries.

The heart of LAF: predict ``|{x in D : d_cos(q, x) < eps}|`` *without*
executing the range query. The paper's estimator is a three-stage
Recursive Model Index of fully-connected networks (borrowed from
CardNet's baseline); this package reimplements it in pure numpy
(:class:`RMICardinalityEstimator` on top of :class:`MLPRegressor`) and
adds the classical baselines used for ablations: exact oracle, uniform
sampling, kernel density smoothing and a pivot-based radial histogram.

Estimators learn the data distribution from a *training split* and
predict **fractions** internally, scaling by the target dataset's size at
query time — that is what lets a model trained on the 80% split estimate
cardinalities over the 20% split the paper clusters.
"""

from repro.estimators.base import CardinalityEstimator
from repro.estimators.exact import ExactCardinalityEstimator
from repro.estimators.histogram import RadialHistogramEstimator
from repro.estimators.kde import KDECardinalityEstimator
from repro.estimators.mlp import MLPRegressor
from repro.estimators.rmi import RMICardinalityEstimator
from repro.estimators.sampling import SamplingCardinalityEstimator
from repro.estimators.training_data import TrainingSet, build_training_set

__all__ = [
    "CardinalityEstimator",
    "ExactCardinalityEstimator",
    "KDECardinalityEstimator",
    "MLPRegressor",
    "RMICardinalityEstimator",
    "RadialHistogramEstimator",
    "SamplingCardinalityEstimator",
    "TrainingSet",
    "build_training_set",
]
