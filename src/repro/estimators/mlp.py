"""Fully-connected regression network in pure numpy.

Implements the building block of the paper's RMI estimator: an MLP with
ReLU hidden layers and a linear output, trained with minibatch Adam on
mean-squared error. The paper's stage networks use four hidden layers of
widths 512/512/256/128; that architecture is available via
:func:`paper_hidden_layers`, while the default is smaller for CPU
wall-clock reasons (the benchmarks document which one they use).

Features are standardized internally (mean/variance of the training set)
so callers never worry about scaling; weights initialize with He fan-in
scaling from a seeded generator, making training fully deterministic.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.exceptions import InvalidParameterError, NotFittedError, PersistenceError
from repro.rng import ensure_rng

__all__ = ["MLPRegressor", "TrainingHistory", "paper_hidden_layers"]


def _reject_object_arrays(arrays: dict[str, np.ndarray]) -> None:
    """Refuse to serialize object-dtype arrays.

    ``np.savez`` has no ``allow_pickle`` switch — an object array would
    silently go through pickle. Estimator artifacts are numeric only.
    """
    for key, arr in arrays.items():
        if np.asarray(arr).dtype.hasobject:
            raise PersistenceError(
                f"refusing to save object-dtype array {key!r}: estimator "
                "artifacts must be numeric (pickle-free)"
            )


def paper_hidden_layers() -> tuple[int, ...]:
    """The stage-network architecture used in the paper (Section 3.1)."""
    return (512, 512, 256, 128)


@dataclasses.dataclass
class TrainingHistory:
    """Per-epoch mean training loss, recorded by :meth:`MLPRegressor.fit`."""

    losses: list[float] = dataclasses.field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.losses)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise NotFittedError("no training epochs recorded")
        return self.losses[-1]


class _AdamState:
    """First/second moment buffers for one parameter tensor."""

    __slots__ = ("m", "v")

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.m = np.zeros(shape)
        self.v = np.zeros(shape)

    def update(
        self, param: np.ndarray, grad: np.ndarray, lr: float, t: int,
        beta1: float, beta2: float, eps: float,
    ) -> None:
        self.m = beta1 * self.m + (1.0 - beta1) * grad
        self.v = beta2 * self.v + (1.0 - beta2) * grad * grad
        m_hat = self.m / (1.0 - beta1**t)
        v_hat = self.v / (1.0 - beta2**t)
        param -= lr * m_hat / (np.sqrt(v_hat) + eps)


class MLPRegressor:
    """Minimal feed-forward regressor: ReLU hidden layers, linear output.

    Parameters
    ----------
    hidden_layers:
        Widths of the hidden layers.
    learning_rate, batch_size, epochs:
        Adam/minibatch hyperparameters.
    seed:
        Seed for initialization and shuffling.
    l2:
        Optional weight decay coefficient.
    """

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (64, 64, 32),
        learning_rate: float = 1e-3,
        batch_size: int = 128,
        epochs: int = 60,
        seed: int | np.random.Generator | None = 0,
        l2: float = 0.0,
    ) -> None:
        if any(h <= 0 for h in hidden_layers):
            raise InvalidParameterError(f"hidden widths must be positive; got {hidden_layers}")
        if learning_rate <= 0:
            raise InvalidParameterError(f"learning_rate must be positive; got {learning_rate}")
        if batch_size <= 0 or epochs <= 0:
            raise InvalidParameterError("batch_size and epochs must be positive")
        if l2 < 0:
            raise InvalidParameterError(f"l2 must be non-negative; got {l2}")
        self.hidden_layers = tuple(int(h) for h in hidden_layers)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.l2 = float(l2)
        self._rng = ensure_rng(seed)
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._feature_mean: np.ndarray | None = None
        self._feature_std: np.ndarray | None = None
        self._fold_cache: tuple[np.ndarray, np.ndarray] | None = None
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    # Initialization and state
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return bool(self._weights)

    def _init_params(self, in_dim: int) -> None:
        sizes = [in_dim, *self.hidden_layers, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(self._rng.normal(scale=scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def clone_from(self, other: "MLPRegressor") -> "MLPRegressor":
        """Copy fitted parameters from another network (same architecture).

        Used by the RMI when a stage model receives too few routed
        examples to train on its own: it inherits its parent's function.
        """
        if not other.is_fitted:
            raise NotFittedError("cannot clone from an unfitted network")
        self._weights = [w.copy() for w in other._weights]
        self._biases = [b.copy() for b in other._biases]
        self._feature_mean = (
            None if other._feature_mean is None else other._feature_mean.copy()
        )
        self._feature_std = (
            None if other._feature_std is None else other._feature_std.copy()
        )
        self._fold_cache = None
        return self

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._feature_mean) / self._feature_std

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return (output, activations) where activations[i] feeds layer i."""
        activations = [X]
        h = X
        last = len(self._weights) - 1
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            z = h @ W + b
            h = z if i == last else np.maximum(z, 0.0)
            activations.append(h)
        return h[:, 0], activations

    def _folded_first_layer(self) -> tuple[np.ndarray, np.ndarray]:
        """First-layer weights with input standardization folded in.

        Standardization is affine, so ``relu((X - m)/s @ W + b)`` equals
        ``relu(X @ (W/s) + (b - (m/s) @ W))``; folding removes the full
        (n, dim) standardization pass from the prediction hot path.
        """
        if self._fold_cache is None:
            W0 = self._weights[0] / self._feature_std[:, None]
            b0 = (
                self._biases[0]
                - (self._feature_mean / self._feature_std) @ self._weights[0]
            )
            self._fold_cache = (W0, b0)
        return self._fold_cache

    def _forward_inference(self, X: np.ndarray) -> np.ndarray:
        """Prediction-only forward pass on raw (unstandardized) features."""
        W0, b0 = self._folded_first_layer()
        last = len(self._weights) - 1
        z = X @ W0 + b0
        h = z if last == 0 else np.maximum(z, 0.0)
        for i in range(1, len(self._weights)):
            z = h @ self._weights[i] + self._biases[i]
            h = z if i == last else np.maximum(z, 0.0)
        return h[:, 0]

    def _backward(
        self, activations: list[np.ndarray], residual: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Gradients of mean-squared error w.r.t. weights and biases."""
        n = residual.shape[0]
        grad_w: list[np.ndarray] = [None] * len(self._weights)
        grad_b: list[np.ndarray] = [None] * len(self._biases)
        # dL/dz for the output layer; L = mean(residual^2), residual = pred - y.
        delta = (2.0 / n) * residual[:, None]
        for i in range(len(self._weights) - 1, -1, -1):
            grad_w[i] = activations[i].T @ delta
            if self.l2:
                grad_w[i] = grad_w[i] + self.l2 * self._weights[i]
            grad_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self._weights[i].T) * (activations[i] > 0.0)
        return grad_w, grad_b

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        """Train on (features, targets) with minibatch Adam."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise InvalidParameterError(
                f"X must be (n, d) aligned with y; got {X.shape} vs {y.shape}"
            )
        self._feature_mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0
        self._feature_std = std
        Xs = self._standardize(X)
        self._init_params(X.shape[1])
        adam_w = [_AdamState(w.shape) for w in self._weights]
        adam_b = [_AdamState(b.shape) for b in self._biases]
        beta1, beta2, adam_eps = 0.9, 0.999, 1e-8
        step = 0
        self.history = TrainingHistory()
        n = Xs.shape[0]
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                pred, activations = self._forward(Xs[batch])
                residual = pred - y[batch]
                epoch_loss += float((residual**2).sum())
                grad_w, grad_b = self._backward(activations, residual)
                step += 1
                for W, g, state in zip(self._weights, grad_w, adam_w):
                    state.update(W, g, self.learning_rate, step, beta1, beta2, adam_eps)
                for b, g, state in zip(self._biases, grad_b, adam_b):
                    state.update(b, g, self.learning_rate, step, beta1, beta2, adam_eps)
            self.history.losses.append(epoch_loss / n)
        self._fold_cache = None
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets for a feature batch."""
        if not self.is_fitted:
            raise NotFittedError("MLPRegressor.predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return self._forward_inference(X)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize fitted parameters to an ``.npz`` file."""
        if not self.is_fitted:
            raise NotFittedError("cannot save an unfitted MLPRegressor")
        arrays: dict[str, np.ndarray] = {
            "feature_mean": self._feature_mean,
            "feature_std": self._feature_std,
            "hidden_layers": np.array(self.hidden_layers, dtype=np.int64),
        }
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            arrays[f"W{i}"] = W
            arrays[f"b{i}"] = b
        _reject_object_arrays(arrays)
        np.savez(path, **arrays)  # reprolint: disable=RPL002 -- numeric
        # dtypes enforced by _reject_object_arrays, so nothing can pickle

    @classmethod
    def load(cls, path: str) -> "MLPRegressor":
        """Restore a network saved with :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        model = cls(hidden_layers=tuple(int(h) for h in data["hidden_layers"]))
        model._feature_mean = data["feature_mean"]
        model._feature_std = data["feature_std"]
        n_layers = len(model.hidden_layers) + 1
        model._weights = [data[f"W{i}"] for i in range(n_layers)]
        model._biases = [data[f"b{i}"] for i in range(n_layers)]
        model._fold_cache = None
        return model
