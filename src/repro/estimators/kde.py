"""Kernel-density cardinality estimator (classical baseline).

Smooths the sampling estimator with a Gaussian kernel over the *distance
axis*: instead of the hard indicator ``d < eps``, each sample point
contributes ``Phi((eps - d) / h)`` — the probability that a point at
distance ``d`` falls inside the radius under kernel bandwidth ``h``.
This is the "kernel density estimation" style of traditional cardinality
estimation the paper's related-work section cites, adapted to the
bounded cosine-distance axis.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from repro.distances import check_unit_norm
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.rng import ensure_rng

__all__ = ["KDECardinalityEstimator"]


class KDECardinalityEstimator(CardinalityEstimator):
    """Gaussian-smoothed counting over a uniform sample.

    Parameters
    ----------
    sample_size:
        Retained sample rows.
    bandwidth:
        Kernel bandwidth on the cosine-distance axis. ``None`` picks
        Silverman's rule from the sample's pairwise distances.
    seed:
        Sampling seed.
    """

    def __init__(
        self,
        sample_size: int = 256,
        bandwidth: float | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if sample_size <= 0:
            raise InvalidParameterError(f"sample_size must be positive; got {sample_size}")
        if bandwidth is not None and bandwidth <= 0:
            raise InvalidParameterError(f"bandwidth must be positive; got {bandwidth}")
        self.sample_size = int(sample_size)
        self.bandwidth = bandwidth
        self._rng = ensure_rng(seed)
        self._sample: np.ndarray | None = None
        self._h: float | None = None

    def fit(self, X_train: np.ndarray) -> "KDECardinalityEstimator":
        X_train = check_unit_norm(X_train, name="X_train")
        n = X_train.shape[0]
        take = min(self.sample_size, n)
        idx = self._rng.choice(n, size=take, replace=False)
        self._sample = X_train[idx]
        if self.bandwidth is not None:
            self._h = float(self.bandwidth)
        else:
            # Silverman's rule over a subsample of pairwise distances.
            probe = self._sample[: min(64, take)]
            dists = (1.0 - probe @ probe.T)[np.triu_indices(probe.shape[0], k=1)]
            sigma = float(dists.std()) if dists.size else 0.1
            self._h = max(1.06 * sigma * take ** (-1 / 5), 1e-3)
        return self

    def predict_fraction(self, Q: np.ndarray, eps: float) -> np.ndarray:
        if self._sample is None or self._h is None:
            raise NotFittedError("KDECardinalityEstimator.fit was not called")
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        dists = 1.0 - Q @ self._sample.T
        weights = ndtr((eps - dists) / self._h)
        return weights.mean(axis=1)
