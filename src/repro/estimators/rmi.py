"""Recursive Model Index cardinality estimator (the paper's model).

The paper deploys "an RMI [13] with three stages, respectively including
1, 2, 4 fully-connected neural networks from top to bottom stage"
(Section 3.1), borrowed from CardNet's strong baseline. This module
reimplements it in numpy:

* every stage model is an :class:`~repro.estimators.mlp.MLPRegressor`
  over features ``[query vector ; radius]``;
* targets are ``log1p`` of the neighbor count on the training split
  (log-compression tames the heavy-tailed count distribution);
* Kraska-style routing: a stage model's prediction, normalized by the
  maximum training target, selects which child model refines it;
* stage models that receive too few routed examples inherit their
  parent's weights, so routing gaps degrade gracefully instead of
  failing.

Counts are converted to fractions of the training-split size, which lets
the estimator transfer to the differently-sized clustering (test) split —
and is also why a trained estimator "can be used on any other dataset
with similar distribution", as the paper argues.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import CardinalityEstimator
from repro.estimators.mlp import MLPRegressor, _reject_object_arrays
from repro.estimators.training_data import (
    DEFAULT_RADII,
    TrainingSet,
    build_training_set,
    make_features,
)
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.rng import ensure_rng, spawn_rng

__all__ = ["RMICardinalityEstimator"]

#: A routed training subset smaller than this clones its parent instead
#: of training from scratch.
_MIN_EXAMPLES_PER_MODEL = 16


class RMICardinalityEstimator(CardinalityEstimator):
    """Three-stage RMI of fully-connected networks (paper Section 3.1).

    Parameters
    ----------
    stages:
        Models per stage, top to bottom. The paper uses ``(1, 2, 4)``.
    hidden_layers:
        Hidden widths of every stage network. The paper uses
        ``(512, 512, 256, 128)``; the default is CPU-friendly.
    epochs, batch_size, learning_rate:
        Training hyperparameters for each stage network (paper: 200
        epochs, batch 512).
    n_train_queries:
        Training queries sampled from the training split (``None`` = all).
    radii:
        Threshold grid for the training set (paper: 0.1-0.9).
    metric:
        "cosine" (default) or "euclidean" (future-work extension; pass a
        matching data-driven ``radii`` grid, since Euclidean thresholds
        are unbounded — exactly the obstacle Section 1 describes).
    seed:
        Seed controlling query sampling and every network.

    Examples
    --------
    >>> from repro.data import load_dataset
    >>> ds = load_dataset("MS-50k", scale=0.005, seed=1)
    >>> train, test = ds.split()
    >>> est = RMICardinalityEstimator(epochs=5, n_train_queries=64, seed=0)
    >>> est.fit(train).bind(test)                    # doctest: +ELLIPSIS
    <repro.estimators.rmi.RMICardinalityEstimator object at ...>
    >>> counts = est.estimate_many(test[:4], eps=0.5)
    >>> counts.shape
    (4,)
    """

    def __init__(
        self,
        stages: tuple[int, ...] = (1, 2, 4),
        hidden_layers: tuple[int, ...] = (64, 64, 32),
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        n_train_queries: int | None = None,
        radii: tuple[float, ...] = DEFAULT_RADII,
        metric: str = "cosine",
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not stages or stages[0] != 1:
            raise InvalidParameterError(
                f"stages must start with a single root model; got {stages}"
            )
        if any(s <= 0 for s in stages):
            raise InvalidParameterError(f"stage sizes must be positive; got {stages}")
        self.stages = tuple(int(s) for s in stages)
        self.hidden_layers = tuple(hidden_layers)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.n_train_queries = n_train_queries
        self.radii = tuple(radii)
        self.metric = metric
        self._rng = ensure_rng(seed)
        self._models: list[list[MLPRegressor]] = []
        self._target_max: float = 1.0
        self._n_reference: int | None = None
        self.training_set_: TrainingSet | None = None

    @classmethod
    def paper_configuration(
        cls, seed: int | np.random.Generator | None = 0, **overrides
    ) -> "RMICardinalityEstimator":
        """The exact architecture/training setup reported in the paper."""
        params = {
            "stages": (1, 2, 4),
            "hidden_layers": (512, 512, 256, 128),
            "epochs": 200,
            "batch_size": 512,
            "seed": seed,
        }
        params.update(overrides)
        return cls(**params)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def _new_model(self, rng: np.random.Generator) -> MLPRegressor:
        return MLPRegressor(
            hidden_layers=self.hidden_layers,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            epochs=self.epochs,
            seed=rng,
        )

    def fit(self, X_train: np.ndarray) -> "RMICardinalityEstimator":
        training = build_training_set(
            X_train,
            n_queries=self.n_train_queries,
            radii=self.radii,
            seed=self._rng,
            metric=self.metric,
        )
        self.training_set_ = training
        self._n_reference = training.n_reference
        features = training.features
        targets = np.log1p(training.fractions * training.n_reference)
        self._target_max = float(max(targets.max(), 1e-9))

        n_models_total = sum(self.stages)
        rngs = iter(spawn_rng(self._rng, n_models_total))
        self._models = []
        # Which model of the current stage each example routes to.
        assignment = np.zeros(features.shape[0], dtype=np.int64)
        for stage_idx, n_models in enumerate(self.stages):
            stage_models: list[MLPRegressor] = []
            predictions = np.empty(features.shape[0])
            for model_idx in range(n_models):
                rng = next(rngs)
                model = self._new_model(rng)
                mask = assignment == model_idx
                n_routed = int(np.count_nonzero(mask))
                if stage_idx == 0 or n_routed >= _MIN_EXAMPLES_PER_MODEL:
                    model.fit(features[mask], targets[mask])
                else:
                    # Too few routed examples: inherit the parent function.
                    parent = self._parent_model(stage_idx, model_idx)
                    model.clone_from(parent)
                stage_models.append(model)
                if mask.any():
                    predictions[mask] = model.predict(features[mask])
            self._models.append(stage_models)
            if stage_idx + 1 < len(self.stages):
                assignment = self._route(
                    predictions, assignment, n_models, self.stages[stage_idx + 1]
                )
        return self

    def _parent_model(self, stage_idx: int, model_idx: int) -> MLPRegressor:
        """The model one stage up that routes into (stage_idx, model_idx)."""
        n_parents = self.stages[stage_idx - 1]
        n_here = self.stages[stage_idx]
        parent_idx = min(model_idx * n_parents // n_here, n_parents - 1)
        return self._models[stage_idx - 1][parent_idx]

    def _route(
        self,
        predictions: np.ndarray,
        assignment: np.ndarray,
        n_models_here: int,
        n_models_next: int,
    ) -> np.ndarray:
        """Kraska-style routing by normalized predicted cardinality.

        Each model of the current stage owns a contiguous block of child
        models; within the block, the prediction (scaled to [0, 1] by the
        global maximum target) picks the child.
        """
        children_per_model = n_models_next / n_models_here
        normalized = np.clip(predictions / self._target_max, 0.0, 1.0 - 1e-12)
        base = np.floor(assignment * children_per_model).astype(np.int64)
        span = np.floor((assignment + 1) * children_per_model).astype(np.int64) - base
        span = np.maximum(span, 1)
        offset = np.floor(normalized * span).astype(np.int64)
        return np.minimum(base + offset, n_models_next - 1)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def _predict_log_counts(self, features: np.ndarray) -> np.ndarray:
        if not self._models:
            raise NotFittedError("RMICardinalityEstimator.predict called before fit")
        assignment = np.zeros(features.shape[0], dtype=np.int64)
        predictions = np.empty(features.shape[0])
        for stage_idx, stage_models in enumerate(self._models):
            for model_idx, model in enumerate(stage_models):
                mask = assignment == model_idx
                if mask.any():
                    predictions[mask] = model.predict(features[mask])
            if stage_idx + 1 < len(self._models):
                assignment = self._route(
                    predictions,
                    assignment,
                    len(stage_models),
                    len(self._models[stage_idx + 1]),
                )
        return predictions

    def predict_fraction(self, Q: np.ndarray, eps: float) -> np.ndarray:
        if self._n_reference is None:
            raise NotFittedError("RMICardinalityEstimator.predict called before fit")
        features = make_features(Q, eps)
        counts = np.expm1(self._predict_log_counts(features))
        return np.clip(counts, 0.0, None) / self._n_reference

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_models(self) -> int:
        """Total number of stage networks (7 for the paper's 1+2+4)."""
        return sum(self.stages)

    def stage_model(self, stage: int, index: int) -> MLPRegressor:
        """Access one fitted stage network (for tests and inspection)."""
        if not self._models:
            raise NotFittedError("estimator is not fitted")
        return self._models[stage][index]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize the fitted RMI (all stage networks) to one ``.npz``.

        The paper argues trained estimators transfer across datasets with
        similar distributions; persistence is what makes that reuse
        practical (train once on a corpus, load for each clustering job).
        """
        if not self._models:
            raise NotFittedError("cannot save an unfitted RMI")
        arrays: dict[str, np.ndarray] = {
            "stages": np.array(self.stages, dtype=np.int64),
            "target_max": np.array([self._target_max]),
            "n_reference": np.array([self._n_reference], dtype=np.int64),
            "hidden_layers": np.array(self.hidden_layers, dtype=np.int64),
        }
        for s, stage_models in enumerate(self._models):
            for m, model in enumerate(stage_models):
                prefix = f"s{s}m{m}_"
                arrays[prefix + "feature_mean"] = model._feature_mean
                arrays[prefix + "feature_std"] = model._feature_std
                for i, (W, b) in enumerate(zip(model._weights, model._biases)):
                    arrays[prefix + f"W{i}"] = W
                    arrays[prefix + f"b{i}"] = b
        _reject_object_arrays(arrays)
        np.savez(path, **arrays)  # reprolint: disable=RPL002 -- numeric
        # dtypes enforced by _reject_object_arrays, so nothing can pickle

    @classmethod
    def load(cls, path: str) -> "RMICardinalityEstimator":
        """Restore an estimator saved with :meth:`save` (ready to bind)."""
        data = np.load(path, allow_pickle=False)
        stages = tuple(int(s) for s in data["stages"])
        hidden_layers = tuple(int(h) for h in data["hidden_layers"])
        estimator = cls(stages=stages, hidden_layers=hidden_layers)
        estimator._target_max = float(data["target_max"][0])
        estimator._n_reference = int(data["n_reference"][0])
        n_weight_layers = len(hidden_layers) + 1
        estimator._models = []
        for s, n_models in enumerate(stages):
            stage_models = []
            for m in range(n_models):
                prefix = f"s{s}m{m}_"
                model = MLPRegressor(hidden_layers=hidden_layers)
                model._feature_mean = data[prefix + "feature_mean"]
                model._feature_std = data[prefix + "feature_std"]
                model._weights = [
                    data[prefix + f"W{i}"] for i in range(n_weight_layers)
                ]
                model._biases = [data[prefix + f"b{i}"] for i in range(n_weight_layers)]
                stage_models.append(model)
            estimator._models.append(stage_models)
        return estimator
