"""LAF: Learned Accelerator Framework for angular-distance DBSCAN.

Reproduction of Wang & Wang, "Learned Accelerator Framework for
Angular-Distance-Based High-Dimensional DBSCAN" (EDBT 2023).

Quickstart::

    import repro
    from repro import ExecutionConfig, RMICardinalityEstimator, ShardingConfig
    from repro.data import load_dataset

    ds = load_dataset("MS-50k", scale=0.01, seed=0)
    train, test = ds.split()

    estimator = RMICardinalityEstimator(seed=0).fit(train)
    exact = repro.cluster(test, algo="dbscan", eps=0.55, tau=5)
    fast = repro.cluster(
        test,
        algo="laf-dbscan",
        eps=0.55,
        tau=5,
        estimator=estimator,
        alpha=ds.spec.alpha,
        execution=ExecutionConfig(sharding=ShardingConfig(n_shards=4)),
    )

Execution policy (index backend, batching, sharding, cache eviction) is
one declarative :class:`ExecutionConfig` threaded through every
clusterer — never global state. See ``examples/`` for full pipelines
and ``benchmarks/`` for the reproduction of every table and figure in
the paper.
"""

from repro.api import cluster, clusterer_names, fit_model, load_model, make_clusterer
from repro.clustering import (
    BlockDBSCAN,
    Clusterer,
    ClusteringResult,
    DBSCAN,
    DBSCANPlusPlus,
    KNNBlockDBSCAN,
    RhoApproxDBSCAN,
)
from repro.engine_config import ExecutionConfig, IndexSpec
from repro.core import (
    LAF,
    LAFDBSCAN,
    LAFDBSCANPlusPlus,
    PartialNeighborMap,
    post_process,
    predicted_core_ratio,
    select_alpha,
)
from repro.estimators import (
    CardinalityEstimator,
    ExactCardinalityEstimator,
    KDECardinalityEstimator,
    MLPRegressor,
    RMICardinalityEstimator,
    RadialHistogramEstimator,
    SamplingCardinalityEstimator,
)
from repro.exceptions import (
    DataValidationError,
    DeadlineExceededError,
    EstimatorError,
    InvalidParameterError,
    NotFittedError,
    PersistenceError,
    RemovedAPIError,
    RemoteExecutorError,
    RemoteProtocolError,
    RemoteTimeoutError,
    ReproError,
    RetryExhaustedError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
    WorkerUnavailableError,
)
from repro.index.sharded import ExecutorSpec, ShardingConfig
from repro.persistence import ClusterModel, load_index, save_index
from repro.metrics import (
    adjusted_mutual_info,
    adjusted_rand_index,
    missed_cluster_stats,
    noise_ratio,
)

__version__ = "1.0.0"

__all__ = [
    "BlockDBSCAN",
    "CardinalityEstimator",
    "ClusterModel",
    "Clusterer",
    "ClusteringResult",
    "DBSCAN",
    "DBSCANPlusPlus",
    "DataValidationError",
    "DeadlineExceededError",
    "EstimatorError",
    "ExactCardinalityEstimator",
    "ExecutionConfig",
    "ExecutorSpec",
    "IndexSpec",
    "InvalidParameterError",
    "KDECardinalityEstimator",
    "KNNBlockDBSCAN",
    "LAF",
    "LAFDBSCAN",
    "LAFDBSCANPlusPlus",
    "MLPRegressor",
    "NotFittedError",
    "PartialNeighborMap",
    "PersistenceError",
    "RMICardinalityEstimator",
    "RadialHistogramEstimator",
    "RemovedAPIError",
    "RemoteExecutorError",
    "RemoteProtocolError",
    "RemoteTimeoutError",
    "ReproError",
    "RetryExhaustedError",
    "RhoApproxDBSCAN",
    "SamplingCardinalityEstimator",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServingError",
    "ShardingConfig",
    "WorkerUnavailableError",
    "adjusted_mutual_info",
    "adjusted_rand_index",
    "cluster",
    "clusterer_names",
    "fit_model",
    "load_index",
    "load_model",
    "make_clusterer",
    "missed_cluster_stats",
    "noise_ratio",
    "post_process",
    "save_index",
    "predicted_core_ratio",
    "select_alpha",
    "__version__",
]
