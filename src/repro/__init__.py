"""LAF: Learned Accelerator Framework for angular-distance DBSCAN.

Reproduction of Wang & Wang, "Learned Accelerator Framework for
Angular-Distance-Based High-Dimensional DBSCAN" (EDBT 2023).

Quickstart::

    from repro import LAFDBSCAN, DBSCAN, RMICardinalityEstimator
    from repro.data import load_dataset

    ds = load_dataset("MS-50k", scale=0.01, seed=0)
    train, test = ds.split()

    estimator = RMICardinalityEstimator(seed=0).fit(train)
    fast = LAFDBSCAN(eps=0.55, tau=5, estimator=estimator,
                     alpha=ds.spec.alpha).fit(test)
    exact = DBSCAN(eps=0.55, tau=5).fit(test)

See ``examples/`` for full pipelines and ``benchmarks/`` for the
reproduction of every table and figure in the paper.
"""

from repro.clustering import (
    BlockDBSCAN,
    Clusterer,
    ClusteringResult,
    DBSCAN,
    DBSCANPlusPlus,
    KNNBlockDBSCAN,
    RhoApproxDBSCAN,
)
from repro.core import (
    LAF,
    LAFDBSCAN,
    LAFDBSCANPlusPlus,
    PartialNeighborMap,
    post_process,
    predicted_core_ratio,
    select_alpha,
)
from repro.estimators import (
    CardinalityEstimator,
    ExactCardinalityEstimator,
    KDECardinalityEstimator,
    MLPRegressor,
    RMICardinalityEstimator,
    RadialHistogramEstimator,
    SamplingCardinalityEstimator,
)
from repro.exceptions import (
    DataValidationError,
    EstimatorError,
    InvalidParameterError,
    NotFittedError,
    ReproError,
)
from repro.metrics import (
    adjusted_mutual_info,
    adjusted_rand_index,
    missed_cluster_stats,
    noise_ratio,
)

__version__ = "1.0.0"

__all__ = [
    "BlockDBSCAN",
    "CardinalityEstimator",
    "Clusterer",
    "ClusteringResult",
    "DBSCAN",
    "DBSCANPlusPlus",
    "DataValidationError",
    "EstimatorError",
    "ExactCardinalityEstimator",
    "InvalidParameterError",
    "KDECardinalityEstimator",
    "KNNBlockDBSCAN",
    "LAF",
    "LAFDBSCAN",
    "LAFDBSCANPlusPlus",
    "MLPRegressor",
    "NotFittedError",
    "PartialNeighborMap",
    "RMICardinalityEstimator",
    "RadialHistogramEstimator",
    "ReproError",
    "RhoApproxDBSCAN",
    "SamplingCardinalityEstimator",
    "adjusted_mutual_info",
    "adjusted_rand_index",
    "missed_cluster_stats",
    "noise_ratio",
    "post_process",
    "predicted_core_ratio",
    "select_alpha",
    "__version__",
]
