"""Validation helpers for vector inputs.

Angular distance is only meaningful on unit-normalized, finite vectors;
these checks turn silent geometry bugs into loud, early errors.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError

__all__ = ["check_finite_2d", "check_unit_norm", "is_unit_normalized"]

#: Absolute tolerance for ``||x|| == 1`` checks. Loose enough for float32
#: pipelines, tight enough to catch un-normalized data.
UNIT_NORM_ATOL = 1e-4


def check_finite_2d(X: np.ndarray, name: str = "X") -> np.ndarray:
    """Validate that ``X`` is a finite 2-D float array and return it.

    Accepts anything convertible to ``ndarray``; lists are converted.
    Raises :class:`DataValidationError` on wrong rank or non-finite values.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataValidationError(
            f"{name} must be 2-dimensional (n_points, dim); got shape {X.shape}"
        )
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise DataValidationError(f"{name} must be non-empty; got shape {X.shape}")
    if not np.isfinite(X).all():
        raise DataValidationError(f"{name} contains NaN or infinite values")
    return X


def is_unit_normalized(X: np.ndarray, atol: float = UNIT_NORM_ATOL) -> bool:
    """Return True when every row of ``X`` has L2 norm 1 within ``atol``."""
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    # einsum + manual tolerance: one pass, no intermediate allocations.
    sq_norms = np.einsum("ij,ij->i", X, X)
    return bool(np.abs(np.sqrt(sq_norms) - 1.0).max() <= atol)


def check_unit_norm(X: np.ndarray, name: str = "X") -> np.ndarray:
    """Validate that ``X`` is finite, 2-D and row-normalized; return it.

    Raises :class:`DataValidationError` otherwise. Use
    :func:`repro.distances.normalize_rows` to fix offending input.
    """
    X = check_finite_2d(X, name=name)
    if not is_unit_normalized(X):
        worst = float(np.abs(np.linalg.norm(X, axis=1) - 1.0).max())
        raise DataValidationError(
            f"{name} must be unit-normalized for angular distance "
            f"(max |norm - 1| = {worst:.3g}); call normalize_rows() first"
        )
    return X
