"""Distance kernels for angular-distance clustering.

The paper works with *cosine distance* ``d_cos(u, v) = 1 - <u, v>`` on
unit-normalized vectors (range ``[0, 2]``) and converts it to Euclidean
distance with Equation 1, ``d_euc = sqrt(2 * d_cos)``, for baselines that
only support Euclidean metrics. This package provides those kernels, the
conversion, batched/blockwise matrix forms and input validation.
"""

from repro.distances.conversion import (
    cosine_from_euclidean,
    euclidean_from_cosine,
)
from repro.distances.functional import (
    angular_distance,
    cosine_distance,
    cosine_distance_to_many,
    cosine_similarity,
    euclidean_distance,
    euclidean_distance_to_many,
    normalize_rows,
    squared_euclidean_distance_to_many,
)
from repro.distances.metric import (
    COSINE,
    EUCLIDEAN,
    Metric,
    get_metric,
    suggest_radii,
)
from repro.distances.matrix import (
    cosine_distance_matrix,
    euclidean_distance_matrix,
    iter_distance_blocks,
    pairwise_cosine_within,
    squared_euclidean_distance_matrix,
)
from repro.distances.validation import (
    check_finite_2d,
    check_unit_norm,
    is_unit_normalized,
)

__all__ = [
    "COSINE",
    "EUCLIDEAN",
    "Metric",
    "angular_distance",
    "check_finite_2d",
    "check_unit_norm",
    "cosine_distance",
    "cosine_distance_matrix",
    "cosine_distance_to_many",
    "cosine_from_euclidean",
    "cosine_similarity",
    "euclidean_distance",
    "euclidean_distance_matrix",
    "euclidean_distance_to_many",
    "euclidean_from_cosine",
    "get_metric",
    "is_unit_normalized",
    "iter_distance_blocks",
    "normalize_rows",
    "pairwise_cosine_within",
    "squared_euclidean_distance_matrix",
    "squared_euclidean_distance_to_many",
    "suggest_radii",
]
