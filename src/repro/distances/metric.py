"""Pluggable distance metrics (the paper's stated future-work extension).

The paper focuses on cosine distance but notes "our method does not have
a hard constraint on the distance metric, so we may explore Euclidean
distance in future work". This module supplies that extension point: a
:class:`Metric` bundles the batched distance kernel, input validation
and the valid threshold range, so DBSCAN, LAF-DBSCAN and the estimators
can run on either metric.

Caveat the paper predicts (Section 1): with Euclidean distance the
threshold domain is unbounded, so the learned estimator's training grid
must be chosen per dataset instead of the universal cosine 0.1-0.9 grid
— see ``suggest_radii``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.distances.functional import (
    cosine_distance_to_many,
    euclidean_distance_to_many,
)
from repro.distances.validation import check_finite_2d, check_unit_norm
from repro.exceptions import InvalidParameterError

__all__ = ["Metric", "COSINE", "EUCLIDEAN", "get_metric", "suggest_radii"]


@dataclasses.dataclass(frozen=True)
class Metric:
    """A distance metric usable by the clustering/estimation stack.

    Attributes
    ----------
    name:
        Identifier ("cosine" or "euclidean").
    distance_to_many:
        ``f(q, X) -> distances`` batched kernel.
    validate:
        Input validator (unit-norm check for cosine; finiteness only
        for Euclidean).
    max_eps:
        Upper bound of meaningful thresholds (``inf`` when unbounded —
        the situation the paper argues makes learned estimation harder).
    """

    name: str
    distance_to_many: Callable[[np.ndarray, np.ndarray], np.ndarray]
    validate: Callable[[np.ndarray], np.ndarray]
    max_eps: float

    def check_eps(self, eps: float) -> float:
        if not 0.0 < eps <= self.max_eps:
            raise InvalidParameterError(
                f"eps must lie in (0, {self.max_eps}] for {self.name} "
                f"distance; got {eps}"
            )
        return float(eps)


COSINE = Metric(
    name="cosine",
    distance_to_many=cosine_distance_to_many,
    validate=check_unit_norm,
    max_eps=2.0,
)

EUCLIDEAN = Metric(
    name="euclidean",
    distance_to_many=euclidean_distance_to_many,
    validate=check_finite_2d,
    max_eps=float("inf"),
)

_REGISTRY = {m.name: m for m in (COSINE, EUCLIDEAN)}


def get_metric(metric: str | Metric) -> Metric:
    """Resolve a metric by name (or pass an instance through)."""
    if isinstance(metric, Metric):
        return metric
    if metric not in _REGISTRY:
        raise InvalidParameterError(
            f"unknown metric {metric!r}; available: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[metric]


def suggest_radii(
    X: np.ndarray,
    metric: str | Metric,
    n_radii: int = 9,
    sample_size: int = 256,
    seed: int = 0,
) -> tuple[float, ...]:
    """Data-driven threshold grid for estimator training.

    For cosine distance the paper's fixed 0.1-0.9 grid "is enough to
    cover most cases" because the metric is bounded. For Euclidean
    distance the range is data-dependent, so this helper spans the 5th
    to 95th percentile of sampled pairwise distances — the practical
    workaround for the unbounded-domain problem the paper describes.
    """
    m = get_metric(metric)
    rng = np.random.default_rng(seed)
    X = np.asarray(X, dtype=np.float64)
    take = min(sample_size, X.shape[0])
    sample = X[rng.choice(X.shape[0], size=take, replace=False)]
    dists = np.concatenate(
        [m.distance_to_many(q, sample) for q in sample[: min(take, 64)]]
    )
    dists = dists[dists > 0]
    lo, hi = np.percentile(dists, [5.0, 95.0])
    if not np.isfinite(lo) or hi <= lo:
        raise InvalidParameterError("could not derive a radius grid from the data")
    return tuple(float(r) for r in np.linspace(lo, hi, n_radii))
