"""Equation 1 of the paper: cosine <-> Euclidean threshold conversion.

For unit vectors ``u, v``:

    ||u - v||^2 = 2 - 2 <u, v> = 2 * d_cos(u, v)

so ``d_euc = sqrt(2 * d_cos)`` and ``d_cos = d_euc^2 / 2``. The paper uses
this to drive Euclidean-only baselines with thresholds equivalent to its
cosine thresholds (e.g. ``d_cos = 0.5  <=>  d_euc = 1.0``); the metric-tree
indexes in this library use it the same way, because Euclidean distance on
the sphere is a true metric while cosine distance is not.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["euclidean_from_cosine", "cosine_from_euclidean"]

#: Cosine distance on unit vectors lies in [0, 2].
MAX_COSINE_DISTANCE = 2.0
#: Euclidean distance between unit vectors lies in [0, 2].
MAX_EUCLIDEAN_DISTANCE = 2.0


def euclidean_from_cosine(d_cos):
    """Convert cosine distance(s) on unit vectors to Euclidean distance(s).

    Accepts scalars or arrays. Raises
    :class:`~repro.exceptions.InvalidParameterError` outside [0, 2].
    """
    d = np.asarray(d_cos, dtype=np.float64)
    if np.any(d < 0.0) or np.any(d > MAX_COSINE_DISTANCE):
        raise InvalidParameterError(
            f"cosine distance must lie in [0, {MAX_COSINE_DISTANCE}]; got {d_cos!r}"
        )
    out = np.sqrt(2.0 * d)
    return float(out) if np.isscalar(d_cos) or out.ndim == 0 else out


def cosine_from_euclidean(d_euc):
    """Convert Euclidean distance(s) between unit vectors to cosine distance(s).

    Inverse of :func:`euclidean_from_cosine`. Raises
    :class:`~repro.exceptions.InvalidParameterError` outside [0, 2].
    """
    d = np.asarray(d_euc, dtype=np.float64)
    if np.any(d < 0.0) or np.any(d > MAX_EUCLIDEAN_DISTANCE):
        raise InvalidParameterError(
            f"euclidean distance between unit vectors must lie in "
            f"[0, {MAX_EUCLIDEAN_DISTANCE}]; got {d_euc!r}"
        )
    out = (d * d) / 2.0
    return float(out) if np.isscalar(d_euc) or out.ndim == 0 else out
