"""Scalar and one-to-many distance kernels.

All cosine-family kernels assume unit-normalized inputs, which makes
``d_cos(u, v) = 1 - <u, v>`` exact and keeps every kernel a single BLAS
call. :func:`normalize_rows` is the supported way to prepare data.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize_rows",
    "cosine_similarity",
    "cosine_distance",
    "angular_distance",
    "euclidean_distance",
    "cosine_distance_to_many",
    "euclidean_distance_to_many",
    "squared_euclidean_distance_to_many",
]


def normalize_rows(X: np.ndarray, copy: bool = True) -> np.ndarray:
    """Scale each row of ``X`` to unit L2 norm.

    Zero rows are left untouched (norm clamped to 1) rather than producing
    NaNs, so degenerate generator output stays finite.
    """
    X = np.array(X, dtype=np.float64, copy=copy)
    if X.ndim == 1:
        norm = float(np.linalg.norm(X))
        # reprolint pragma: exact zero-vector guard before division, the
        # 1-D twin of the vectorized clamp below.
        return X if norm == 0.0 else X / norm  # reprolint: disable=RPL008
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    np.maximum(norms, np.finfo(np.float64).tiny, out=norms)
    norms[norms == 0.0] = 1.0
    return X / norms


def cosine_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Inner product of two unit vectors (their cosine similarity)."""
    return float(np.dot(u, v))


def cosine_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine distance ``1 - <u, v>`` between unit vectors; range [0, 2].

    Clamped at 0: rounding can push the inner product of (near-)identical
    unit vectors a hair above 1, and a negative distance would make the
    strict ``d < eps`` neighborhood test depend on which BLAS kernel
    computed it.
    """
    return max(0.0, 1.0 - float(np.dot(u, v)))


def angular_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Normalized angle between unit vectors: ``arccos(<u, v>) / pi``.

    Range [0, 1]. A true metric, unlike cosine distance. Provided for
    completeness; the paper's experiments use cosine distance.
    """
    sim = float(np.clip(np.dot(u, v), -1.0, 1.0))
    return float(np.arccos(sim) / np.pi)


def euclidean_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Plain Euclidean distance ``||u - v||``."""
    return float(np.linalg.norm(np.asarray(u) - np.asarray(v)))


def cosine_distance_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Cosine distances from one unit query ``q`` to every row of ``X``.

    A single matrix-vector product; the workhorse of every range query in
    this library. Clamped at 0 (see :func:`cosine_distance`) so scalar
    and batched kernels agree bit-for-bit on zero distances.
    """
    return np.maximum(0.0, 1.0 - X @ np.asarray(q, dtype=np.float64))


def squared_euclidean_distance_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from ``q`` to every row of ``X``.

    Uses the expansion ``||x - q||^2 = ||x||^2 - 2<x, q> + ||q||^2`` so it
    stays one BLAS call; negative rounding artifacts are clipped at 0.
    The tree traversals compare these against squared thresholds, which
    avoids a sqrt round-trip at exact-boundary distances.
    """
    q = np.asarray(q, dtype=np.float64)
    sq = np.einsum("ij,ij->i", X, X) - 2.0 * (X @ q) + float(np.dot(q, q))
    return np.clip(sq, 0.0, None, out=sq)


def euclidean_distance_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Euclidean distances from ``q`` to every row of ``X``."""
    return np.sqrt(squared_euclidean_distance_to_many(q, X))
