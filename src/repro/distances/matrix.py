"""Batched and blockwise distance-matrix computation.

Full ``n x n`` distance matrices are quadratic in memory; the blockwise
iterator keeps peak memory bounded while staying vectorized, which is what
the brute-force index and the training-set builder use for large inputs.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "cosine_distance_matrix",
    "euclidean_distance_matrix",
    "squared_euclidean_distance_matrix",
    "pairwise_cosine_within",
    "iter_distance_blocks",
]

#: Default number of query rows per block in blockwise iteration.
DEFAULT_BLOCK_SIZE = 1024


def cosine_distance_matrix(Q: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Cosine distances between every row of ``Q`` and every row of ``X``.

    Both inputs must be unit-normalized. Returns shape ``(len(Q), len(X))``.
    Clamped at 0 so rounding on (near-)identical rows can't produce a
    negative distance that strict ``d < eps`` tests would treat
    differently across BLAS kernels.
    """
    Q = np.asarray(Q, dtype=np.float64)
    X = np.asarray(X, dtype=np.float64)
    return np.maximum(0.0, 1.0 - Q @ X.T)


def squared_euclidean_distance_matrix(Q: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``Q`` and rows of ``X``.

    Clipped at 0 (the expansion can round slightly negative). This is
    the comparison kernel of the tree traversals, which test against
    squared thresholds and never need the sqrt.
    """
    Q = np.asarray(Q, dtype=np.float64)
    X = np.asarray(X, dtype=np.float64)
    q_sq = np.einsum("ij,ij->i", Q, Q)[:, None]
    x_sq = np.einsum("ij,ij->i", X, X)[None, :]
    sq = q_sq - 2.0 * (Q @ X.T) + x_sq
    return np.clip(sq, 0.0, None, out=sq)


def euclidean_distance_matrix(Q: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Euclidean distances between rows of ``Q`` and rows of ``X``."""
    return np.sqrt(squared_euclidean_distance_matrix(Q, X))


def pairwise_cosine_within(X: np.ndarray) -> np.ndarray:
    """Symmetric cosine-distance matrix of a single point set."""
    return cosine_distance_matrix(X, X)


def iter_distance_blocks(
    Q: np.ndarray,
    X: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    metric: str = "cosine",
) -> Iterator[tuple[int, int, np.ndarray]]:
    """Yield ``(start, stop, D_block)`` distance blocks of ``Q`` vs ``X``.

    ``D_block`` has shape ``(stop - start, len(X))``; concatenating all
    blocks reproduces :func:`cosine_distance_matrix` (or
    :func:`euclidean_distance_matrix` for ``metric="euclidean"``) exactly,
    but peak memory is ``block_size * len(X)`` floats. This is the
    distance kernel under every batched index query.
    """
    if block_size <= 0:
        raise InvalidParameterError(f"block_size must be positive; got {block_size}")
    if metric not in ("cosine", "euclidean", "sqeuclidean"):
        raise InvalidParameterError(
            f"metric must be 'cosine', 'euclidean' or 'sqeuclidean'; got {metric!r}"
        )
    Q = np.asarray(Q, dtype=np.float64)
    X = np.asarray(X, dtype=np.float64)
    for start in range(0, Q.shape[0], block_size):
        stop = min(start + block_size, Q.shape[0])
        if metric == "cosine":
            yield start, stop, np.maximum(0.0, 1.0 - Q[start:stop] @ X.T)
        elif metric == "sqeuclidean":
            yield start, stop, squared_euclidean_distance_matrix(Q[start:stop], X)
        else:
            yield start, stop, euclidean_distance_matrix(Q[start:stop], X)
