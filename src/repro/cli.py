"""Command-line interface: run the paper's experiments without pytest.

Usage (after ``pip install -e .``)::

    python -m repro quality   --datasets MS-50k MS-150k --eps 0.55 --tau 5
    python -m repro timing    --datasets MS-50k MS-150k --eps 0.55 --tau 5
    python -m repro grid      --datasets MS-50k MS-100k MS-150k
    python -m repro tradeoff  --dataset MS-150k --eps 0.5 --tau 3
    python -m repro missed    --dataset MS-150k --eps 0.55 --tau 5
    python -m repro pool serve --workers 2

Every subcommand prepares the paper's pipeline (generate -> 8:2 split ->
train RMI on the training split) at ``--scale`` and prints the
paper-shaped table; ``--json PATH`` additionally writes the rows.

Execution flags (``--index``, ``--per-point``, ``--engine-block``,
``--shards`` / ``--shard-executor`` / ``--shard-workers`` /
``--shard-query-block`` / ``--pool-address``) all map into one
:class:`~repro.engine_config.ExecutionConfig` threaded through the
experiment functions — no global state is installed.

``pool serve`` runs a fleet of local pool workers; any other invocation
on any machine that can reach them may then pass
``--shards N --pool-address host:port [--pool-address ...]`` to fan its
sharded range queries out to the fleet's warm shard indexes.
"""

from __future__ import annotations

import argparse

from repro.engine_config import DEFAULT_ENGINE_BLOCK, ExecutionConfig, IndexSpec
from repro.exceptions import InvalidParameterError, PersistenceError
from repro.experiments.efficiency import speedup_summary, timing_comparison
from repro.experiments.missed import missed_cluster_analysis
from repro.experiments.param_select import parameter_grid
from repro.experiments.quality import quality_comparison
from repro.experiments.reporting import format_table, pivot, save_json
from repro.experiments.runner import ground_truth
from repro.experiments.tradeoff import (
    sweep_dbscanpp,
    sweep_laf_alpha,
    sweep_laf_dbscanpp,
)
from repro.experiments.workloads import prepare_workloads
from repro.index.sharded import (
    INNER_BACKENDS,
    ExecutorSpec,
    ShardingConfig,
    registered_executors,
)
from repro.serving.frontend import add_serve_arguments, run_serve_args

__all__ = ["main", "build_parser", "execution_from_args"]


def _positive_int(text: str) -> int:
    """argparse type for flags that only accept >= 1 (shards, workers)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1; got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LAF-DBSCAN paper reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, multi_dataset: bool) -> None:
        if multi_dataset:
            p.add_argument(
                "--datasets", nargs="+", default=["MS-50k", "MS-100k", "MS-150k"]
            )
        else:
            p.add_argument("--dataset", default="MS-150k")
        p.add_argument("--scale", type=float, default=0.02)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epochs", type=int, default=40)
        p.add_argument("--json", default=None, help="write rows as JSON here")
        p.add_argument(
            "--index",
            # The grid backend needs an eps at construction time and is
            # rho-approximate DBSCAN's own substrate anyway; the CLI
            # offers the backends constructible from their defaults.
            choices=sorted(set(INNER_BACKENDS) - {"grid"}),
            default=None,
            help="range-query backend for every engine-routed method "
            "(default: each method's own substrate)",
        )
        p.add_argument(
            "--per-point",
            action="store_true",
            help="disable the batched engine (per-point reference loops)",
        )
        p.add_argument(
            "--engine-block",
            type=_positive_int,
            default=None,
            help="queries per batched engine call "
            f"(default: {DEFAULT_ENGINE_BLOCK})",
        )
        p.add_argument(
            "--shards",
            type=_positive_int,
            default=None,
            help="shard the range-query engine across N row shards",
        )
        p.add_argument(
            "--shard-executor",
            choices=registered_executors(),
            default=None,
            help="how shard queries execute (default: serial; 'remote' "
            "needs --pool-address)",
        )
        p.add_argument(
            "--shard-workers",
            type=_positive_int,
            default=None,
            help="pool width for the thread/process shard executors",
        )
        p.add_argument(
            "--shard-query-block",
            type=_positive_int,
            default=None,
            help="query rows fanned out per shard-executor round "
            "(bounds per-task pickle size and merge memory)",
        )
        p.add_argument(
            "--pool-address",
            action="append",
            default=None,
            metavar="HOST:PORT",
            help="a pool worker from `repro pool serve` (repeat for a "
            "fleet; implies --shard-executor remote)",
        )

    p = sub.add_parser("quality", help="Table 3/5: ARI & AMI of all methods")
    common(p, multi_dataset=True)
    p.add_argument("--eps", type=float, default=0.55)
    p.add_argument("--tau", type=int, default=5)

    p = sub.add_parser("timing", help="Figure 1/4: clustering time of all methods")
    common(p, multi_dataset=True)
    p.add_argument("--eps", type=float, default=0.55)
    p.add_argument("--tau", type=int, default=5)

    p = sub.add_parser("grid", help="Table 2: (noise ratio, #clusters) grid")
    common(p, multi_dataset=True)
    p.add_argument("--eps-values", nargs="+", type=float, default=[0.5, 0.55, 0.6, 0.7])
    p.add_argument("--tau-values", nargs="+", type=int, default=[3, 5])

    p = sub.add_parser("tradeoff", help="Figure 2/3: speed-quality sweeps")
    common(p, multi_dataset=False)
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--tau", type=int, default=3)

    p = sub.add_parser("missed", help="Table 6: fully-missed-cluster stats")
    common(p, multi_dataset=False)
    p.add_argument("--eps", type=float, default=0.55)
    p.add_argument("--tau", type=int, default=5)
    p.add_argument("--alpha", type=float, default=None, help="override Table 1 alpha")

    p = sub.add_parser(
        "fit", help="fit a clusterer and save a servable model artifact"
    )
    common(p, multi_dataset=False)
    p.add_argument("--algo", default="dbscan", help="registered clusterer name")
    p.add_argument("--eps", type=float, default=0.55)
    p.add_argument("--tau", type=int, default=5)
    p.add_argument(
        "--alpha", type=float, default=None, help="LAF gate alpha (default: Table 1)"
    )
    p.add_argument(
        "--save",
        required=True,
        metavar="DIR",
        help="artifact directory for the fitted model (see docs/persistence.md)",
    )

    p = sub.add_parser("pool", help="manage a remote shard-worker pool")
    pool_sub = p.add_subparsers(dest="pool_command", required=True)
    ps = pool_sub.add_parser(
        "serve",
        help="spawn local pool workers and serve until interrupted; "
        "fits connect with --shards N --pool-address HOST:PORT",
    )
    ps.add_argument(
        "--workers", type=_positive_int, default=2, help="worker processes"
    )
    ps.add_argument("--host", default="127.0.0.1", help="bind address")
    ps.add_argument(
        "--max-cached-shards",
        type=_positive_int,
        default=None,
        help="LRU bound on each worker's warm shard-index cache "
        "(default: unbounded)",
    )

    p = sub.add_parser(
        "serve",
        help="serve saved model artifacts over TCP with micro-batched "
        "multi-tenant prediction (see docs/serving.md)",
    )
    add_serve_arguments(p)

    p = sub.add_parser(
        "predict",
        help="classify a dataset's test split against a saved model "
        "(execution flags are ignored; the model carries its own policy)",
    )
    common(p, multi_dataset=False)
    p.add_argument(
        "--model",
        required=True,
        metavar="DIR",
        help="model artifact directory written by fit --save",
    )

    return parser


def execution_from_args(args) -> ExecutionConfig:
    """Fold every execution flag into one :class:`ExecutionConfig`.

    The single config threads through the experiment functions and into
    every clusterer of the run — index backend, batching, engine block
    size and sharding are one declarative object, not ambient state.
    """
    executor: ExecutorSpec | str | None = args.shard_executor
    addresses = args.pool_address or []
    if addresses:
        if executor not in (None, "remote"):
            raise InvalidParameterError(
                "--pool-address implies --shard-executor remote; it cannot "
                f"combine with --shard-executor {executor}"
            )
        if args.shards is None:
            raise InvalidParameterError(
                "--pool-address needs --shards N: remote execution fans "
                "sharded queries out to the pool"
            )
        executor = ExecutorSpec("remote", {"addresses": addresses})
    elif executor == "remote":
        raise InvalidParameterError(
            "--shard-executor remote needs at least one --pool-address "
            "HOST:PORT (start workers with `repro pool serve`)"
        )
    sharding = None
    if args.shards is not None:
        sharding_kwargs = dict(
            n_shards=args.shards,
            executor="serial" if executor is None else executor,
            n_workers=args.shard_workers,
        )
        if args.shard_query_block is not None:
            sharding_kwargs["query_block"] = args.shard_query_block
        sharding = ShardingConfig(**sharding_kwargs)
    return ExecutionConfig(
        index=None if args.index is None else IndexSpec(args.index),
        sharding=sharding,
        batch_queries=not args.per_point,
        query_block=(
            DEFAULT_ENGINE_BLOCK if args.engine_block is None else args.engine_block
        ),
    )


def _prepare(args, names) -> tuple[dict, dict, dict]:
    workloads = prepare_workloads(
        tuple(names), scale=args.scale, seed=args.seed, epochs=args.epochs
    )
    datasets = {n: w.X_test for n, w in workloads.items()}
    estimators = {n: w.estimator for n, w in workloads.items()}
    alphas = {n: w.alpha for n, w in workloads.items()}
    return datasets, estimators, alphas


def _cmd_quality(args, execution: ExecutionConfig) -> list[dict]:
    datasets, estimators, alphas = _prepare(args, args.datasets)
    records = quality_comparison(
        datasets, estimators, alphas, args.eps, args.tau, execution=execution
    )
    for metric in ("ARI", "AMI"):
        headers, rows = pivot(records, value=metric)
        print(
            format_table(
                headers, rows, title=f"{metric} @ eps={args.eps}, tau={args.tau}"
            )
        )
        print()
    return [r.as_row() for r in records]


def _cmd_timing(args, execution: ExecutionConfig) -> list[dict]:
    datasets, estimators, alphas = _prepare(args, args.datasets)
    records = timing_comparison(
        datasets, estimators, alphas, args.eps, args.tau, execution=execution
    )
    headers, rows = pivot(records, value="time_s")
    print(
        format_table(headers, rows, title=f"time (s) @ eps={args.eps}, tau={args.tau}")
    )
    print("speedups:", speedup_summary(records))
    return [r.as_row() for r in records]


def _cmd_grid(args, execution: ExecutionConfig) -> list[dict]:
    datasets, _, _ = _prepare(args, args.datasets)
    cells = parameter_grid(
        datasets,
        eps_values=args.eps_values,
        tau_values=args.tau_values,
        execution=execution,
    )
    by_pair: dict[tuple[float, int], dict[str, str]] = {}
    for cell in cells:
        by_pair.setdefault((cell.eps, cell.tau), {})[cell.dataset] = cell.as_pair()
    names = list(datasets)
    rows = [
        [f"({eps}, {tau})", *(by_pair[(eps, tau)].get(n, "-") for n in names)]
        for (eps, tau) in sorted(by_pair)
    ]
    print(format_table(["(eps,tau)", *names], rows, title="(noise ratio, #clusters)"))
    return [
        {
            "dataset": c.dataset,
            "eps": c.eps,
            "tau": c.tau,
            "noise_ratio": c.noise_ratio,
            "n_clusters": c.n_clusters,
        }
        for c in cells
    ]


def _cmd_tradeoff(args, execution: ExecutionConfig) -> list[dict]:
    datasets, estimators, _ = _prepare(args, [args.dataset])
    X = datasets[args.dataset]
    estimator = estimators[args.dataset]
    gt = ground_truth(X, args.eps, args.tau, execution=execution)
    points = []
    points += sweep_laf_alpha(
        X, gt.labels, estimator, args.eps, args.tau, execution=execution
    )
    points += sweep_dbscanpp(
        X, gt.labels, estimator, args.eps, args.tau, execution=execution
    )
    points += sweep_laf_dbscanpp(
        X, gt.labels, estimator, args.eps, args.tau, execution=execution
    )
    headers = ["method", "knob", "value", "time_s", "ARI", "AMI"]
    rows = [[p.as_row()[h] for h in headers] for p in points]
    print(format_table(headers, rows, title=f"trade-off on {args.dataset}"))
    return [p.as_row() for p in points]


def _cmd_missed(args, execution: ExecutionConfig) -> list[dict]:
    datasets, estimators, alphas = _prepare(args, [args.dataset])
    alpha = args.alpha if args.alpha is not None else alphas[args.dataset]
    stats, run_stats = missed_cluster_analysis(
        datasets[args.dataset],
        estimators[args.dataset],
        args.eps,
        args.tau,
        alpha,
        execution=execution,
    )
    row = stats.as_row()
    print(
        format_table(
            ["dataset", "MC/TC", "MP/TPC", "ASMC", "FN detected"],
            [
                [
                    args.dataset,
                    row["MC/TC"],
                    row["MP/TPC"],
                    row["ASMC"],
                    run_stats.get("fn_detected", 0),
                ]
            ],
            title=(
                f"fully missed clusters @ eps={args.eps}, "
                f"tau={args.tau}, alpha={alpha}"
            ),
        )
    )
    return [{**row, "dataset": args.dataset, "alpha": alpha}]


def _cmd_fit(args, execution: ExecutionConfig) -> list[dict]:
    from repro.api import fit_model

    algo = str(args.algo).strip().lower()
    params: dict = {"eps": args.eps, "tau": args.tau}
    if algo.startswith("laf"):
        # LAF methods need the trained estimator from the paper pipeline
        # (generate -> split -> train RMI on the training split).
        datasets, estimators, alphas = _prepare(args, [args.dataset])
        X = datasets[args.dataset]
        params["estimator"] = estimators[args.dataset]
        params["alpha"] = (
            args.alpha if args.alpha is not None else alphas[args.dataset]
        )
    else:
        from repro.data import load_dataset

        _, X = load_dataset(args.dataset, scale=args.scale, seed=args.seed).split()
    model = fit_model(X, algo, execution=execution, **params)
    try:
        model.save(args.save)
        row = {
            "algo": model.algo,
            "dataset": args.dataset,
            "n_points": model.n_points,
            "n_cores": model.n_cores,
            "n_clusters": model.n_clusters,
            "path": args.save,
        }
    finally:
        model.close()
    print(
        f"saved {row['algo']} model: {row['n_points']} points, "
        f"{row['n_clusters']} clusters, {row['n_cores']} cores -> {args.save}"
    )
    return [row]


def _cmd_predict(args, execution: ExecutionConfig) -> list[dict]:
    from repro.api import load_model
    from repro.data import load_dataset

    _, X = load_dataset(args.dataset, scale=args.scale, seed=args.seed).split()
    model = load_model(args.model)
    try:
        labels = model.predict(X)
    finally:
        model.close()
    import numpy as np

    n = int(labels.size)
    noise = int(np.count_nonzero(labels == -1))
    hit = np.unique(labels[labels != -1])
    counts = [
        [int(c), int(np.count_nonzero(labels == c))] for c in hit.tolist()
    ]
    print(
        format_table(
            ["cluster", "points"],
            [["noise", noise], *counts],
            title=(
                f"{model.algo} predictions on {args.dataset} "
                f"({n} queries, eps={model.eps})"
            ),
        )
    )
    return [
        {
            "model": args.model,
            "dataset": args.dataset,
            "n_queries": n,
            "n_noise": noise,
            "noise_ratio": noise / n if n else 0.0,
            "clusters_hit": len(counts),
        }
    ]


def _cmd_pool_serve(args) -> int:
    from repro.remote.pool import WorkerPool

    pool = WorkerPool.spawn_local(
        args.workers,
        host=args.host,
        max_cached_shards=args.max_cached_shards,
    )
    for address in pool.addresses:
        print(f"pool worker listening on {address}", flush=True)
    flags = " ".join(f"--pool-address {a}" for a in pool.addresses)
    print(f"connect fits with: --shards N {flags}", flush=True)
    try:
        # Serve until a worker exits (remote shutdown) or Ctrl-C.
        for proc in pool._processes:
            proc.join()
    except KeyboardInterrupt:
        print("\nshutting down pool workers", flush=True)
    finally:
        pool.shutdown()
    return 0


_COMMANDS = {
    "quality": _cmd_quality,
    "timing": _cmd_timing,
    "grid": _cmd_grid,
    "tradeoff": _cmd_tradeoff,
    "missed": _cmd_missed,
    "fit": _cmd_fit,
    "predict": _cmd_predict,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "pool":
        # Pool management takes no execution flags: it *is* the fleet
        # that later fits point their execution config at.
        return _cmd_pool_serve(args)
    if args.command == "serve":
        # Serving takes no execution flags either: each model artifact
        # carries its own execution policy.
        try:
            return run_serve_args(args)
        except (InvalidParameterError, PersistenceError) as exc:
            parser.error(str(exc))
    try:
        execution = execution_from_args(args)
    except InvalidParameterError as exc:
        # e.g. --per-point with --shards: a config contradiction, shown
        # as a usage error instead of a traceback.
        parser.error(str(exc))
    try:
        rows = _COMMANDS[args.command](args, execution)
    except (InvalidParameterError, PersistenceError) as exc:
        # Unknown algo, unreadable artifact, ...: usage errors, not
        # tracebacks.
        parser.error(str(exc))
    if args.json:
        save_json(args.json, rows)
        print(f"\nwrote {args.json}")
    return 0
