"""Error-factor selection and the predicted-core-ratio rule.

The paper sets ``alpha`` per dataset by grid search (Section 3.2) and
derives DBSCAN++'s sample fraction from the estimator's predictions:
``p = delta + R_c`` where ``R_c`` is the ratio of points predicted core
(Section 3.1, Parameters). Both utilities live here.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.laf_dbscan import LAFDBSCAN
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.mutual_info import adjusted_mutual_info

__all__ = ["predicted_core_ratio", "AlphaCandidate", "select_alpha"]


def predicted_core_ratio(
    estimator: CardinalityEstimator,
    X: np.ndarray,
    eps: float,
    tau: int,
    alpha: float = 1.0,
) -> float:
    """``R_c``: fraction of points the estimator predicts as core.

    The paper's automatic rule for DBSCAN++'s sample fraction is
    ``p = delta + R_c`` with ``delta`` between 0.1 and 0.3.
    """
    estimator.bind(X)
    predictions = estimator.estimate_many(X, eps)
    return float(np.count_nonzero(predictions >= alpha * tau) / X.shape[0])


@dataclasses.dataclass(frozen=True)
class AlphaCandidate:
    """One grid-search point: quality and speed of LAF-DBSCAN at alpha."""

    alpha: float
    elapsed_seconds: float
    ari: float
    ami: float


def select_alpha(
    X: np.ndarray,
    ground_truth_labels: np.ndarray,
    estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    alpha_grid: tuple[float, ...] = (1.0, 1.15, 1.5, 2.0, 3.0, 5.0, 7.7),
    min_ami: float = 0.4,
    seed: int | None = 0,
) -> tuple[float, list[AlphaCandidate]]:
    """Grid-search alpha like the paper: fastest setting above a quality bar.

    Runs LAF-DBSCAN once per candidate alpha, scores against the
    supplied DBSCAN ground truth and returns ``(best_alpha, all
    candidates)``. "Best" is the fastest candidate whose AMI clears
    ``min_ami``; if none clears it, the highest-AMI candidate wins.
    """
    if not alpha_grid:
        raise InvalidParameterError("alpha_grid must be non-empty")
    candidates: list[AlphaCandidate] = []
    for alpha in alpha_grid:
        clusterer = LAFDBSCAN(
            eps=eps, tau=tau, estimator=estimator, alpha=alpha, seed=seed
        )
        started = time.perf_counter()
        result = clusterer.fit(X)
        elapsed = time.perf_counter() - started
        candidates.append(
            AlphaCandidate(
                alpha=float(alpha),
                elapsed_seconds=elapsed,
                ari=adjusted_rand_index(ground_truth_labels, result.labels),
                ami=adjusted_mutual_info(ground_truth_labels, result.labels),
            )
        )
    acceptable = [c for c in candidates if c.ami >= min_ami]
    if acceptable:
        best = min(acceptable, key=lambda c: c.elapsed_seconds)
    else:
        best = max(candidates, key=lambda c: c.ami)
    return best.alpha, candidates
