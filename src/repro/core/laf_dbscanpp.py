"""LAF-DBSCAN++: the LAF plugin applied to DBSCAN++.

Demonstrates the framework's genericity (paper Section 2.1): the same
computation waste exists in sampling-based variants, because DBSCAN++
still runs one full range query per *sampled* point to decide coreness.
LAF inserts the identical gate:

* a sampled point predicted non-core skips its range query and is
  registered in ``E``;
* executed range queries feed ``UpdatePartialNeighbors`` so predicted
  stop points accumulate partial neighbors;
* after DBSCAN++ finishes (core graph + nearest-core assignment), the
  standard post-processing merges clusters split by false negatives.

The paper fixes ``alpha = 1.0`` for LAF-DBSCAN++ and reuses DBSCAN++'s
sample fraction ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.clustering.components import connected_components_within
from repro.distances import check_unit_norm, iter_distance_blocks
from repro.core.laf import LAF
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError
from repro.index.brute_force import BruteForceIndex
from repro.index.engine import NeighborhoodCache
from repro.rng import ensure_rng

__all__ = ["LAFDBSCANPlusPlus"]


class LAFDBSCANPlusPlus(Clusterer):
    """LAF-enhanced DBSCAN++ (uniform sampling host).

    Parameters
    ----------
    eps, tau:
        Density parameters (cosine distance).
    p:
        Sample fraction in (0, 1] (kept identical to the DBSCAN++
        baseline in the paper's comparisons).
    estimator:
        Fitted cardinality estimator.
    alpha:
        Gate error factor; the paper fixes 1.0 for this method.
    assign_within_eps:
        Same border semantics switch as the DBSCAN++ baseline.
    seed:
        Sampling and post-processing seed.
    batch_queries:
        When True (default), the range queries that survive the gate run
        through the batched engine
        (:class:`~repro.index.engine.NeighborhoodCache` with the gated
        sample as the plan, serve-and-release). Every gated sample point
        is queried exactly once either way, and
        ``UpdatePartialNeighbors`` receives each executed result in the
        same sample order, so the output is identical to the per-point
        path.
    """

    def __init__(
        self,
        eps: float,
        tau: int,
        estimator: CardinalityEstimator,
        p: float = 0.3,
        alpha: float = 1.0,
        enable_post_processing: bool = True,
        assign_within_eps: bool = True,
        seed: int | np.random.Generator | None = 0,
        batch_queries: bool = True,
    ) -> None:
        super().__init__(eps, tau)
        if not 0.0 < p <= 1.0:
            raise InvalidParameterError(
                f"sample fraction p must lie in (0, 1]; got {p}"
            )
        self.p = float(p)
        self.assign_within_eps = bool(assign_within_eps)
        self.batch_queries = bool(batch_queries)
        self._rng = ensure_rng(seed)
        self.laf = LAF(
            estimator,
            alpha=alpha,
            enable_post_processing=enable_post_processing,
            seed=self._rng,
        )

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = check_unit_norm(X)
        n = X.shape[0]
        predicted_core = self.laf.begin_run(X, self.eps, self.tau)
        E = self.laf.partial_neighbors

        m = max(1, int(round(self.p * n)))
        sample = np.sort(self._rng.choice(n, size=m, replace=False))

        # Gate the per-sample range queries with CardEst.
        gated = sample[predicted_core[sample]]
        skipped = sample[~predicted_core[sample]]
        for s in skipped.tolist():
            E.register_stop_point(s)
        engine: NeighborhoodCache | None = None
        if self.batch_queries:
            # Every gated point is queried exactly once, in sample order,
            # so the gated set is the plan; serve-and-release keeps only
            # the prefetched tail of each block resident. The E.update
            # feed below still runs per result in sample order, exactly
            # as the per-point loop would. The index is handed over
            # unbuilt: built once, shard-first when sharding is active.
            engine = NeighborhoodCache(
                BruteForceIndex(), X, self.eps, evict_on_fetch=True
            )
            engine.plan(gated)
            fetch = engine.fetch
        else:
            index = BruteForceIndex().build(X)
            fetch = lambda s: index.range_query(X[s], self.eps)  # noqa: E731
        core_list: list[int] = []
        n_range_queries = 0
        try:
            for s in gated.tolist():
                neighbors = fetch(s)
                n_range_queries += 1
                E.update(s, neighbors)
                if neighbors.size >= self.tau:
                    core_list.append(s)
            engine_stats = engine.stats() if engine is not None else {}
        finally:
            # Deterministic release even when a query raises mid-fit
            # (an exception traceback would pin the engine, leaking a
            # process executor's shared-memory segment until gc).
            if engine is not None:
                engine.close()
        core_sample = np.array(core_list, dtype=np.int64)

        stats: dict[str, int | float] = {
            "range_queries": n_range_queries,
            "skipped_queries": int(skipped.size),
            "sample_size": int(sample.size),
            "n_core": int(core_sample.size),
        }
        stats.update(engine_stats)
        core_mask = np.zeros(n, dtype=bool)
        if core_sample.size == 0:
            outcome = self.laf.finalize(np.full(n, NOISE, dtype=np.int64), self.tau)
            stats.update(self.laf.stats())
            stats.update(
                {"fn_detected": outcome.n_false_negatives, "merges": outcome.n_merges}
            )
            return ClusteringResult(
                labels=canonicalize_labels(outcome.labels),
                core_mask=core_mask,
                stats=stats,
            )

        # DBSCAN++ core graph: connect cores within eps, label components.
        core_X = X[core_sample]
        core_labels = connected_components_within(core_X, self.eps)

        labels = np.full(n, NOISE, dtype=np.int64)
        for start, stop, block in iter_distance_blocks(X, core_X):
            nearest = np.argmin(block, axis=1)
            nearest_dist = block[np.arange(block.shape[0]), nearest]
            assigned = core_labels[nearest]
            if self.assign_within_eps:
                assigned = np.where(nearest_dist < self.eps, assigned, NOISE)
            labels[start:stop] = assigned
        labels[core_sample] = core_labels
        core_mask[core_sample] = True

        outcome = self.laf.finalize(labels, self.tau)
        stats.update(self.laf.stats())
        stats.update(
            {"fn_detected": outcome.n_false_negatives, "merges": outcome.n_merges}
        )
        return ClusteringResult(
            labels=canonicalize_labels(outcome.labels),
            core_mask=core_mask,
            stats=stats,
        )
