"""LAF-DBSCAN++: the LAF plugin applied to DBSCAN++.

Demonstrates the framework's genericity (paper Section 2.1): the same
computation waste exists in sampling-based variants, because DBSCAN++
still runs one full range query per *sampled* point to decide coreness.
LAF inserts the identical gate:

* a sampled point predicted non-core skips its range query and is
  registered in ``E``;
* executed range queries feed ``UpdatePartialNeighbors`` so predicted
  stop points accumulate partial neighbors;
* after DBSCAN++ finishes (core graph + nearest-core assignment), the
  standard post-processing merges clusters split by false negatives.

The paper fixes ``alpha = 1.0`` for LAF-DBSCAN++ and reuses DBSCAN++'s
sample fraction ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.clustering.components import connected_components_within
from repro.core.laf import LAF
from repro.distances import check_unit_norm, iter_distance_blocks
from repro.engine_config import ExecutionConfig
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["LAFDBSCANPlusPlus"]


class LAFDBSCANPlusPlus(Clusterer):
    """LAF-enhanced DBSCAN++ (uniform sampling host).

    Parameters
    ----------
    eps, tau:
        Density parameters (cosine distance).
    p:
        Sample fraction in (0, 1] (kept identical to the DBSCAN++
        baseline in the paper's comparisons).
    estimator:
        Fitted cardinality estimator.
    alpha:
        Gate error factor; the paper fixes 1.0 for this method.
    assign_within_eps:
        Same border semantics switch as the DBSCAN++ baseline.
    seed:
        Sampling and post-processing seed.
    execution:
        Execution policy (default backend: exact brute force). On the
        default batched path the range queries that survive the gate run
        through the batched engine with the gated sample as the plan
        (serve-and-release). Every gated sample point is queried exactly
        once either way, and ``UpdatePartialNeighbors`` receives each
        executed result in the same sample order, so the output is
        identical to the per-point path (``batch_queries=False``).
    batch_queries:
        Deprecated: folds into ``execution`` (a ``DeprecationWarning``)
        and produces identical results.
    """

    algo_name = "laf-dbscan++"

    def __init__(
        self,
        eps: float,
        tau: int,
        estimator: CardinalityEstimator,
        p: float = 0.3,
        alpha: float = 1.0,
        enable_post_processing: bool = True,
        assign_within_eps: bool = True,
        seed: int | np.random.Generator | None = 0,
        batch_queries: bool | None = None,
        execution: ExecutionConfig | None = None,
    ) -> None:
        super().__init__(eps, tau, execution=execution)
        self._resolve_legacy_execution(batch_queries=batch_queries)
        if not 0.0 < p <= 1.0:
            raise InvalidParameterError(f"sample fraction p must lie in (0, 1]; got {p}")
        self.p = float(p)
        self.assign_within_eps = bool(assign_within_eps)
        self._rng = ensure_rng(seed)
        self.laf = LAF(
            estimator,
            alpha=alpha,
            enable_post_processing=enable_post_processing,
            seed=self._rng,
        )

    def model_params(self) -> dict:
        params = super().model_params()
        params.update(
            p=self.p,
            assign_within_eps=self.assign_within_eps,
            alpha=self.laf.alpha,
            enable_post_processing=self.laf.enable_post_processing,
        )
        return params

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = check_unit_norm(X)
        n = X.shape[0]
        predicted_core = self.laf.begin_run(X, self.eps, self.tau)
        E = self.laf.partial_neighbors

        m = max(1, int(round(self.p * n)))
        sample = np.sort(self._rng.choice(n, size=m, replace=False))

        # Gate the per-sample range queries with CardEst.
        gated = sample[predicted_core[sample]]
        skipped = sample[~predicted_core[sample]]
        for s in skipped.tolist():
            E.register_stop_point(s)
        core_list: list[int] = []
        n_range_queries = 0
        # Every gated point is queried exactly once, in sample order, so
        # the gated set is the plan; serve-and-release keeps only the
        # prefetched tail of each block resident. The E.update feed below
        # still runs per result in sample order, exactly as the per-point
        # loop would.
        with self._engine(X, plan=gated) as engine:
            fetch = engine.fetch
            for s in gated.tolist():
                neighbors = fetch(s)
                n_range_queries += 1
                E.update(s, neighbors)
                if neighbors.size >= self.tau:
                    core_list.append(s)
            engine_stats = engine.stats()
        core_sample = np.array(core_list, dtype=np.int64)

        stats: dict[str, int | float] = {
            "range_queries": n_range_queries,
            "skipped_queries": int(skipped.size),
            "sample_size": int(sample.size),
            "n_core": int(core_sample.size),
        }
        stats.update(engine_stats)
        core_mask = np.zeros(n, dtype=bool)
        if core_sample.size == 0:
            outcome = self.laf.finalize(np.full(n, NOISE, dtype=np.int64), self.tau)
            stats.update(self.laf.stats())
            stats.update(
                {"fn_detected": outcome.n_false_negatives, "merges": outcome.n_merges}
            )
            return ClusteringResult(
                labels=canonicalize_labels(outcome.labels),
                core_mask=core_mask,
                stats=stats,
            )

        # DBSCAN++ core graph: connect cores within eps, label components.
        core_X = X[core_sample]
        core_labels = connected_components_within(core_X, self.eps)

        labels = np.full(n, NOISE, dtype=np.int64)
        for start, stop, block in iter_distance_blocks(X, core_X):
            nearest = np.argmin(block, axis=1)
            nearest_dist = block[np.arange(block.shape[0]), nearest]
            assigned = core_labels[nearest]
            if self.assign_within_eps:
                assigned = np.where(nearest_dist < self.eps, assigned, NOISE)
            labels[start:stop] = assigned
        labels[core_sample] = core_labels
        core_mask[core_sample] = True

        outcome = self.laf.finalize(labels, self.tau)
        stats.update(self.laf.stats())
        stats.update(
            {"fn_detected": outcome.n_false_negatives, "merges": outcome.n_merges}
        )
        return ClusteringResult(
            labels=canonicalize_labels(outcome.labels),
            core_mask=core_mask,
            stats=stats,
        )
