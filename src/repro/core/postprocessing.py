"""Algorithm 3: detect false negatives and merge wrongly split clusters.

A false-negative prediction (a true core point predicted as stop point)
can split one DBSCAN cluster into several: the cluster expansion stops
at the false stop point instead of flowing through it. Post-processing
repairs this with only the bookkeeping gathered during clustering:

for every recorded stop point ``P`` with ``|E(P)| >= tau`` (proof that
``P`` is truly core), pick a random non-noise partial neighbor ``P'``,
take its cluster as the destination, and merge the clusters of all
points in ``E(P)`` into it.

Merges use union-find so chains of repairs compose; the false-negative
point itself joins the destination cluster (it is a core member of the
merged cluster by construction).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.clustering.base import NOISE
from repro.clustering.union_find import UnionFind
from repro.core.partial_neighbors import PartialNeighborMap
from repro.rng import ensure_rng

__all__ = ["PostProcessOutcome", "post_process"]


@dataclasses.dataclass(frozen=True)
class PostProcessOutcome:
    """Labels after repair plus the counters the paper discusses."""

    labels: np.ndarray
    n_false_negatives: int
    n_merges: int


def post_process(
    labels: np.ndarray,
    partial_neighbors: PartialNeighborMap,
    tau: int,
    seed: int | np.random.Generator | None = 0,
) -> PostProcessOutcome:
    """Run Algorithm 3 over a finished labeling.

    Parameters
    ----------
    labels:
        Cluster ids with ``-1`` noise, as produced by the host algorithm
        *before* repair. Not mutated.
    partial_neighbors:
        The map ``E`` accumulated during clustering.
    tau:
        The core threshold; ``|E(P)| >= tau`` flags a false negative.
    seed:
        Seed for the random destination-cluster choice (line 3).
    """
    labels = np.asarray(labels, dtype=np.int64)
    rng = ensure_rng(seed)
    n_clusters = int(labels.max()) + 1 if labels.size and labels.max() >= 0 else 0
    uf = UnionFind(n_clusters)
    out = labels.copy()
    n_false_negatives = 0
    n_merges = 0
    for point, neighbors in partial_neighbors.items():
        if len(neighbors) < tau:
            continue
        n_false_negatives += 1
        members = np.fromiter(neighbors, dtype=np.int64)
        member_labels = out[members]
        non_noise = members[member_labels != NOISE]
        if non_noise.size == 0:
            continue  # nothing to merge into — every partial neighbor is noise
        # Line 3: randomly select a non-noise neighbor; its cluster is
        # the destination.
        destination_point = int(rng.choice(np.sort(non_noise)))
        destination = uf.find(int(out[destination_point]))
        for label in np.unique(out[non_noise]):
            root = uf.find(int(label))
            if root != destination:
                uf.union(destination, root)
                destination = uf.find(destination)
                n_merges += 1
        # The false negative itself is a core member of the merged cluster.
        out[point] = destination
    if n_clusters:
        cluster_ids = out >= 0
        out[cluster_ids] = [uf.find(int(label)) for label in out[cluster_ids]]
    return PostProcessOutcome(
        labels=out,
        n_false_negatives=n_false_negatives,
        n_merges=n_merges,
    )
