"""The map ``E`` of predicted stop points and Algorithm 2.

``E`` records every point the estimator predicted to be a stop point
(non-core/noise) together with its *partial neighbors* — the subset of
its true neighbors discovered for free while other points ran their
range queries. Algorithm 2 (``UpdatePartialNeighbors``) exploits
symmetry: if a range query from ``P`` finds the predicted stop point
``P_n``, then ``P`` is also a neighbor of ``P_n`` and is appended to
``E(P_n)``.

The invariant "``E(P)`` is a subset of P's true eps-neighborhood" is what
makes Algorithm 3 sound: observing ``|E(P)| >= tau`` proves ``P`` is a
true core point, i.e. a false negative of the estimator.

Implementation note: ``update`` is on the per-range-query hot path, so
it only appends vectorized filter results; the per-stop-point neighbor
sets are materialized lazily (with exact set semantics — duplicate
contributions collapse) the first time the map is read.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["PartialNeighborMap"]


class PartialNeighborMap:
    """Insertion-ordered map from predicted stop points to partial neighbors.

    Point ids are dataset row indices. A boolean membership array makes
    Algorithm 2's per-neighbor test a vectorized filter.
    """

    def __init__(self, n_points: int) -> None:
        self._n_points = n_points
        self._is_stop = np.zeros(n_points, dtype=bool)
        self._registered: list[int] = []  # insertion order
        # Pending (stop points, contributor) events, aggregated lazily.
        self._event_stops: list[np.ndarray] = []
        self._event_contributors: list[int] = []
        self._materialized: dict[int, set[int]] | None = None

    def __len__(self) -> int:
        return len(self._registered)

    def __contains__(self, point: int) -> bool:
        return bool(self._is_stop[point])

    def __iter__(self) -> Iterator[int]:
        return iter(self._registered)

    def register_stop_point(self, point: int) -> None:
        """Algorithm 1, lines 8/27: ``if P not in E then E(P) := {}``."""
        if not self._is_stop[point]:
            self._is_stop[point] = True
            self._registered.append(int(point))
            if self._materialized is not None:
                self._materialized[int(point)] = set()

    def update(self, point: int, neighbors: np.ndarray) -> None:
        """Algorithm 2: add ``point`` to ``E(P_n)`` for every recorded
        ``P_n`` among its discovered ``neighbors``."""
        neighbors = np.asarray(neighbors)
        if neighbors.size == 0:
            return
        recorded = neighbors[self._is_stop[neighbors]]
        point = int(point)
        recorded = recorded[recorded != point]
        if recorded.size == 0:
            return
        self._event_stops.append(np.asarray(recorded, dtype=np.int64))
        self._event_contributors.append(point)
        self._materialized = None

    # ------------------------------------------------------------------
    # Lazy aggregation
    # ------------------------------------------------------------------

    def _materialize(self) -> dict[int, set[int]]:
        if self._materialized is not None:
            return self._materialized
        table: dict[int, set[int]] = {p: set() for p in self._registered}
        if self._event_stops:
            stops = np.concatenate(self._event_stops)
            contributors = np.repeat(
                np.asarray(self._event_contributors, dtype=np.int64),
                [a.size for a in self._event_stops],
            )
            # Exact set semantics: collapse duplicate (stop, contributor)
            # pairs in one vectorized pass.
            pair_keys = stops * self._n_points + contributors
            _, unique_idx = np.unique(pair_keys, return_index=True)
            stops = stops[unique_idx]
            contributors = contributors[unique_idx]
            order = np.argsort(stops, kind="stable")
            stops = stops[order]
            contributors = contributors[order]
            boundaries = np.flatnonzero(np.diff(stops)) + 1
            for group_stops, group_contribs in zip(
                np.split(stops, boundaries), np.split(contributors, boundaries)
            ):
                table[int(group_stops[0])].update(group_contribs.tolist())
        self._materialized = table
        return table

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------

    def neighbors_of(self, point: int) -> set[int]:
        """The partial-neighbor set ``E(P)`` (empty if unrecorded)."""
        return self._materialize().get(int(point), set())

    def items(self) -> Iterator[tuple[int, set[int]]]:
        """Iterate (stop point, partial neighbors) in insertion order."""
        table = self._materialize()
        return iter((p, table[p]) for p in self._registered)

    def false_negative_candidates(self, tau: int) -> list[int]:
        """Stop points with at least ``tau`` partial neighbors —
        provably core, hence false negatives (Algorithm 3, line 2)."""
        table = self._materialize()
        return [p for p in self._registered if len(table[p]) >= tau]
