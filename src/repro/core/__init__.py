"""LAF — the paper's contribution.

The Learned Accelerator Framework plugs into DBSCAN-like algorithms:

* :class:`LAF` bundles the plugin state: the cardinality estimator, the
  error factor ``alpha`` gating range queries at ``alpha * tau``, and
  the partial-neighbor map ``E``;
* :class:`PartialNeighborMap` implements Algorithm 2
  (``UpdatePartialNeighbors``);
* :func:`post_process` implements Algorithm 3 (``PostProcessing``) —
  false-negative detection and cluster merging;
* :class:`LAFDBSCAN` is Algorithm 1 (LAF-enhanced DBSCAN);
* :class:`LAFDBSCANPlusPlus` applies the same plugin to DBSCAN++,
  demonstrating LAF's genericity over sampling-based variants;
* :func:`select_alpha` / :func:`predicted_core_ratio` support the
  paper's parameter rules (grid-searched alpha; DBSCAN++ sample fraction
  ``p = delta + R_c``).
"""

from repro.core.alpha import predicted_core_ratio, select_alpha
from repro.core.laf import LAF
from repro.core.laf_dbscan import LAFDBSCAN
from repro.core.laf_dbscanpp import LAFDBSCANPlusPlus
from repro.core.partial_neighbors import PartialNeighborMap
from repro.core.postprocessing import PostProcessOutcome, post_process

__all__ = [
    "LAF",
    "LAFDBSCAN",
    "LAFDBSCANPlusPlus",
    "PartialNeighborMap",
    "PostProcessOutcome",
    "post_process",
    "predicted_core_ratio",
    "select_alpha",
]
