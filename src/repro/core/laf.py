"""The LAF plugin bundle: estimator gate + partial neighbors + repair.

``LAF`` is what the paper calls "a generic learned accelerator
framework": everything a DBSCAN-like host algorithm needs to skip range
queries safely. A host algorithm uses it in three touch points, mirroring
the red lines of Algorithm 1:

1. ``predict_is_core(...)`` / ``predicted_core_mask(...)`` — the
   ``CardEst(P) >= alpha * tau`` gate placed before every range query;
2. ``partial_neighbors.update(P, N)`` after every executed range query
   (Algorithm 2), and ``partial_neighbors.register_stop_point(P)``
   whenever the gate predicts a stop point;
3. ``finalize(labels)`` at the end (Algorithm 3 post-processing).

The same :class:`LAF` instance therefore accelerates original DBSCAN
(:class:`~repro.core.laf_dbscan.LAFDBSCAN`), DBSCAN++
(:class:`~repro.core.laf_dbscanpp.LAFDBSCANPlusPlus`) or any custom
variant — see ``examples/custom_estimator_plugin.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.partial_neighbors import PartialNeighborMap
from repro.core.postprocessing import PostProcessOutcome, post_process
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["LAF"]


class LAF:
    """Learned Accelerator Framework state for one clustering run.

    Parameters
    ----------
    estimator:
        A fitted cardinality estimator (see :mod:`repro.estimators`).
    alpha:
        Error factor multiplying ``tau`` in the gate. Larger alpha
        raises the bar for "core", increasing false negatives (faster,
        lower quality); smaller alpha increases false positives (slower,
        higher quality). This is the speed-quality knob of Figure 2/3.
    enable_post_processing:
        Disable only for ablation; the paper always post-processes.
    seed:
        Seed for the post-processing destination choice.
    """

    def __init__(
        self,
        estimator: CardinalityEstimator,
        alpha: float = 1.0,
        enable_post_processing: bool = True,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if alpha <= 0:
            raise InvalidParameterError(f"alpha must be positive; got {alpha}")
        self.estimator = estimator
        self.alpha = float(alpha)
        self.enable_post_processing = bool(enable_post_processing)
        self._rng = ensure_rng(seed)
        self.partial_neighbors: PartialNeighborMap | None = None
        self.n_cardest_calls = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_run(self, X: np.ndarray, eps: float, tau: int) -> np.ndarray:
        """Bind the target set and precompute the gate for every point.

        Per Algorithm 1 each point consults ``CardEst`` at most once, so
        the per-point predictions are batched here — numerically
        identical to calling the estimator point by point, but it keeps
        the estimator's matrix work vectorized. Returns the predicted
        core mask ``CardEst(P) >= alpha * tau``.
        """
        X = np.asarray(X, dtype=np.float64)
        self.estimator.bind(X)
        self.partial_neighbors = PartialNeighborMap(X.shape[0])
        predictions = self.estimator.estimate_many(X, eps)
        self.n_cardest_calls = int(X.shape[0])
        return predictions >= self.alpha * tau

    def finalize(self, labels: np.ndarray, tau: int) -> PostProcessOutcome:
        """Algorithm 3 (or a pass-through when post-processing is off)."""
        if self.partial_neighbors is None:
            raise InvalidParameterError("finalize() called before begin_run()")
        if not self.enable_post_processing:
            return PostProcessOutcome(
                labels=np.asarray(labels, dtype=np.int64),
                n_false_negatives=len(
                    self.partial_neighbors.false_negative_candidates(tau)
                ),
                n_merges=0,
            )
        return post_process(labels, self.partial_neighbors, tau, seed=self._rng)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int | float]:
        """Plugin counters merged into the host's ClusteringResult."""
        return {
            "cardest_calls": self.n_cardest_calls,
            "predicted_stop_points": 0
            if self.partial_neighbors is None
            else len(self.partial_neighbors),
            "alpha": self.alpha,
        }
