"""Algorithm 1: LAF-enhanced DBSCAN.

Line-for-line implementation of the paper's Algorithm 1. The black lines
are original DBSCAN (:mod:`repro.clustering.dbscan`); the red lines —
the ``CardEst`` gate, the map ``E`` maintenance and the final
``PostProcessing`` — come from the :class:`~repro.core.laf.LAF` plugin:

* a point predicted non-core (``CardEst(P) < alpha * tau``) is marked
  noise *without* executing its range query (lines 6-9, 26-27) and
  registered in ``E``;
* every executed range query feeds ``UpdatePartialNeighbors`` (lines
  11, 24), so predicted stop points passively accumulate neighbors;
* the post-processing pass (line 28) detects false negatives
  (``|E(P)| >= tau``) and merges the clusters they split.

With a perfect estimator and ``alpha = 1`` the gate agrees with the
exact core test everywhere, no false predictions exist, and the output
equals original DBSCAN exactly — an invariant the integration tests
assert with the :class:`~repro.estimators.exact.ExactCardinalityEstimator`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.clustering.base import (
    NOISE,
    Clusterer,
    ClusteringResult,
    canonicalize_labels,
)
from repro.core.laf import LAF
from repro.distances.metric import COSINE, Metric
from repro.engine_config import ExecutionConfig
from repro.estimators.base import CardinalityEstimator
from repro.index.base import NeighborIndex

__all__ = ["LAFDBSCAN"]

#: Internal sentinel for unvisited points (paper: "undefined").
UNDEFINED = -2


class LAFDBSCAN(Clusterer):
    """LAF-enhanced DBSCAN (the paper's main method).

    Parameters
    ----------
    eps, tau:
        DBSCAN density parameters (cosine distance, neighbor threshold).
    estimator:
        Fitted cardinality estimator; bound to the clustered set inside
        :meth:`fit`.
    alpha:
        Error factor of the gate (paper Table 1 values per dataset).
    enable_post_processing:
        Turn off only for the ablation study.
    seed:
        Seed for the post-processing destination choice.
    execution:
        Execution policy (default backend: exact brute force, as in the
        paper). On the default batched path the executed range queries
        go through the batched engine: exactly the predicted-core points
        are planned (each is queried once by Algorithm 1, no more, no
        fewer), so the gate's savings are preserved while the surviving
        queries run as blocked matrix products.
        ``UpdatePartialNeighbors`` still fires per executed query at its
        Algorithm 1 line, so the map ``E`` — and therefore
        post-processing — is identical to the per-point path
        (``batch_queries=False``).
    index_factory, batch_queries:
        Deprecated: both fold into ``execution`` (a
        ``DeprecationWarning`` each) and produce identical results.

    Examples
    --------
    >>> from repro.data import load_dataset
    >>> from repro.estimators import ExactCardinalityEstimator
    >>> ds = load_dataset("MS-50k", scale=0.004, seed=3)
    >>> laf = LAFDBSCAN(eps=0.55, tau=5, estimator=ExactCardinalityEstimator())
    >>> result = laf.fit(ds.X)
    >>> result.stats["skipped_queries"] > 0
    True
    """

    algo_name = "laf-dbscan"

    def __init__(
        self,
        eps: float,
        tau: int,
        estimator: CardinalityEstimator,
        alpha: float = 1.0,
        enable_post_processing: bool = True,
        index_factory: Callable[[], NeighborIndex] | None = None,
        metric: str | Metric = COSINE,
        seed: int | np.random.Generator | None = 0,
        batch_queries: bool | None = None,
        execution: ExecutionConfig | None = None,
    ) -> None:
        super().__init__(eps, tau, metric=metric, execution=execution)
        self._resolve_legacy_execution(index_factory, batch_queries)
        self.laf = LAF(
            estimator,
            alpha=alpha,
            enable_post_processing=enable_post_processing,
            seed=seed,
        )

    def model_params(self) -> dict:
        params = super().model_params()
        params.update(
            alpha=self.laf.alpha,
            enable_post_processing=self.laf.enable_post_processing,
        )
        return params

    def fit(self, X: np.ndarray) -> ClusteringResult:
        X = self.metric.validate(X)
        n = X.shape[0]
        predicted_core = self.laf.begin_run(X, self.eps, self.tau)  # the CardEst gate
        E = self.laf.partial_neighbors

        labels = np.full(n, UNDEFINED, dtype=np.int64)  # line 3
        core_mask = np.zeros(n, dtype=bool)
        # Queue dedup: a duplicate enqueue is a semantic no-op (second
        # visit stops at the label check), so skip it up front.
        enqueued = np.zeros(n, dtype=bool)
        n_range_queries = 0
        n_skipped = 0
        cluster_id = -1

        # Algorithm 1 executes exactly one range query per
        # predicted-core point, so those are the plan; predicted stop
        # points are never planned and never computed, keeping the
        # gate's skipped-query savings intact.
        with self._engine(X, plan=np.flatnonzero(predicted_core)) as engine:
            fetch = engine.fetch
            for p in range(n):  # line 4
                if labels[p] != UNDEFINED:  # line 5
                    continue
                if not predicted_core[p]:  # line 6: CardEst(P) < alpha * tau
                    labels[p] = NOISE  # line 7
                    E.register_stop_point(p)  # line 8
                    n_skipped += 1
                    continue  # line 9
                neighbors = fetch(p)  # line 10
                n_range_queries += 1
                E.update(p, neighbors)  # line 11
                if neighbors.size < self.tau:  # line 12 (false positive)
                    labels[p] = NOISE  # line 13
                    continue  # line 14
                cluster_id += 1  # line 15
                labels[p] = cluster_id  # line 16
                core_mask[p] = True
                queue = neighbors[neighbors != p].tolist()  # line 17: S := N - {P}
                enqueued[neighbors] = True
                head = 0
                while head < len(queue):  # line 18
                    q = queue[head]
                    head += 1
                    if labels[q] == NOISE:  # line 19: border claims noise
                        labels[q] = cluster_id
                    if labels[q] != UNDEFINED:  # line 20
                        continue
                    labels[q] = cluster_id  # line 21
                    if predicted_core[q]:  # line 22: CardEst(Q) >= alpha * tau
                        q_neighbors = fetch(q)  # line 23
                        n_range_queries += 1
                        E.update(q, q_neighbors)  # line 24
                        if q_neighbors.size >= self.tau:  # line 25
                            core_mask[q] = True
                            fresh = q_neighbors[~enqueued[q_neighbors]]  # S := S u N
                            enqueued[fresh] = True
                            queue.extend(fresh.tolist())
                    else:
                        E.register_stop_point(q)  # lines 26-27
                        n_skipped += 1

            engine_stats = engine.stats()

        outcome = self.laf.finalize(labels, self.tau)  # line 28
        stats: dict[str, int | float] = {
            "range_queries": n_range_queries,
            "skipped_queries": n_skipped,
            "fn_detected": outcome.n_false_negatives,
            "merges": outcome.n_merges,
        }
        stats.update(self.laf.stats())
        stats.update(engine_stats)
        return ClusteringResult(
            labels=canonicalize_labels(outcome.labels),
            core_mask=core_mask,
            stats=stats,
        )
