"""One-call clustering facade over the clusterer registry.

The paper's method matrix is six clusterers × four index backends ×
sharded/unsharded execution. Rather than hand-wiring constructors, this
module exposes the matrix as data: a name registry
(:func:`make_clusterer`) and a one-call entry point (:func:`cluster`)
that combine any algorithm with any
:class:`~repro.engine_config.ExecutionConfig`::

    import repro
    from repro import ExecutionConfig, IndexSpec, ShardingConfig

    result = repro.cluster(X, algo="dbscan", eps=0.5, tau=5)
    result = repro.cluster(
        X,
        algo="laf-dbscan",
        eps=0.5,
        tau=5,
        estimator=estimator,
        execution=ExecutionConfig(
            index=IndexSpec("cover_tree", {"base": 1.6}),
            sharding=ShardingConfig(n_shards=4, executor="process"),
        ),
    )

``experiments.methods.build_method`` (the paper-facing registry with
Section 3.1's hyperparameter defaults) resolves through this facade.
"""

from __future__ import annotations

from collections.abc import Mapping
from types import MappingProxyType
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.clustering import (
    DBSCAN,
    BlockDBSCAN,
    Clusterer,
    ClusteringResult,
    DBSCANPlusPlus,
    KNNBlockDBSCAN,
    RhoApproxDBSCAN,
)
from repro.core import LAFDBSCAN, LAFDBSCANPlusPlus
from repro.engine_config import ExecutionConfig
from repro.exceptions import InvalidParameterError

if TYPE_CHECKING:
    from pathlib import Path

    from repro.persistence import ClusterModel

__all__ = [
    "CLUSTERERS",
    "cluster",
    "clusterer_names",
    "fit_model",
    "load_model",
    "make_clusterer",
]

#: Registered clusterers, constructible by name. Read-only: the public
#: registry is part of the API surface, so it cannot be patched in place.
CLUSTERERS: Mapping[str, type[Clusterer]] = MappingProxyType(
    {
        "dbscan": DBSCAN,
        "dbscan++": DBSCANPlusPlus,
        "knn-block": KNNBlockDBSCAN,
        "block-dbscan": BlockDBSCAN,
        "rho-approx": RhoApproxDBSCAN,
        "laf-dbscan": LAFDBSCAN,
        "laf-dbscan++": LAFDBSCANPlusPlus,
    }
)

#: Accepted spelling variants (the registry is case-insensitive too).
_ALIASES = {
    "dbscanpp": "dbscan++",
    "laf-dbscanpp": "laf-dbscan++",
    "knn-block-dbscan": "knn-block",
    "rho-approx-dbscan": "rho-approx",
}


def clusterer_names() -> tuple[str, ...]:
    """The canonical names :func:`make_clusterer` accepts."""
    return tuple(sorted(CLUSTERERS))


def make_clusterer(
    name: str,
    *,
    execution: ExecutionConfig | None = None,
    **params: Any,
) -> Clusterer:
    """Instantiate a registered clusterer by name.

    ``name`` is case-insensitive (``"DBSCAN++"`` and ``"dbscan++"`` are
    the same method); ``params`` are the clusterer's constructor
    arguments (``eps``/``tau`` always, ``estimator`` for the LAF
    methods, ...); ``execution`` threads one
    :class:`~repro.engine_config.ExecutionConfig` through, configuring
    the backend, batching and sharding of the fit without touching any
    global state.
    """
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    cls = CLUSTERERS.get(key)
    if cls is None:
        raise InvalidParameterError(
            f"unknown clusterer {name!r}; available: {', '.join(clusterer_names())}"
        )
    if execution is not None:
        params["execution"] = execution
    return cls(**params)


def cluster(
    X: np.ndarray,
    algo: str = "dbscan",
    *,
    execution: ExecutionConfig | None = None,
    **params: Any,
) -> ClusteringResult:
    """Cluster ``X`` with a registered algorithm in one call.

    Equivalent to ``make_clusterer(algo, execution=execution,
    **params).fit(X)``; returns the
    :class:`~repro.clustering.base.ClusteringResult`.
    """
    return make_clusterer(algo, execution=execution, **params).fit(X)


def fit_model(
    X: np.ndarray,
    algo: str = "dbscan",
    *,
    execution: ExecutionConfig | None = None,
    **params: Any,
) -> "ClusterModel":
    """Fit a registered algorithm and freeze it for serving.

    Equivalent to ``make_clusterer(algo, ...).fit_model(X)``; returns a
    :class:`~repro.persistence.ClusterModel` supporting
    ``predict(X_new)``, ``save(path)`` and (after a restart)
    :func:`load_model`.
    """
    return make_clusterer(algo, execution=execution, **params).fit_model(X)


def load_model(
    path: "str | Path", *, mmap: bool = True, verify: bool = True
) -> "ClusterModel":
    """Load a :class:`~repro.persistence.ClusterModel` saved with ``save``."""
    from repro.persistence import load_model as _load_model

    return _load_model(path, mmap=mmap, verify=verify)
