"""Synthetic generators with the paper datasets' geometry.

Each generator returns ``(X, labels)`` where ``X`` is unit-normalized and
``labels`` are the *generative* component ids (noise = -1). The
generative labels are not the clustering ground truth — the paper (and
this reproduction) uses original DBSCAN's output as ground truth — but
they are useful for tests and sanity checks.

Geometry targets. Real neural embeddings are anisotropic: all pairwise
similarities are positive because vectors share a strong common
direction, and cluster structure is hierarchical (topics containing
subtopics). The generators therefore compose each point from

* a **global component** shared by the whole corpus (sets the floor of
  pairwise similarity — this is why, in the paper's Table 2, everything
  collapses into a single cluster once ``eps`` reaches 0.7);
* a **cluster component** (micro-cluster center, itself nested inside a
  macro topic for the MS family — making cluster counts fall as ``eps``
  grows and neighboring subtopics merge);
* **isotropic noise** whose per-cluster scale straddles the paper's
  decision thresholds (0.5-0.7), so loose clusters dissolve into noise
  at small ``eps`` and get absorbed at larger ``eps``;
* a **halo**: a fraction of each cluster's points with boosted noise,
  providing the gradual noise-ratio decay Table 2 shows.
"""

from __future__ import annotations

import numpy as np

from repro.data.projection import gaussian_random_projection
from repro.distances import normalize_rows
from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["uniform_sphere", "make_ms_like", "make_glove_like", "make_nyt_like"]

#: Noise points carry this generative label.
NOISE_LABEL = -1


def uniform_sphere(
    n: int, dim: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """``n`` points uniformly distributed on the unit sphere in ``dim``-d."""
    if n < 0 or dim < 2:
        raise InvalidParameterError(f"need n >= 0 and dim >= 2; got n={n}, dim={dim}")
    rng = ensure_rng(seed)
    raw = rng.normal(size=(n, dim))
    return normalize_rows(raw, copy=False)


def _skewed_cluster_sizes(
    n: int, n_clusters: int, rng: np.random.Generator, zipf_s: float
) -> np.ndarray:
    """Split ``n`` points into ``n_clusters`` Zipf-skewed positive sizes."""
    ranks = np.arange(1, n_clusters + 1, dtype=np.float64)
    weights = ranks**-zipf_s
    weights /= weights.sum()
    sizes = np.maximum(1, np.floor(weights * n).astype(np.int64))
    # Fix rounding drift while keeping every cluster non-empty.
    while sizes.sum() > n:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < n:
        sizes[int(rng.integers(n_clusters))] += 1
    return sizes


def _compose_points(
    rng: np.random.Generator,
    n: int,
    global_dir: np.ndarray,
    center: np.ndarray,
    global_weight: float,
    cluster_weight: float,
    noise_scale: float,
    halo_fraction: float,
    halo_boost: float,
) -> np.ndarray:
    """global + cluster + noise composition, with a noisy halo subset."""
    dim = global_dir.size
    scales = np.full(n, noise_scale)
    halo = rng.uniform(size=n) < halo_fraction
    scales[halo] *= halo_boost
    noise = uniform_sphere(n, dim, rng) * scales[:, None]
    raw = global_weight * global_dir + cluster_weight * center + noise
    return normalize_rows(raw, copy=False)


def make_ms_like(
    n: int,
    dim: int = 768,
    n_macro: int = 6,
    micro_per_macro: int = 8,
    global_weight: float = 0.45,
    cluster_weight: float = 0.65,
    macro_spread: float = 1.6,
    spread_range: tuple[float, float] = (0.38, 0.85),
    halo_fraction: float = 0.22,
    halo_boost: float = 2.2,
    noise_fraction: float = 0.12,
    zipf_s: float = 1.1,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Passage-embedding surrogate: hierarchical anisotropic mixture.

    Macro "topics" are random directions; each holds ``micro_per_macro``
    micro-clusters whose centers sit ``macro_spread`` away from the
    macro direction. Per-micro noise scales are drawn log-uniformly from
    ``spread_range`` so intra-cluster cosine distances straddle the
    paper's thresholds. "Noise" points carry the global direction only.

    The resulting (eps, tau) behaviour mirrors the paper's Table 2:
    rising ``eps`` first absorbs halo/loose points (noise ratio falls),
    then merges micro-clusters within a macro topic (cluster count
    falls), and finally collapses macros into one giant cluster.

    Returns
    -------
    ``(X, labels)`` — unit rows, generative micro-cluster ids (noise -1).
    """
    if not 0.0 <= noise_fraction < 1.0:
        raise InvalidParameterError(
            f"noise_fraction must lie in [0, 1); got {noise_fraction}"
        )
    rng = ensure_rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_clustered = n - n_noise
    n_micro = n_macro * micro_per_macro
    global_dir = uniform_sphere(1, dim, rng)[0]
    macro_dirs = uniform_sphere(n_macro, dim, rng)
    micro_centers = np.vstack(
        [
            normalize_rows(
                macro[None, :]
                + macro_spread * uniform_sphere(micro_per_macro, dim, rng),
                copy=False,
            )
            for macro in macro_dirs
        ]
    )
    sizes = _skewed_cluster_sizes(n_clustered, n_micro, rng, zipf_s)
    lo, hi = spread_range
    spreads = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_micro))
    parts: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    for cluster_id, (center, size, spread) in enumerate(
        zip(micro_centers, sizes, spreads)
    ):
        parts.append(
            _compose_points(
                rng,
                int(size),
                global_dir,
                center,
                global_weight,
                cluster_weight,
                float(spread),
                halo_fraction,
                halo_boost,
            )
        )
        labels.append(np.full(int(size), cluster_id, dtype=np.int64))
    if n_noise:
        background = global_weight * global_dir + 1.15 * uniform_sphere(
            n_noise, dim, rng
        )
        parts.append(normalize_rows(background, copy=False))
        labels.append(np.full(n_noise, NOISE_LABEL, dtype=np.int64))
    X = np.vstack(parts)
    y = np.concatenate(labels)
    order = rng.permutation(n)
    return X[order], y[order]


def make_glove_like(
    n: int,
    dim: int = 200,
    n_clusters: int = 25,
    global_weight: float = 0.35,
    cluster_weight: float = 0.8,
    spread_range: tuple[float, float] = (0.4, 0.95),
    halo_fraction: float = 0.15,
    halo_boost: float = 2.0,
    noise_fraction: float = 0.1,
    zipf_s: float = 1.25,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Word-embedding surrogate: flat anisotropic mixture, Zipf sizes.

    Like :func:`make_ms_like` but with a single level of clusters, a
    weaker global component and heavier size skew (word frequencies are
    heavy-tailed). Matches the paper's observation that Glove clusters
    are easier to keep separate than MS MARCO's.
    """
    if not 0.0 <= noise_fraction < 1.0:
        raise InvalidParameterError(
            f"noise_fraction must lie in [0, 1); got {noise_fraction}"
        )
    rng = ensure_rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_clustered = n - n_noise
    global_dir = uniform_sphere(1, dim, rng)[0]
    centers = uniform_sphere(n_clusters, dim, rng)
    sizes = _skewed_cluster_sizes(n_clustered, n_clusters, rng, zipf_s)
    lo, hi = spread_range
    spreads = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_clusters))
    parts: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    for cluster_id, (center, size, spread) in enumerate(zip(centers, sizes, spreads)):
        parts.append(
            _compose_points(
                rng,
                int(size),
                global_dir,
                center,
                global_weight,
                cluster_weight,
                float(spread),
                halo_fraction,
                halo_boost,
            )
        )
        labels.append(np.full(int(size), cluster_id, dtype=np.int64))
    if n_noise:
        background = global_weight * global_dir + 1.2 * uniform_sphere(
            n_noise, dim, rng
        )
        parts.append(normalize_rows(background, copy=False))
        labels.append(np.full(n_noise, NOISE_LABEL, dtype=np.int64))
    X = np.vstack(parts)
    y = np.concatenate(labels)
    order = rng.permutation(n)
    return X[order], y[order]


def make_nyt_like(
    n: int,
    out_dim: int = 256,
    vocab_size: int = 2000,
    n_topics: int = 12,
    doc_length_mean: float = 300.0,
    topic_concentration: float = 0.05,
    doc_topic_concentration: float = 0.08,
    background_mix: float = 0.3,
    noise_fraction: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Bag-of-words surrogate: LDA-style counts, random projection, normalize.

    Documents draw a sparse topic mixture (Dirichlet with small
    ``doc_topic_concentration``, so most documents are dominated by one
    topic), mix in a corpus-wide background word distribution
    (``background_mix`` — stopword mass shared by all articles), sample
    multinomial word counts, then follow the paper's NYTimes pipeline:
    Gaussian random projection to ``out_dim`` dimensions and L2
    normalization. "Noise" documents draw from the background only. The
    generative label is the dominant topic.
    """
    if not 0.0 <= noise_fraction < 1.0:
        raise InvalidParameterError(
            f"noise_fraction must lie in [0, 1); got {noise_fraction}"
        )
    if not 0.0 <= background_mix < 1.0:
        raise InvalidParameterError(
            f"background_mix must lie in [0, 1); got {background_mix}"
        )
    rng = ensure_rng(seed)
    topic_word = rng.dirichlet(np.full(vocab_size, topic_concentration), size=n_topics)
    background = rng.dirichlet(np.full(vocab_size, 1.0))
    n_noise = int(round(n * noise_fraction))
    n_docs = n - n_noise
    counts = np.zeros((n, vocab_size))
    labels = np.empty(n, dtype=np.int64)
    lengths = np.maximum(20, rng.poisson(doc_length_mean, size=n))
    for i in range(n_docs):
        theta = rng.dirichlet(np.full(n_topics, doc_topic_concentration))
        word_dist = (1.0 - background_mix) * (theta @ topic_word) + (
            background_mix * background
        )
        counts[i] = rng.multinomial(int(lengths[i]), word_dist)
        labels[i] = int(np.argmax(theta))
    for i in range(n_docs, n):
        counts[i] = rng.multinomial(int(lengths[i]), background)
        labels[i] = NOISE_LABEL
    projected = gaussian_random_projection(counts, out_dim, rng)
    X = normalize_rows(projected, copy=False)
    order = rng.permutation(n)
    return X[order], y_ordered(labels, order)


def y_ordered(labels: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Apply a permutation to labels (tiny helper kept for readability)."""
    return labels[order]
