"""Dataset registry mirroring the paper's Table 1.

The registry keeps the paper's names, dimensions, relative sizes and the
per-dataset error factors ``alpha`` used by LAF-DBSCAN, while the point
counts scale by a single ``scale`` factor so the whole evaluation runs on
one machine (see DESIGN.md, "Data substitutions").

>>> ds = load_dataset("MS-50k", scale=0.01, seed=0)
>>> ds.X.shape[1]
768
>>> train, test = ds.split()
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping
from types import MappingProxyType

import numpy as np

from repro.data.splits import train_test_split
from repro.data.synthetic import make_glove_like, make_ms_like, make_nyt_like
from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["DatasetSpec", "Dataset", "DATASET_SPECS", "dataset_names", "load_dataset"]

#: Smallest dataset the registry will generate regardless of scale.
_MIN_POINTS = 120


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Static description of one evaluation dataset (paper Table 1)."""

    name: str
    n_full: int
    dim: int
    alpha: float
    vector_type: str
    generator: Callable[..., tuple[np.ndarray, np.ndarray]]

    def n_at_scale(self, scale: float) -> int:
        if scale <= 0:
            raise InvalidParameterError(f"scale must be positive; got {scale}")
        return max(_MIN_POINTS, int(round(self.n_full * scale)))


@dataclasses.dataclass(frozen=True)
class Dataset:
    """A generated dataset plus its registry spec.

    Attributes
    ----------
    X:
        Unit-normalized vectors, shape ``(n, spec.dim)``.
    generative_labels:
        The generator's component ids (noise -1). Not the clustering
        ground truth — the paper uses original DBSCAN output for that.
    """

    name: str
    X: np.ndarray
    generative_labels: np.ndarray
    spec: DatasetSpec
    seed: int | None

    @property
    def n_points(self) -> int:
        return int(self.X.shape[0])

    @property
    def dim(self) -> int:
        return int(self.X.shape[1])

    def split(
        self, train_fraction: float = 0.8, seed: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Paper-style 8:2 split into (train, test) matrices."""
        split_seed = self.seed if seed is None else seed
        return train_test_split(self.X, train_fraction, split_seed)


def _spec(name, n_full, dim, alpha, vector_type, generator) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        n_full=n_full,
        dim=dim,
        alpha=alpha,
        vector_type=vector_type,
        generator=generator,
    )


#: Table 1 of the paper: name -> (size, dim, alpha, vector type).
#: Read-only: the paper's dataset matrix is fixed, not patchable state.
DATASET_SPECS: Mapping[str, DatasetSpec] = MappingProxyType(
    {
        "NYT-150k": _spec(
            "NYT-150k", 150_000, 256, 1.15, "Bag-of-words", make_nyt_like
        ),
        "Glove-150k": _spec(
            "Glove-150k", 150_000, 200, 2.0, "Word embedding", make_glove_like
        ),
        "MS-150k": _spec(
            "MS-150k", 152_185, 768, 7.7, "Passage embedding", make_ms_like
        ),
        "MS-100k": _spec(
            "MS-100k", 107_400, 768, 2.0, "Passage embedding", make_ms_like
        ),
        "MS-50k": _spec("MS-50k", 53_700, 768, 1.5, "Passage embedding", make_ms_like),
    }
)


def dataset_names() -> list[str]:
    """All registry names, in Table 1 order."""
    return list(DATASET_SPECS)


def load_dataset(
    name: str,
    scale: float = 0.01,
    seed: int | None = 0,
    **generator_overrides,
) -> Dataset:
    """Generate the named dataset at ``scale`` times its paper size.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (paper Table 1 names).
    scale:
        Fraction of the paper's point count to generate (default 1%).
    seed:
        Generator seed; also the default split seed.
    generator_overrides:
        Extra keyword arguments forwarded to the underlying generator
        (e.g. ``noise_fraction``).

    Notes
    -----
    The three MS datasets intentionally share one distribution family and
    differ only in size (and seed), mirroring how the paper samples
    nested subsets of MS MARCO for the scalability study.
    """
    if name not in DATASET_SPECS:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_SPECS)}"
        )
    spec = DATASET_SPECS[name]
    n = spec.n_at_scale(scale)
    rng = ensure_rng(seed)
    kwargs = {"dim": spec.dim} if "dim" not in generator_overrides else {}
    if spec.generator is make_nyt_like:
        kwargs = {"out_dim": spec.dim}
    kwargs.update(generator_overrides)
    X, labels = spec.generator(n, seed=rng, **kwargs)
    return Dataset(name=name, X=X, generative_labels=labels, spec=spec, seed=seed)
