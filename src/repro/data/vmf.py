"""von Mises-Fisher sampling on the unit hypersphere.

The vMF distribution is the canonical model for directional (angular)
data: density proportional to ``exp(kappa * <mu, x>)`` on the sphere.
Sampling uses Wood's (1994) rejection scheme for the cosine component
plus a uniform tangent direction, then a Householder reflection carries
the north pole onto the requested mean direction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["sample_vmf"]


def _sample_cosines(
    dim: int, kappa: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Wood's rejection sampler for the component along the mean direction."""
    b = (-2.0 * kappa + np.sqrt(4.0 * kappa**2 + (dim - 1.0) ** 2)) / (dim - 1.0)
    x0 = (1.0 - b) / (1.0 + b)
    c = kappa * x0 + (dim - 1.0) * np.log(1.0 - x0**2)
    out = np.empty(n)
    filled = 0
    while filled < n:
        m = max(n - filled, 16)
        z = rng.beta((dim - 1.0) / 2.0, (dim - 1.0) / 2.0, size=m)
        w = (1.0 - (1.0 + b) * z) / (1.0 - (1.0 - b) * z)
        u = rng.uniform(size=m)
        accept = kappa * w + (dim - 1.0) * np.log1p(-x0 * w) - c >= np.log(u)
        accepted = w[accept]
        take = min(accepted.size, n - filled)
        out[filled : filled + take] = accepted[:take]
        filled += take
    return out


def _householder_rotate(samples: np.ndarray, mu: np.ndarray) -> np.ndarray:
    """Map samples concentrated around ``e_1`` to concentrate around ``mu``."""
    dim = mu.size
    e1 = np.zeros(dim)
    e1[0] = 1.0
    u = e1 - mu
    norm = np.linalg.norm(u)
    if norm < 1e-12:  # mu is (numerically) the north pole already
        return samples
    u /= norm
    return samples - 2.0 * np.outer(samples @ u, u)


def sample_vmf(
    mu: np.ndarray,
    kappa: float,
    n: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``n`` unit vectors from vMF(``mu``, ``kappa``).

    Parameters
    ----------
    mu:
        Mean direction; normalized internally.
    kappa:
        Concentration >= 0. ``kappa = 0`` is the uniform distribution on
        the sphere.
    n:
        Number of samples.
    seed:
        Seed or generator.

    Returns
    -------
    Array of shape ``(n, dim)`` with unit rows.
    """
    mu = np.asarray(mu, dtype=np.float64)
    if mu.ndim != 1 or mu.size < 2:
        raise InvalidParameterError("mu must be a 1-D vector with dim >= 2")
    if kappa < 0:
        raise InvalidParameterError(f"kappa must be non-negative; got {kappa}")
    if n < 0:
        raise InvalidParameterError(f"n must be non-negative; got {n}")
    rng = ensure_rng(seed)
    dim = mu.size
    if n == 0:
        return np.empty((0, dim))
    norm = np.linalg.norm(mu)
    if norm == 0.0:  # reprolint: disable=RPL008 -- exact degenerate-input
        # check: only a literally all-zero mu has no direction at all
        raise InvalidParameterError("mu must be non-zero")
    mu = mu / norm

    if kappa == 0.0:  # reprolint: disable=RPL008 -- exact parameter
        # sentinel: kappa=0 selects the uniform-sphere branch by contract
        raw = rng.normal(size=(n, dim))
        return raw / np.linalg.norm(raw, axis=1, keepdims=True)

    w = _sample_cosines(dim, kappa, n, rng)
    # Uniform directions in the tangent space of e_1.
    tangent = rng.normal(size=(n, dim - 1))
    tangent /= np.linalg.norm(tangent, axis=1, keepdims=True)
    samples = np.empty((n, dim))
    samples[:, 0] = w
    samples[:, 1:] = np.sqrt(np.clip(1.0 - w**2, 0.0, None))[:, None] * tangent
    rotated = _householder_rotate(samples, mu)
    # Renormalize to wash out accumulated rounding.
    return rotated / np.linalg.norm(rotated, axis=1, keepdims=True)
