"""Train/test splitting.

The paper splits every dataset 8:2, trains the cardinality estimator on
the training 80% and runs all clustering methods on the testing 20%.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["train_test_split"]


def train_test_split(
    X: np.ndarray,
    train_fraction: float = 0.8,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffle and split rows of ``X`` into (train, test).

    Parameters
    ----------
    train_fraction:
        Fraction of rows in the training part, in (0, 1). The paper uses
        0.8.
    seed:
        Seed for the shuffle.

    Returns
    -------
    ``(X_train, X_test)`` — views into a shuffled copy.
    """
    if not 0.0 < train_fraction < 1.0:
        raise InvalidParameterError(
            f"train_fraction must lie strictly between 0 and 1; got {train_fraction}"
        )
    X = np.asarray(X)
    if X.ndim != 2 or X.shape[0] < 2:
        raise InvalidParameterError("X must be a 2-D matrix with at least 2 rows")
    rng = ensure_rng(seed)
    order = rng.permutation(X.shape[0])
    cut = int(round(train_fraction * X.shape[0]))
    cut = min(max(cut, 1), X.shape[0] - 1)
    return X[order[:cut]], X[order[cut:]]
