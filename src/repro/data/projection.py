"""Gaussian random projection.

The paper reduces the NYTimes bag-of-words vectors to 256 dimensions
"through Gaussian random projection, which is the same way as
ANN-benchmark". This module reproduces that step: project with an i.i.d.
Gaussian matrix scaled by ``1/sqrt(out_dim)`` (Johnson-Lindenstrauss
style, approximately norm-preserving in expectation).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.rng import ensure_rng

__all__ = ["gaussian_random_projection"]


def gaussian_random_projection(
    X: np.ndarray,
    out_dim: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Project the rows of ``X`` into ``out_dim`` dimensions.

    Parameters
    ----------
    X:
        Input matrix ``(n, in_dim)``.
    out_dim:
        Target dimensionality (positive; may exceed ``in_dim``, though
        that defeats the purpose).
    seed:
        Seed for the projection matrix.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise InvalidParameterError(f"X must be 2-D; got shape {X.shape}")
    if out_dim <= 0:
        raise InvalidParameterError(f"out_dim must be positive; got {out_dim}")
    rng = ensure_rng(seed)
    R = rng.normal(scale=1.0 / np.sqrt(out_dim), size=(X.shape[1], out_dim))
    return X @ R
