"""Synthetic dataset suite substituting for the paper's corpora.

The paper evaluates on NYTimes bag-of-words (projected to 256-d), GloVe
tweet embeddings (200-d) and MS MARCO passage embeddings (768-d). Those
corpora are not available offline, so this package generates structured
surrogates with the same geometry (unit-normalized vectors with angular
cluster structure, matching dimensions) at a configurable scale:

* :func:`make_nyt_like` — topic-model bag-of-words counts, Gaussian
  random projection to 256-d (the ann-benchmarks pipeline the paper
  itself applies to NYTimes), then normalization;
* :func:`make_glove_like` — anisotropic Gaussian mixture with
  Zipf-skewed cluster sizes on the 200-d sphere;
* :func:`make_ms_like` — hierarchical von Mises-Fisher mixture (macro
  topics containing micro clusters) on the 768-d sphere.

:func:`load_dataset` exposes them under the paper's dataset names with
the paper's relative sizes; see DESIGN.md for the substitution rationale.
"""

from repro.data.datasets import (
    DATASET_SPECS,
    Dataset,
    DatasetSpec,
    dataset_names,
    load_dataset,
)
from repro.data.projection import gaussian_random_projection
from repro.data.splits import train_test_split
from repro.data.synthetic import (
    make_glove_like,
    make_ms_like,
    make_nyt_like,
    uniform_sphere,
)
from repro.data.vmf import sample_vmf

__all__ = [
    "DATASET_SPECS",
    "Dataset",
    "DatasetSpec",
    "dataset_names",
    "gaussian_random_projection",
    "load_dataset",
    "make_glove_like",
    "make_ms_like",
    "make_nyt_like",
    "sample_vmf",
    "train_test_split",
    "uniform_sphere",
]
