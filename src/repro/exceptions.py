"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is out of its valid domain."""


class DataValidationError(ReproError, ValueError):
    """Input data does not satisfy a documented precondition.

    Typical causes: non-finite values, wrong dimensionality, or vectors
    that are not unit-normalized where angular distance requires it.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model or index was used before ``fit``/``build`` was called."""


class EstimatorError(ReproError, RuntimeError):
    """A cardinality estimator failed to train or predict."""


class PersistenceError(ReproError, RuntimeError):
    """A saved artifact could not be written or read back.

    Raised for corrupt or truncated array files, checksum mismatches,
    unknown or newer format versions, manifest drift, and artifacts
    whose execution policy cannot be reconstructed (e.g. a model fit
    with a custom ``IndexSpec`` factory).
    """


class IndexError_(ReproError, RuntimeError):
    """A spatial index reached an inconsistent internal state.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class RemovedAPIError(ReproError, TypeError):
    """A retired legacy entry point was called.

    The PR 5 deprecation shims (``set_sharding`` / ``sharded_queries``
    and the ``index_factory=`` / ``batch_queries=`` constructor kwargs)
    completed their cycle: calling them now raises this error, whose
    message names the :class:`~repro.engine_config.ExecutionConfig`
    replacement.
    """


class RemoteExecutorError(ReproError, RuntimeError):
    """Base class for remote worker-pool failures.

    Every error the remote shard executor raises intentionally derives
    from this, so hosts can treat "the fleet misbehaved" as one
    category distinct from local parameter/persistence errors.
    """


class RemoteProtocolError(RemoteExecutorError):
    """A pool peer violated the length-prefixed wire protocol.

    Typical causes: a non-worker endpoint at the configured address,
    version skew between client and worker, or a truncated frame.
    """


class RemoteTimeoutError(RemoteExecutorError):
    """A pool call did not complete within its per-call timeout."""


class WorkerUnavailableError(RemoteExecutorError):
    """A worker could not be reached (dead, or never listening)."""


class RetryExhaustedError(RemoteExecutorError):
    """A pool call kept failing after every configured retry.

    Raised when rebalancing ran out of live workers or the retry budget;
    the message records how many rebalances were attempted.
    """


class ServingError(ReproError, RuntimeError):
    """Base class for serving-subsystem failures.

    Raised by the async micro-batched predict path
    (:mod:`repro.serving`): deadline misses, admission-queue
    backpressure, and use-after-shutdown all derive from this so a
    serving client can treat "the server pushed back" as one category
    distinct from bad input or a broken artifact.
    """


class DeadlineExceededError(ServingError):
    """A served request missed its per-request deadline.

    The request may or may not have been computed; its result (if any)
    was discarded. Deadlines are best-effort cancellation points checked
    at batch-assembly time and on result delivery.
    """


class ServerOverloadedError(ServingError):
    """The admission queue is full; the request was rejected.

    Explicit backpressure: the server sheds load immediately instead of
    queueing without bound. Clients should back off and retry.
    """


class ServerClosedError(ServingError):
    """A request was submitted to a server that is shutting down.

    In-flight requests admitted before shutdown began still drain to
    completion; new submissions fail fast with this error.
    """
