"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is out of its valid domain."""


class DataValidationError(ReproError, ValueError):
    """Input data does not satisfy a documented precondition.

    Typical causes: non-finite values, wrong dimensionality, or vectors
    that are not unit-normalized where angular distance requires it.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model or index was used before ``fit``/``build`` was called."""


class EstimatorError(ReproError, RuntimeError):
    """A cardinality estimator failed to train or predict."""


class PersistenceError(ReproError, RuntimeError):
    """A saved artifact could not be written or read back.

    Raised for corrupt or truncated array files, checksum mismatches,
    unknown or newer format versions, manifest drift, and artifacts
    whose execution policy cannot be reconstructed (e.g. a model fit
    with a custom ``IndexSpec`` factory).
    """


class IndexError_(ReproError, RuntimeError):
    """A spatial index reached an inconsistent internal state.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """
