"""Mutual-information family: MI, NMI, EMI and AMI.

Implements the information-theoretic clustering comparison measures of
Vinh, Epps & Bailey (JMLR 2010) — the paper's "AMI" metric. The expected
mutual information under the permutation (hypergeometric) model is
computed exactly in log-space via ``scipy.special.gammaln``.

Conventions follow the reference formulation (and sklearn's defaults):
natural-log MI, "arithmetic" averaging for the AMI/NMI normalizer, and a
hard 1.0 for the degenerate case where both labelings are the identical
trivial partition.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.exceptions import InvalidParameterError
from repro.metrics.contingency import contingency_matrix

__all__ = [
    "entropy",
    "mutual_information",
    "expected_mutual_information",
    "normalized_mutual_info",
    "adjusted_mutual_info",
]

_AVERAGE_METHODS = ("arithmetic", "geometric", "min", "max")

#: Guard against sign flips from floating-point cancellation.
_EPS = np.finfo(np.float64).eps


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (nats) of a labeling."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    counts = np.unique(labels, return_counts=True)[1].astype(np.float64)
    p = counts / counts.sum()
    return float(-(p * np.log(p)).sum())


def _generalized_average(u: float, v: float, method: str) -> float:
    if method == "arithmetic":
        return (u + v) / 2.0
    if method == "geometric":
        return float(np.sqrt(u * v))
    if method == "min":
        return min(u, v)
    if method == "max":
        return max(u, v)
    raise InvalidParameterError(
        f"average_method must be one of {_AVERAGE_METHODS}; got {method!r}"
    )


def mutual_information(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Mutual information (nats) between two labelings."""
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    pij = table / n
    pi = pij.sum(axis=1, keepdims=True)
    pj = pij.sum(axis=0, keepdims=True)
    nonzero = pij > 0
    ratio = np.ones_like(pij)
    ratio[nonzero] = pij[nonzero] / (pi @ pj)[nonzero]
    return float(max(0.0, (pij[nonzero] * np.log(ratio[nonzero])).sum()))


def expected_mutual_information(table: np.ndarray) -> float:
    """Expected MI of a contingency table under the permutation model.

    Exact hypergeometric expectation (Vinh et al. 2010, Eq. 24a); each
    cell's inner sum over feasible ``n_ij`` is vectorized, keeping the
    whole computation O(rows * cols * n) in the worst case.
    """
    table = np.asarray(table, dtype=np.int64)
    a = table.sum(axis=1)
    b = table.sum(axis=0)
    n = int(table.sum())
    if n == 0:
        return 0.0
    log_n = np.log(n)
    # Constant log-factorial pieces reused across cells.
    gln_a = gammaln(a + 1.0)
    gln_b = gammaln(b + 1.0)
    gln_na = gammaln(n - a + 1.0)
    gln_nb = gammaln(n - b + 1.0)
    gln_n = gammaln(n + 1.0)
    emi = 0.0
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        log_ai = np.log(ai)
        for j, bj in enumerate(b):
            if bj == 0:
                continue
            start = max(1, ai + bj - n)
            stop = min(ai, bj)
            if stop < start:
                continue
            nij = np.arange(start, stop + 1, dtype=np.float64)
            term_info = (nij / n) * (log_n + np.log(nij) - log_ai - np.log(bj))
            log_prob = (
                gln_a[i]
                + gln_b[j]
                + gln_na[i]
                + gln_nb[j]
                - gln_n
                - gammaln(nij + 1.0)
                - gammaln(ai - nij + 1.0)
                - gammaln(bj - nij + 1.0)
                - gammaln(n - ai - bj + nij + 1.0)
            )
            emi += float((term_info * np.exp(log_prob)).sum())
    return emi


def normalized_mutual_info(
    labels_true: np.ndarray,
    labels_pred: np.ndarray,
    average_method: str = "arithmetic",
) -> float:
    """NMI: mutual information normalized by averaged entropies, in [0, 1]."""
    mi = mutual_information(labels_true, labels_pred)
    if mi == 0.0:  # reprolint: disable=RPL008 -- exact short-circuit: MI
        # is computed to be literally 0.0 for independent labelings
        return 0.0
    h_true = entropy(labels_true)
    h_pred = entropy(labels_pred)
    normalizer = _generalized_average(h_true, h_pred, average_method)
    return float(mi / max(normalizer, _EPS))


def adjusted_mutual_info(
    labels_true: np.ndarray,
    labels_pred: np.ndarray,
    average_method: str = "arithmetic",
) -> float:
    """AMI: chance-adjusted mutual information (Vinh et al. 2010).

    1.0 for identical partitions, ~0 for independent ones, possibly
    negative for worse-than-chance agreement.
    """
    labels_true = np.asarray(labels_true)
    labels_pred = np.asarray(labels_pred)
    n_true = np.unique(labels_true).size
    n_pred = np.unique(labels_pred).size
    n = labels_true.size
    # Both partitions trivially identical: by convention AMI = 1.
    if (n_true == n_pred == 1) or (n_true == n_pred == n):
        return 1.0
    table = contingency_matrix(labels_true, labels_pred)
    mi = mutual_information(labels_true, labels_pred)
    emi = expected_mutual_information(table)
    h_true = entropy(labels_true)
    h_pred = entropy(labels_pred)
    normalizer = _generalized_average(h_true, h_pred, average_method)
    denominator = normalizer - emi
    # Keep the sign but avoid division by ~0 (same guard as the reference
    # implementations).
    if denominator < 0:
        denominator = min(denominator, -_EPS)
    else:
        denominator = max(denominator, _EPS)
    return float((mi - emi) / denominator)
