"""Clustering statistics: noise ratio, cluster counts, missed clusters.

``noise_ratio`` and ``n_clusters`` drive the paper's parameter selection
(Table 2: choose (eps, tau) with noise ratio < 0.6 and > 20 clusters).
``missed_cluster_stats`` reproduces the Table 6 analysis of clusters that
LAF-DBSCAN loses entirely to false-negative core predictions.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.metrics.contingency import check_labelings

__all__ = [
    "noise_ratio",
    "n_clusters",
    "cluster_sizes",
    "MissedClusterStats",
    "missed_cluster_stats",
]

#: Label value reserved for noise points throughout the library.
NOISE = -1


def noise_ratio(labels: np.ndarray) -> float:
    """Fraction of points labeled noise (``-1``)."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    return float(np.count_nonzero(labels == NOISE) / labels.size)


def n_clusters(labels: np.ndarray) -> int:
    """Number of distinct non-noise clusters."""
    labels = np.asarray(labels)
    return int(np.unique(labels[labels != NOISE]).size)


def cluster_sizes(labels: np.ndarray) -> dict[int, int]:
    """Mapping from cluster id to member count, excluding noise."""
    labels = np.asarray(labels)
    ids, counts = np.unique(labels[labels != NOISE], return_counts=True)
    return {int(i): int(c) for i, c in zip(ids, counts)}


@dataclasses.dataclass(frozen=True)
class MissedClusterStats:
    """Table 6 statistics for clusters fully missed by an approximate method.

    Attributes mirror the paper's column names:

    * ``missed_clusters`` (MC) — ground-truth clusters none of whose
      points appear in any predicted cluster;
    * ``total_clusters`` (TC) — total ground-truth clusters;
    * ``missed_points`` (MP) — points inside fully missed clusters;
    * ``total_cluster_points`` (TPC) — all non-noise ground-truth points;
    * ``avg_missed_cluster_size`` (ASMC) — MP / MC (0 when MC = 0).
    """

    missed_clusters: int
    total_clusters: int
    missed_points: int
    total_cluster_points: int

    @property
    def avg_missed_cluster_size(self) -> float:
        if self.missed_clusters == 0:
            return 0.0
        return self.missed_points / self.missed_clusters

    @property
    def missed_point_fraction(self) -> float:
        """MP / TPC — the paper reports this stays within 1%-6%."""
        if self.total_cluster_points == 0:
            return 0.0
        return self.missed_points / self.total_cluster_points

    def as_row(self) -> dict[str, float | int | str]:
        """Flat representation for the reporting tables."""
        return {
            "MC/TC": f"{self.missed_clusters}/{self.total_clusters}",
            "MP/TPC": f"{self.missed_points}/{self.total_cluster_points}",
            "ASMC": round(self.avg_missed_cluster_size, 2),
        }


def missed_cluster_stats(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> MissedClusterStats:
    """Compute Table 6 statistics of fully missed ground-truth clusters.

    A ground-truth cluster is *fully missed* when every one of its points
    is labeled noise by the approximate method — the observable footprint
    of all its core points being falsely predicted as stop points.
    """
    labels_true, labels_pred = check_labelings(labels_true, labels_pred)
    cluster_mask = labels_true != NOISE
    total_cluster_points = int(np.count_nonzero(cluster_mask))
    gt_ids = np.unique(labels_true[cluster_mask])
    missed = 0
    missed_points = 0
    for gt in gt_ids:
        members = labels_true == gt
        if np.all(labels_pred[members] == NOISE):
            missed += 1
            missed_points += int(np.count_nonzero(members))
    return MissedClusterStats(
        missed_clusters=missed,
        total_clusters=int(gt_ids.size),
        missed_points=missed_points,
        total_cluster_points=total_cluster_points,
    )
