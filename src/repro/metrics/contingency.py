"""Contingency matrix between two labelings."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError

__all__ = ["contingency_matrix", "check_labelings"]


def check_labelings(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a pair of labelings to 1-D int arrays."""
    labels_true = np.asarray(labels_true)
    labels_pred = np.asarray(labels_pred)
    if labels_true.ndim != 1 or labels_pred.ndim != 1:
        raise DataValidationError("labelings must be 1-dimensional")
    if labels_true.shape != labels_pred.shape:
        raise DataValidationError(
            f"labelings must have equal length; got {labels_true.shape[0]} "
            f"and {labels_pred.shape[0]}"
        )
    if labels_true.size == 0:
        raise DataValidationError("labelings must be non-empty")
    return labels_true, labels_pred


def contingency_matrix(labels_true: np.ndarray, labels_pred: np.ndarray) -> np.ndarray:
    """Dense contingency table ``n[i, j]``.

    Entry ``(i, j)`` counts points placed in the i-th distinct true label
    and j-th distinct predicted label (labels sorted ascending, noise
    ``-1`` included as a class like any other).
    """
    labels_true, labels_pred = check_labelings(labels_true, labels_pred)
    true_classes, true_idx = np.unique(labels_true, return_inverse=True)
    pred_classes, pred_idx = np.unique(labels_pred, return_inverse=True)
    table = np.zeros((true_classes.size, pred_classes.size), dtype=np.int64)
    np.add.at(table, (true_idx, pred_idx), 1)
    return table
