"""Rand index and adjusted Rand index (Hubert & Arabie 1985).

This is the paper's primary quality metric (reported as "ARI" in Tables
3 and 5). Computed exactly with integer pair counts.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.contingency import contingency_matrix

__all__ = ["rand_index", "adjusted_rand_index"]


def _pairs(counts: np.ndarray) -> np.ndarray:
    """Number of unordered pairs ``C(c, 2)`` per entry, exact integers."""
    counts = counts.astype(np.int64)
    return counts * (counts - 1) // 2


def rand_index(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Unadjusted Rand index: fraction of point pairs the labelings agree on."""
    table = contingency_matrix(labels_true, labels_pred)
    n = int(table.sum())
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        return 1.0
    same_both = int(_pairs(table).sum())
    same_true = int(_pairs(table.sum(axis=1)).sum())
    same_pred = int(_pairs(table.sum(axis=0)).sum())
    agreements = total_pairs + 2 * same_both - same_true - same_pred
    return agreements / total_pairs


def adjusted_rand_index(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Adjusted Rand index: chance-corrected pair-counting agreement.

    1.0 for identical partitions (up to label permutation), ~0 for
    independent ones; can be negative for adversarial disagreement.
    The degenerate cases where the adjustment denominator vanishes
    (both partitions trivial) return 1.0, matching standard practice.
    """
    table = contingency_matrix(labels_true, labels_pred)
    n = int(table.sum())
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        return 1.0
    index = int(_pairs(table).sum())
    sum_true = int(_pairs(table.sum(axis=1)).sum())
    sum_pred = int(_pairs(table.sum(axis=0)).sum())
    expected = sum_true * sum_pred / total_pairs
    max_index = (sum_true + sum_pred) / 2.0
    denominator = max_index - expected
    if denominator == 0.0:  # reprolint: disable=RPL008 -- exact guard
        # against 0/0: both labelings degenerate, ARI is 1 by convention
        return 1.0
    return float((index - expected) / denominator)
