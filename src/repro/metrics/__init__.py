"""Clustering-quality metrics and statistics.

The paper scores every approximate method against the original DBSCAN
labeling with the adjusted Rand index (Hubert & Arabie 1985) and adjusted
mutual information (Vinh, Epps & Bailey 2010). Neither sklearn nor any
other ML library is assumed: both metrics (and their supporting
contingency/entropy/expected-MI machinery) are implemented here and
cross-validated in the test suite against hand-computed values.

Noise points (label ``-1``) are treated as one ordinary class, matching
how DBSCAN outputs are conventionally fed to these scores.
"""

from repro.metrics.ari import adjusted_rand_index, rand_index
from repro.metrics.cluster_stats import (
    MissedClusterStats,
    cluster_sizes,
    missed_cluster_stats,
    n_clusters,
    noise_ratio,
)
from repro.metrics.contingency import contingency_matrix
from repro.metrics.mutual_info import (
    adjusted_mutual_info,
    entropy,
    expected_mutual_information,
    mutual_information,
    normalized_mutual_info,
)

__all__ = [
    "MissedClusterStats",
    "adjusted_mutual_info",
    "adjusted_rand_index",
    "cluster_sizes",
    "contingency_matrix",
    "entropy",
    "expected_mutual_information",
    "missed_cluster_stats",
    "mutual_information",
    "n_clusters",
    "noise_ratio",
    "normalized_mutual_info",
    "rand_index",
]
