"""Prepared workloads: dataset + split + fitted estimator bundles.

The paper's protocol for every experiment is: generate the dataset,
split 8:2, train the cardinality estimator on the training split, then
run all methods on the test split. This module packages that pipeline
and memoizes it in-process, because estimator training is by far the
most expensive step and is shared by many benchmarks.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.datasets import DATASET_SPECS, load_dataset
from repro.estimators.rmi import RMICardinalityEstimator

__all__ = ["Workload", "prepare_workload", "prepare_workloads", "clear_cache"]

#: Process-wide memo of prepared workloads.
_CACHE: dict[tuple, "Workload"] = {}  # reprolint: disable=RPL003 -- keyed
# memo with an exported clear_cache(); entries are deterministic in the key


@dataclasses.dataclass(frozen=True)
class Workload:
    """One ready-to-cluster experiment input.

    ``X_test`` is what the methods cluster (the paper's protocol);
    ``estimator`` is already fitted on ``X_train``; ``alpha`` is the
    dataset's Table 1 error factor.
    """

    name: str
    X_train: np.ndarray
    X_test: np.ndarray
    estimator: RMICardinalityEstimator
    alpha: float
    scale: float
    seed: int


def prepare_workload(
    name: str,
    scale: float = 0.01,
    seed: int = 0,
    epochs: int = 25,
    n_train_queries: int | None = 400,
    hidden_layers: tuple[int, ...] = (64, 64, 32),
) -> Workload:
    """Generate, split and train for one dataset (memoized).

    The estimator defaults are the benchmark-friendly reduction of the
    paper's setup (see DESIGN.md); pass ``epochs=200``,
    ``hidden_layers=(512, 512, 256, 128)``, ``n_train_queries=None`` for
    the full paper configuration.
    """
    key = (name, scale, seed, epochs, n_train_queries, tuple(hidden_layers))
    if key in _CACHE:
        return _CACHE[key]
    ds = load_dataset(name, scale=scale, seed=seed)
    X_train, X_test = ds.split()
    estimator = RMICardinalityEstimator(
        hidden_layers=hidden_layers,
        epochs=epochs,
        n_train_queries=n_train_queries,
        seed=seed,
    ).fit(X_train)
    workload = Workload(
        name=name,
        X_train=X_train,
        X_test=X_test,
        estimator=estimator,
        alpha=DATASET_SPECS[name].alpha,
        scale=scale,
        seed=seed,
    )
    _CACHE[key] = workload
    return workload


def prepare_workloads(
    names: tuple[str, ...], scale: float = 0.01, seed: int = 0, **estimator_kwargs
) -> dict[str, Workload]:
    """Prepare several datasets with shared settings."""
    return {
        name: prepare_workload(name, scale=scale, seed=seed, **estimator_kwargs)
        for name in names
    }


def clear_cache() -> None:
    """Drop all memoized workloads (tests use this for isolation)."""
    _CACHE.clear()
