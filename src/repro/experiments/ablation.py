"""Ablations beyond the paper: estimator choice and post-processing.

The paper explicitly defers "the impact of the cardinality estimator
being used" and "extensively investigating the proper alpha" to future
work; these harnesses cover both, plus the value of the post-processing
module (Algorithm 3) itself:

* :func:`estimator_ablation` — swap the RMI for the classical
  estimators (exact oracle, sampling, KDE, radial histogram) inside
  LAF-DBSCAN and compare speed/quality;
* :func:`postprocessing_ablation` — run LAF-DBSCAN with and without
  Algorithm 3 at several alphas, quantifying how much quality the
  merge-repair recovers.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core import LAFDBSCAN
from repro.estimators import (
    CardinalityEstimator,
    ExactCardinalityEstimator,
    KDECardinalityEstimator,
    RadialHistogramEstimator,
    SamplingCardinalityEstimator,
)
from repro.experiments.runner import ground_truth, run_method
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.mutual_info import adjusted_mutual_info

__all__ = [
    "AblationRecord",
    "classical_estimators",
    "estimator_ablation",
    "postprocessing_ablation",
]


@dataclasses.dataclass(frozen=True)
class AblationRecord:
    """One ablation measurement."""

    variant: str
    elapsed_seconds: float
    ari: float
    ami: float
    fn_detected: int
    merges: int

    def as_row(self) -> dict[str, object]:
        return {
            "variant": self.variant,
            "time_s": round(self.elapsed_seconds, 4),
            "ARI": round(self.ari, 4),
            "AMI": round(self.ami, 4),
            "FN": self.fn_detected,
            "merges": self.merges,
        }


def classical_estimators(seed: int = 0) -> dict[str, CardinalityEstimator]:
    """The non-learned estimators used in the ablation."""
    return {
        "exact-oracle": ExactCardinalityEstimator(),
        "sampling": SamplingCardinalityEstimator(sample_size=256, seed=seed),
        "kde": KDECardinalityEstimator(sample_size=256, seed=seed),
        "histogram": RadialHistogramEstimator(n_pivots=16, seed=seed),
    }


def _run_variant(
    variant: str,
    X: np.ndarray,
    gt_labels: np.ndarray,
    estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    alpha: float,
    enable_post_processing: bool,
    seed: int,
) -> AblationRecord:
    clusterer = LAFDBSCAN(
        eps=eps,
        tau=tau,
        estimator=estimator,
        alpha=alpha,
        enable_post_processing=enable_post_processing,
        seed=seed,
    )
    result, elapsed = run_method(clusterer, X)
    return AblationRecord(
        variant=variant,
        elapsed_seconds=elapsed,
        ari=adjusted_rand_index(gt_labels, result.labels),
        ami=adjusted_mutual_info(gt_labels, result.labels),
        fn_detected=int(result.stats.get("fn_detected", 0)),
        merges=int(result.stats.get("merges", 0)),
    )


def estimator_ablation(
    X: np.ndarray,
    X_train: np.ndarray,
    learned_estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    alpha: float = 1.5,
    seed: int = 0,
) -> list[AblationRecord]:
    """LAF-DBSCAN quality/speed across estimator families.

    The learned estimator (already fitted) competes with the classical
    ones, which are fitted here on the same training split.
    """
    gt = ground_truth(X, eps, tau)
    records = [
        _run_variant(
            "rmi-learned", X, gt.labels, learned_estimator, eps, tau, alpha, True, seed
        )
    ]
    for name, estimator in classical_estimators(seed).items():
        estimator.fit(X_train)
        records.append(
            _run_variant(name, X, gt.labels, estimator, eps, tau, alpha, True, seed)
        )
    return records


def postprocessing_ablation(
    X: np.ndarray,
    estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    alphas: Sequence[float] = (1.5, 3.0, 7.7),
    seed: int = 0,
) -> list[AblationRecord]:
    """Algorithm 3 on/off at increasing alpha (more false negatives)."""
    gt = ground_truth(X, eps, tau)
    records: list[AblationRecord] = []
    for alpha in alphas:
        for enabled in (True, False):
            suffix = "with-postproc" if enabled else "no-postproc"
            records.append(
                _run_variant(
                    f"alpha={alpha}:{suffix}",
                    X,
                    gt.labels,
                    estimator,
                    eps,
                    tau,
                    alpha,
                    enabled,
                    seed,
                )
            )
    return records
