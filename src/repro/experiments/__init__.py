"""Experiment harness reproducing the paper's evaluation section.

Every table and figure maps to one module here (and one benchmark in
``benchmarks/``):

* Table 2  -> :mod:`repro.experiments.param_select`
* Table 3 / Table 5 -> :mod:`repro.experiments.quality`
* Figure 1 / Figure 4 / Table 4 -> :mod:`repro.experiments.efficiency`
* Figure 2 / Figure 3 -> :mod:`repro.experiments.tradeoff`
* Table 6  -> :mod:`repro.experiments.missed`
* ablations (ours) -> :mod:`repro.experiments.ablation`

Shared infrastructure: :mod:`repro.experiments.methods` (method
registry), :mod:`repro.experiments.runner` (timed runs + scoring),
:mod:`repro.experiments.reporting` (paper-shaped ASCII tables + JSON).
"""

from repro.experiments.methods import (
    APPROXIMATE_METHODS,
    MethodContext,
    build_method,
    method_names,
)
from repro.experiments.runner import RunRecord, ground_truth, run_method, run_suite
from repro.experiments.reporting import format_table, records_to_rows, save_json

__all__ = [
    "APPROXIMATE_METHODS",
    "MethodContext",
    "RunRecord",
    "build_method",
    "format_table",
    "ground_truth",
    "method_names",
    "records_to_rows",
    "run_method",
    "run_suite",
    "save_json",
]
