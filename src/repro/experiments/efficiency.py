"""Figures 1 and 4 plus Table 4: clustering-time comparisons.

Figure 1 reports every method's clustering time (including DBSCAN, the
ground truth) on the three largest datasets at the three settings;
Figure 4 repeats it across MS scales; Table 4 contrasts rho-approximate
DBSCAN with plain DBSCAN (the "slower than naive DBSCAN in high
dimensions" result).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.clustering import DBSCAN, RhoApproxDBSCAN
from repro.engine_config import ExecutionConfig
from repro.estimators.base import CardinalityEstimator
from repro.experiments.methods import APPROXIMATE_METHODS, MethodContext
from repro.experiments.runner import RunRecord, run_method, run_suite

__all__ = ["timing_comparison", "rho_vs_dbscan", "speedup_summary"]


def timing_comparison(
    datasets: dict[str, np.ndarray],
    estimators: dict[str, CardinalityEstimator],
    alphas: dict[str, float],
    eps: float,
    tau: int,
    methods: Sequence[str] = ("DBSCAN", *APPROXIMATE_METHODS),
    delta: float = 0.2,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[RunRecord]:
    """One Figure 1 panel / Figure 4: all methods timed per dataset."""
    records: list[RunRecord] = []
    for name, X in datasets.items():
        ctx = MethodContext(
            eps=eps,
            tau=tau,
            alpha=alphas.get(name, 1.0),
            estimator=estimators.get(name),
            delta=delta,
            seed=seed,
            execution=execution,
        )
        records.extend(run_suite(X, tuple(methods), ctx, dataset_name=name))
    return records


def rho_vs_dbscan(
    datasets: dict[str, np.ndarray],
    settings: Sequence[tuple[float, int]],
    rho: float = 1.0,
) -> list[dict[str, object]]:
    """Table 4: rho-approximate DBSCAN time vs DBSCAN time per cell.

    Returns one row per (eps, tau) with the paper's "t1/t2" cell format
    per dataset (t1 = rho-approximate, t2 = DBSCAN).
    """
    rows: list[dict[str, object]] = []
    for eps, tau in settings:
        row: dict[str, object] = {"(eps,tau)": f"({eps}, {tau})"}
        for name, X in datasets.items():
            _, t_rho = run_method(RhoApproxDBSCAN(eps=eps, tau=tau, rho=rho), X)
            _, t_dbscan = run_method(DBSCAN(eps=eps, tau=tau), X)
            row[name] = f"{t_rho:.3f}s/{t_dbscan:.3f}s"
            row[f"{name}_ratio"] = round(t_rho / max(t_dbscan, 1e-9), 2)
        rows.append(row)
    return rows


def speedup_summary(records: list[RunRecord]) -> dict[str, float]:
    """Headline speedups from a timing run (Section 3.3's claims).

    Returns LAF-DBSCAN's speedup over DBSCAN, DBSCAN++, KNN-BLOCK and
    BLOCK-DBSCAN, and LAF-DBSCAN++'s speedup over DBSCAN++, maximized
    over datasets present in the records.
    """
    by_key: dict[tuple[str, str], float] = {
        (r.method, r.dataset): r.elapsed_seconds for r in records
    }
    datasets = {r.dataset for r in records}
    out: dict[str, float] = {}

    def max_ratio(fast: str, slow: str) -> float | None:
        ratios = []
        for ds in datasets:
            t_fast = by_key.get((fast, ds))
            t_slow = by_key.get((slow, ds))
            if t_fast and t_slow:
                ratios.append(t_slow / t_fast)
        return max(ratios) if ratios else None

    pairs = {
        "laf_dbscan_over_dbscan": ("LAF-DBSCAN", "DBSCAN"),
        "laf_dbscan_over_dbscanpp": ("LAF-DBSCAN", "DBSCAN++"),
        "laf_dbscan_over_knn_block": ("LAF-DBSCAN", "KNN-BLOCK"),
        "laf_dbscan_over_block_dbscan": ("LAF-DBSCAN", "BLOCK-DBSCAN"),
        "laf_dbscanpp_over_dbscanpp": ("LAF-DBSCAN++", "DBSCAN++"),
    }
    for key, (fast, slow) in pairs.items():
        ratio = max_ratio(fast, slow)
        if ratio is not None:
            out[key] = round(ratio, 2)
    return out
