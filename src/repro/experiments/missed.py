"""Table 6: fully-missed-cluster analysis of LAF-DBSCAN.

A ground-truth cluster can be missed entirely when *all* its core points
are falsely predicted as stop points. The paper picks the worst-quality
(eps, tau) per dataset (from Table 3) and reports MC/TC, MP/TPC and
ASMC, concluding the error is negligible because missed clusters are
tiny (3-7 points on average, 1-6% of clustered points).
"""

from __future__ import annotations

import numpy as np

from repro.core import LAFDBSCAN
from repro.engine_config import ExecutionConfig
from repro.estimators.base import CardinalityEstimator
from repro.experiments.runner import ground_truth
from repro.metrics.cluster_stats import MissedClusterStats, missed_cluster_stats

__all__ = ["missed_cluster_analysis"]


def missed_cluster_analysis(
    X: np.ndarray,
    estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    alpha: float,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> tuple[MissedClusterStats, dict[str, int | float]]:
    """Run LAF-DBSCAN and compare to DBSCAN ground truth (one Table 6 row).

    Returns the missed-cluster statistics plus the LAF run's counters
    (so the false-negative count of Section 3.3 is visible alongside).
    """
    gt = ground_truth(X, eps, tau, execution=execution)
    result = LAFDBSCAN(
        eps=eps,
        tau=tau,
        estimator=estimator,
        alpha=alpha,
        seed=seed,
        execution=execution,
    ).fit(X)
    stats = missed_cluster_stats(gt.labels, result.labels)
    return stats, dict(result.stats)
