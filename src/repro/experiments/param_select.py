"""Table 2: representative (eps, tau) selection by grid search.

The paper selects (eps, tau) pairs whose DBSCAN output has a noise ratio
below 0.6 and more than 20 clusters "in most datasets", reporting the
(noise ratio, number of clusters) grid for the MS datasets. This module
reproduces that grid and the selection rule. (At reduced dataset scale
the cluster-count threshold scales down proportionally.)
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.clustering.dbscan import DBSCAN
from repro.engine_config import ExecutionConfig

__all__ = ["GridCell", "parameter_grid", "select_representative", "PAPER_EPS_TAU"]

#: The three settings the paper reports throughout: (eps, tau).
PAPER_EPS_TAU: tuple[tuple[float, int], ...] = ((0.5, 3), (0.55, 5), (0.6, 5))


@dataclasses.dataclass(frozen=True)
class GridCell:
    """One Table 2 cell: DBSCAN statistics at a given (eps, tau)."""

    dataset: str
    eps: float
    tau: int
    noise_ratio: float
    n_clusters: int

    def satisfies(self, max_noise: float, min_clusters: int) -> bool:
        """The paper's "proper" criterion for this dataset."""
        return self.noise_ratio < max_noise and self.n_clusters > min_clusters

    def as_pair(self) -> str:
        """The paper's cell format: ``(noise ratio, number of clusters)``."""
        return f"({self.noise_ratio:.2f}, {self.n_clusters})"


def parameter_grid(
    datasets: dict[str, np.ndarray],
    eps_values: Sequence[float] = (0.5, 0.55, 0.6, 0.7),
    tau_values: Sequence[int] = (3, 5),
    execution: ExecutionConfig | None = None,
) -> list[GridCell]:
    """Run DBSCAN over the (eps, tau) grid on every dataset.

    Returns one :class:`GridCell` per (dataset, eps, tau) combination,
    in grid order.
    """
    cells: list[GridCell] = []
    for eps in eps_values:
        for tau in tau_values:
            for name, X in datasets.items():
                result = DBSCAN(eps=eps, tau=tau, execution=execution).fit(X)
                cells.append(
                    GridCell(
                        dataset=name,
                        eps=float(eps),
                        tau=int(tau),
                        noise_ratio=result.noise_ratio,
                        n_clusters=result.n_clusters,
                    )
                )
    return cells


def select_representative(
    cells: list[GridCell],
    max_noise: float = 0.6,
    min_clusters: int = 20,
    min_datasets_satisfying: int = 2,
) -> list[tuple[float, int]]:
    """The paper's rule: keep (eps, tau) pairs proper on most datasets.

    A pair qualifies when at least ``min_datasets_satisfying`` datasets
    meet both the noise-ratio and cluster-count conditions.
    """
    by_pair: dict[tuple[float, int], list[GridCell]] = {}
    for cell in cells:
        by_pair.setdefault((cell.eps, cell.tau), []).append(cell)
    selected = []
    for pair, pair_cells in by_pair.items():
        good = sum(c.satisfies(max_noise, min_clusters) for c in pair_cells)
        if good >= min_datasets_satisfying:
            selected.append(pair)
    return sorted(selected)
