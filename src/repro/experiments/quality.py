"""Tables 3 and 5: clustering quality of the approximate methods.

Table 3 scores all approximate methods on the three largest datasets at
the three representative (eps, tau) settings; Table 5 repeats the
comparison across the MS dataset scales at (0.55, 5). Both reduce to
:func:`quality_comparison`, which runs the suite and returns the records
pivotable into the paper's (method x dataset) ARI/AMI grids.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.engine_config import ExecutionConfig
from repro.estimators.base import CardinalityEstimator
from repro.experiments.methods import APPROXIMATE_METHODS, MethodContext
from repro.experiments.runner import RunRecord, ground_truth, run_suite

__all__ = ["quality_comparison", "table3_settings", "TABLE3_DATASETS", "TABLE5_DATASETS"]

#: The datasets of Table 3 / Figure 1 (the three largest).
TABLE3_DATASETS: tuple[str, ...] = ("NYT-150k", "Glove-150k", "MS-150k")
#: The datasets of Table 5 / Figure 4 (the scalability trio).
TABLE5_DATASETS: tuple[str, ...] = ("MS-50k", "MS-100k", "MS-150k")


def table3_settings() -> tuple[tuple[float, int], ...]:
    """The paper's three representative (eps, tau) settings."""
    return ((0.5, 3), (0.55, 5), (0.6, 5))


def quality_comparison(
    datasets: dict[str, np.ndarray],
    estimators: dict[str, CardinalityEstimator],
    alphas: dict[str, float],
    eps: float,
    tau: int,
    methods: Sequence[str] = APPROXIMATE_METHODS,
    delta: float = 0.2,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[RunRecord]:
    """Run the approximate-method suite on each dataset at one setting.

    Parameters
    ----------
    datasets:
        Name -> clustered matrix (the paper's test splits).
    estimators:
        Name -> fitted estimator for that dataset's distribution.
    alphas:
        Name -> LAF-DBSCAN error factor (paper Table 1).
    eps, tau:
        The density setting of this table section.
    methods:
        Which methods to include (default: the five approximate ones).
    """
    records: list[RunRecord] = []
    for name, X in datasets.items():
        gt = ground_truth(X, eps, tau, execution=execution)
        ctx = MethodContext(
            eps=eps,
            tau=tau,
            alpha=alphas.get(name, 1.0),
            estimator=estimators.get(name),
            delta=delta,
            seed=seed,
            execution=execution,
        )
        records.extend(
            run_suite(
                X,
                tuple(methods),
                ctx,
                dataset_name=name,
                gt_labels=gt.labels,
            )
        )
    return records
