"""Method registry: build any of the paper's seven methods by name.

Centralizes the hyperparameter defaults of Section 3.1 ("Parameters"):

* DBSCAN++ sample fraction ``p = delta + R_c`` with ``delta`` in
  [0.1, 0.3] and ``R_c`` the estimator's predicted core ratio;
* LAF-DBSCAN's ``alpha`` from Table 1 (dataset-dependent);
* LAF-DBSCAN++'s ``alpha`` fixed at 1.0 and ``p`` identical to DBSCAN++;
* KNN-BLOCK: branching 10, leaves-checked ratio 0.6;
* BLOCK-DBSCAN: basis 2, RNT 10;
* rho-approximate: rho = 1.0.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.api import make_clusterer
from repro.clustering import Clusterer
from repro.core import predicted_core_ratio
from repro.engine_config import ExecutionConfig
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError

__all__ = [
    "MethodContext",
    "build_method",
    "method_names",
    "APPROXIMATE_METHODS",
    "ALL_METHODS",
]

#: The approximate methods of Tables 3/5 (DBSCAN itself is ground truth).
APPROXIMATE_METHODS: tuple[str, ...] = (
    "KNN-BLOCK",
    "BLOCK-DBSCAN",
    "DBSCAN++",
    "LAF-DBSCAN",
    "LAF-DBSCAN++",
)

ALL_METHODS: tuple[str, ...] = ("DBSCAN", *APPROXIMATE_METHODS, "RHO-APPROX")


@dataclasses.dataclass
class MethodContext:
    """Everything needed to instantiate any method on one dataset.

    Attributes
    ----------
    eps, tau:
        The experiment's density parameters.
    alpha:
        LAF-DBSCAN error factor (Table 1 value for the dataset).
    estimator:
        Fitted cardinality estimator shared by the LAF methods and the
        ``p = delta + R_c`` rule. May be None for non-LAF methods.
    delta:
        Offset of the sample-fraction rule (paper: 0.1-0.3).
    p_override:
        Fix the DBSCAN++ sample fraction explicitly instead of deriving
        it (used by the trade-off sweeps).
    execution:
        Optional :class:`~repro.engine_config.ExecutionConfig` threaded
        into every method built from this context — the single switch
        that shards / rewires a whole experiment run without touching
        any global state.
    """

    eps: float
    tau: int
    alpha: float = 1.0
    estimator: CardinalityEstimator | None = None
    delta: float = 0.2
    p_override: float | None = None
    branching: int = 10
    checks_ratio: float = 0.6
    cover_base: float = 2.0
    rnt: int = 10
    rho: float = 1.0
    seed: int = 0
    execution: ExecutionConfig | None = None
    _p_cache: float | None = dataclasses.field(default=None, repr=False)

    def sample_fraction(self, X: np.ndarray) -> float:
        """DBSCAN++ sample fraction: ``p_override`` or ``delta + R_c``.

        The derived value is cached so DBSCAN++ and LAF-DBSCAN++ use the
        identical ``p``, as the paper prescribes.
        """
        if self.p_override is not None:
            return float(np.clip(self.p_override, 0.01, 1.0))
        if self._p_cache is None:
            if self.estimator is None:
                raise InvalidParameterError(
                    "deriving p = delta + R_c requires an estimator; "
                    "set p_override otherwise"
                )
            r_c = predicted_core_ratio(
                self.estimator, X, self.eps, self.tau, self.alpha
            )
            self._p_cache = float(np.clip(self.delta + r_c, 0.01, 1.0))
        return self._p_cache

    def _require_estimator(self, name: str) -> CardinalityEstimator:
        if self.estimator is None:
            raise InvalidParameterError(f"{name} requires a fitted estimator")
        return self.estimator


def method_names() -> tuple[str, ...]:
    """All buildable method names."""
    return ALL_METHODS


#: Paper method name -> (repro.api registry name, context-params fn).
_METHODS = {
    "DBSCAN": ("dbscan", lambda ctx, X: {}),
    "DBSCAN++": (
        "dbscan++",
        lambda ctx, X: {"p": ctx.sample_fraction(X), "seed": ctx.seed},
    ),
    "LAF-DBSCAN": (
        "laf-dbscan",
        lambda ctx, X: {
            "estimator": ctx._require_estimator("LAF-DBSCAN"),
            "alpha": ctx.alpha,
            "seed": ctx.seed,
        },
    ),
    "LAF-DBSCAN++": (
        "laf-dbscan++",
        lambda ctx, X: {
            "estimator": ctx._require_estimator("LAF-DBSCAN++"),
            "p": ctx.sample_fraction(X),
            "alpha": 1.0,  # fixed in the paper
            "seed": ctx.seed,
        },
    ),
    "KNN-BLOCK": (
        "knn-block",
        lambda ctx, X: {
            "branching": ctx.branching,
            "checks_ratio": ctx.checks_ratio,
            "seed": ctx.seed,
        },
    ),
    "BLOCK-DBSCAN": (
        "block-dbscan",
        lambda ctx, X: {"base": ctx.cover_base, "rnt": ctx.rnt},
    ),
    "RHO-APPROX": ("rho-approx", lambda ctx, X: {"rho": ctx.rho}),
}


def build_method(name: str, ctx: MethodContext, X: np.ndarray) -> Clusterer:
    """Instantiate the named method with the context's parameters.

    Resolves through the :func:`repro.api.make_clusterer` registry,
    threading ``ctx.execution`` into the clusterer. ``X`` is needed only
    to derive the DBSCAN++ sample fraction; the returned clusterer is
    not yet fitted.
    """
    entry = _METHODS.get(name)
    if entry is None:
        raise InvalidParameterError(
            f"unknown method {name!r}; available: {', '.join(ALL_METHODS)}"
        )
    registry_name, params = entry
    return make_clusterer(
        registry_name,
        eps=ctx.eps,
        tau=ctx.tau,
        execution=ctx.execution,
        **params(ctx, X),
    )
