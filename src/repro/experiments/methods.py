"""Method registry: build any of the paper's seven methods by name.

Centralizes the hyperparameter defaults of Section 3.1 ("Parameters"):

* DBSCAN++ sample fraction ``p = delta + R_c`` with ``delta`` in
  [0.1, 0.3] and ``R_c`` the estimator's predicted core ratio;
* LAF-DBSCAN's ``alpha`` from Table 1 (dataset-dependent);
* LAF-DBSCAN++'s ``alpha`` fixed at 1.0 and ``p`` identical to DBSCAN++;
* KNN-BLOCK: branching 10, leaves-checked ratio 0.6;
* BLOCK-DBSCAN: basis 2, RNT 10;
* rho-approximate: rho = 1.0.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.clustering import (
    BlockDBSCAN,
    Clusterer,
    DBSCAN,
    DBSCANPlusPlus,
    KNNBlockDBSCAN,
    RhoApproxDBSCAN,
)
from repro.core import LAFDBSCAN, LAFDBSCANPlusPlus, predicted_core_ratio
from repro.estimators.base import CardinalityEstimator
from repro.exceptions import InvalidParameterError

__all__ = [
    "MethodContext",
    "build_method",
    "method_names",
    "APPROXIMATE_METHODS",
    "ALL_METHODS",
]

#: The approximate methods of Tables 3/5 (DBSCAN itself is ground truth).
APPROXIMATE_METHODS: tuple[str, ...] = (
    "KNN-BLOCK",
    "BLOCK-DBSCAN",
    "DBSCAN++",
    "LAF-DBSCAN",
    "LAF-DBSCAN++",
)

ALL_METHODS: tuple[str, ...] = ("DBSCAN", *APPROXIMATE_METHODS, "RHO-APPROX")


@dataclasses.dataclass
class MethodContext:
    """Everything needed to instantiate any method on one dataset.

    Attributes
    ----------
    eps, tau:
        The experiment's density parameters.
    alpha:
        LAF-DBSCAN error factor (Table 1 value for the dataset).
    estimator:
        Fitted cardinality estimator shared by the LAF methods and the
        ``p = delta + R_c`` rule. May be None for non-LAF methods.
    delta:
        Offset of the sample-fraction rule (paper: 0.1-0.3).
    p_override:
        Fix the DBSCAN++ sample fraction explicitly instead of deriving
        it (used by the trade-off sweeps).
    """

    eps: float
    tau: int
    alpha: float = 1.0
    estimator: CardinalityEstimator | None = None
    delta: float = 0.2
    p_override: float | None = None
    branching: int = 10
    checks_ratio: float = 0.6
    cover_base: float = 2.0
    rnt: int = 10
    rho: float = 1.0
    seed: int = 0
    _p_cache: float | None = dataclasses.field(default=None, repr=False)

    def sample_fraction(self, X: np.ndarray) -> float:
        """DBSCAN++ sample fraction: ``p_override`` or ``delta + R_c``.

        The derived value is cached so DBSCAN++ and LAF-DBSCAN++ use the
        identical ``p``, as the paper prescribes.
        """
        if self.p_override is not None:
            return float(np.clip(self.p_override, 0.01, 1.0))
        if self._p_cache is None:
            if self.estimator is None:
                raise InvalidParameterError(
                    "deriving p = delta + R_c requires an estimator; "
                    "set p_override otherwise"
                )
            r_c = predicted_core_ratio(self.estimator, X, self.eps, self.tau, self.alpha)
            self._p_cache = float(np.clip(self.delta + r_c, 0.01, 1.0))
        return self._p_cache

    def _require_estimator(self, name: str) -> CardinalityEstimator:
        if self.estimator is None:
            raise InvalidParameterError(f"{name} requires a fitted estimator")
        return self.estimator


def method_names() -> tuple[str, ...]:
    """All buildable method names."""
    return ALL_METHODS


def build_method(name: str, ctx: MethodContext, X: np.ndarray) -> Clusterer:
    """Instantiate the named method with the context's parameters.

    ``X`` is needed only to derive the DBSCAN++ sample fraction; the
    returned clusterer is not yet fitted.
    """
    if name == "DBSCAN":
        return DBSCAN(eps=ctx.eps, tau=ctx.tau)
    if name == "DBSCAN++":
        return DBSCANPlusPlus(
            eps=ctx.eps, tau=ctx.tau, p=ctx.sample_fraction(X), seed=ctx.seed
        )
    if name == "LAF-DBSCAN":
        return LAFDBSCAN(
            eps=ctx.eps,
            tau=ctx.tau,
            estimator=ctx._require_estimator(name),
            alpha=ctx.alpha,
            seed=ctx.seed,
        )
    if name == "LAF-DBSCAN++":
        return LAFDBSCANPlusPlus(
            eps=ctx.eps,
            tau=ctx.tau,
            estimator=ctx._require_estimator(name),
            p=ctx.sample_fraction(X),
            alpha=1.0,  # fixed in the paper
            seed=ctx.seed,
        )
    if name == "KNN-BLOCK":
        return KNNBlockDBSCAN(
            eps=ctx.eps,
            tau=ctx.tau,
            branching=ctx.branching,
            checks_ratio=ctx.checks_ratio,
            seed=ctx.seed,
        )
    if name == "BLOCK-DBSCAN":
        return BlockDBSCAN(eps=ctx.eps, tau=ctx.tau, base=ctx.cover_base, rnt=ctx.rnt)
    if name == "RHO-APPROX":
        return RhoApproxDBSCAN(eps=ctx.eps, tau=ctx.tau, rho=ctx.rho)
    raise InvalidParameterError(
        f"unknown method {name!r}; available: {', '.join(ALL_METHODS)}"
    )
