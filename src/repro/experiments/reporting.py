"""ASCII tables and JSON dumps for the benchmark harness.

Every benchmark prints the paper-shaped table to stdout and writes the
same rows as JSON under ``benchmarks/out/`` so EXPERIMENTS.md can quote
exact measured values.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Sequence

from repro.experiments.runner import RunRecord

__all__ = ["format_table", "records_to_rows", "save_json", "pivot"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows]
    parts = []
    if title:
        parts.extend([title, "=" * len(title)])
    parts.extend([line, rule, *body])
    return "\n".join(parts)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def records_to_rows(
    records: Iterable[RunRecord], columns: Sequence[str] | None = None
) -> tuple[list[str], list[list[object]]]:
    """Flatten RunRecords into (headers, rows) for :func:`format_table`."""
    dicts = [r.as_row() for r in records]
    if not dicts:
        return list(columns or []), []
    headers = list(columns) if columns else list(dicts[0])
    rows = [[d.get(h, "") for h in headers] for d in dicts]
    return headers, rows


def pivot(
    records: Iterable[RunRecord],
    value: str,
    row_key: str = "method",
    col_key: str = "dataset",
) -> tuple[list[str], list[list[object]]]:
    """Pivot records into a (row_key x col_key) grid of one value field.

    This is the paper's table shape: methods as rows, datasets as
    columns, ARI/AMI/time as cells. Missing combinations render as "-"
    (like the paper's KNN-BLOCK/BLOCK-DBSCAN entries on NYT-150k).
    """
    table: dict[str, dict[str, object]] = {}
    col_order: list[str] = []
    for record in records:
        row = record.as_row()
        r, c = str(row[row_key]), str(row[col_key])
        table.setdefault(r, {})[c] = row[value]
        if c not in col_order:
            col_order.append(c)
    headers = [row_key, *col_order]
    rows = [[r, *(table[r].get(c, "-") for c in col_order)] for r in table]
    return headers, rows


def save_json(path: str, payload: object) -> None:
    """Write a JSON document atomically, creating parent directories.

    Serializes to a temporary file in the destination directory and
    renames it into place, so an interrupted run (CI timeout, SIGKILL)
    can never leave a truncated document behind — readers such as the
    benchmark regression gate either see the old file or the complete
    new one.
    """
    path = os.path.abspath(path)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True, default=_json_default)
            f.write("\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def _json_default(obj: object) -> object:
    import numpy as np

    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)}")
