"""Figures 2 and 3: speed-quality trade-off sweeps.

Each method's knob, exactly as Section 3.4 specifies:

* LAF-DBSCAN — error factor ``alpha`` from 1.1 to 15;
* DBSCAN++ / LAF-DBSCAN++ — sample-fraction offset ``delta`` from 0.1 to
  0.9 (``p = delta + R_c``; LAF-DBSCAN++ keeps ``alpha = 1``);
* KNN-BLOCK — branching factor 3-20 and leaves-checked ratio 0.001-0.3;
* BLOCK-DBSCAN — cover-tree basis 1.1-5 (RNT fixed at 10).

Every sweep returns (knob value, elapsed seconds, ARI, AMI) points that
the figure benchmarks print as time-vs-AMI curves.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.clustering import BlockDBSCAN, DBSCANPlusPlus, KNNBlockDBSCAN
from repro.core import LAFDBSCAN, LAFDBSCANPlusPlus, predicted_core_ratio
from repro.engine_config import ExecutionConfig
from repro.estimators.base import CardinalityEstimator
from repro.experiments.runner import run_method
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.mutual_info import adjusted_mutual_info

__all__ = [
    "TradeoffPoint",
    "sweep_laf_alpha",
    "sweep_dbscanpp",
    "sweep_laf_dbscanpp",
    "sweep_knn_block",
    "sweep_block_dbscan",
    "DEFAULT_ALPHAS",
    "DEFAULT_DELTAS",
]

DEFAULT_ALPHAS: tuple[float, ...] = (1.1, 1.5, 2.0, 3.0, 5.0, 8.0, 11.0, 15.0)
DEFAULT_DELTAS: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
DEFAULT_BRANCHINGS: tuple[int, ...] = (3, 6, 10, 20)
DEFAULT_CHECKS: tuple[float, ...] = (0.001, 0.01, 0.1, 0.3)
DEFAULT_BASES: tuple[float, ...] = (1.1, 1.5, 2.0, 3.0, 5.0)


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One point on a method's speed-quality curve."""

    method: str
    knob: str
    value: float
    elapsed_seconds: float
    ari: float
    ami: float

    def as_row(self) -> dict[str, object]:
        return {
            "method": self.method,
            "knob": self.knob,
            "value": self.value,
            "time_s": round(self.elapsed_seconds, 4),
            "ARI": round(self.ari, 4),
            "AMI": round(self.ami, 4),
        }


def _score(
    method: str, knob: str, value: float, clusterer, X: np.ndarray, gt: np.ndarray
) -> TradeoffPoint:
    result, elapsed = run_method(clusterer, X)
    return TradeoffPoint(
        method=method,
        knob=knob,
        value=float(value),
        elapsed_seconds=elapsed,
        ari=adjusted_rand_index(gt, result.labels),
        ami=adjusted_mutual_info(gt, result.labels),
    )


def sweep_laf_alpha(
    X: np.ndarray,
    gt_labels: np.ndarray,
    estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[TradeoffPoint]:
    """LAF-DBSCAN trade-off: vary the error factor (paper: 1.1-15)."""
    return [
        _score(
            "LAF-DBSCAN",
            "alpha",
            alpha,
            LAFDBSCAN(
                eps=eps,
                tau=tau,
                estimator=estimator,
                alpha=alpha,
                seed=seed,
                execution=execution,
            ),
            X,
            gt_labels,
        )
        for alpha in alphas
    ]


def _derive_p(
    X: np.ndarray,
    estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    delta: float,
) -> float:
    r_c = predicted_core_ratio(estimator, X, eps, tau)
    return float(np.clip(delta + r_c, 0.01, 1.0))


def sweep_dbscanpp(
    X: np.ndarray,
    gt_labels: np.ndarray,
    estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[TradeoffPoint]:
    """DBSCAN++ trade-off: vary the sample-fraction offset delta."""
    return [
        _score(
            "DBSCAN++",
            "delta",
            delta,
            DBSCANPlusPlus(
                eps=eps,
                tau=tau,
                p=_derive_p(X, estimator, eps, tau, delta),
                seed=seed,
                execution=execution,
            ),
            X,
            gt_labels,
        )
        for delta in deltas
    ]


def sweep_laf_dbscanpp(
    X: np.ndarray,
    gt_labels: np.ndarray,
    estimator: CardinalityEstimator,
    eps: float,
    tau: int,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[TradeoffPoint]:
    """LAF-DBSCAN++ trade-off: same delta sweep, alpha fixed at 1.0."""
    return [
        _score(
            "LAF-DBSCAN++",
            "delta",
            delta,
            LAFDBSCANPlusPlus(
                eps=eps,
                tau=tau,
                estimator=estimator,
                p=_derive_p(X, estimator, eps, tau, delta),
                alpha=1.0,
                seed=seed,
                execution=execution,
            ),
            X,
            gt_labels,
        )
        for delta in deltas
    ]


def sweep_knn_block(
    X: np.ndarray,
    gt_labels: np.ndarray,
    eps: float,
    tau: int,
    branchings: Sequence[int] = DEFAULT_BRANCHINGS,
    checks: Sequence[float] = DEFAULT_CHECKS,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[TradeoffPoint]:
    """KNN-BLOCK trade-off: branching 3-20 x leaves ratio 0.001-0.3.

    The knob value reported per point is the checks ratio; branching
    varies across sub-sweeps (one point per combination).
    """
    points = []
    for branching in branchings:
        for ratio in checks:
            points.append(
                _score(
                    "KNN-BLOCK",
                    f"branching={branching},checks",
                    ratio,
                    KNNBlockDBSCAN(
                        eps=eps,
                        tau=tau,
                        branching=branching,
                        checks_ratio=ratio,
                        seed=seed,
                        execution=execution,
                    ),
                    X,
                    gt_labels,
                )
            )
    return points


def sweep_block_dbscan(
    X: np.ndarray,
    gt_labels: np.ndarray,
    eps: float,
    tau: int,
    bases: Sequence[float] = DEFAULT_BASES,
    execution: ExecutionConfig | None = None,
) -> list[TradeoffPoint]:
    """BLOCK-DBSCAN trade-off: cover-tree basis 1.1-5, RNT fixed at 10."""
    return [
        _score(
            "BLOCK-DBSCAN",
            "base",
            base,
            BlockDBSCAN(eps=eps, tau=tau, base=base, rnt=10, execution=execution),
            X,
            gt_labels,
        )
        for base in bases
    ]
