"""Timed execution and scoring of clustering methods.

Implements the paper's measurement protocol: the efficiency metric is
the elapsed clustering time *including* cardinality-estimator prediction
time and excluding its training time (prediction happens inside
``fit``; training happens before the run). Quality is ARI/AMI against
original DBSCAN on the same data.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.clustering.dbscan import DBSCAN
from repro.experiments.methods import MethodContext, build_method
from repro.index.sharded import ShardingConfig, sharded_queries
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.mutual_info import adjusted_mutual_info

__all__ = ["RunRecord", "ground_truth", "run_method", "run_suite"]


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One (method, dataset, eps, tau) measurement."""

    method: str
    dataset: str
    eps: float
    tau: int
    elapsed_seconds: float
    ari: float
    ami: float
    n_clusters: int
    noise_ratio: float
    stats: dict[str, int | float]

    def as_row(self) -> dict[str, object]:
        """Flat representation for reporting tables.

        When the run executed under engine sharding, the build
        accounting (``shard_inner_builds`` — exactly one inner build per
        live shard per fit — and ``shard_rebalances``) rides along so
        JSON consumers can audit the build-once contract per record.
        """
        row = {
            "method": self.method,
            "dataset": self.dataset,
            "eps": self.eps,
            "tau": self.tau,
            "time_s": round(self.elapsed_seconds, 4),
            "ARI": round(self.ari, 4),
            "AMI": round(self.ami, 4),
            "clusters": self.n_clusters,
            "noise": round(self.noise_ratio, 4),
        }
        for key in ("shard_live_shards", "shard_inner_builds", "shard_rebalances"):
            if key in self.stats:
                row[key] = self.stats[key]
        return row


def ground_truth(X: np.ndarray, eps: float, tau: int) -> ClusteringResult:
    """The paper's ground truth: original DBSCAN on the same data."""
    return DBSCAN(eps=eps, tau=tau).fit(X)


def run_method(clusterer: Clusterer, X: np.ndarray) -> tuple[ClusteringResult, float]:
    """Fit and wall-clock one method; returns (result, seconds)."""
    started = time.perf_counter()
    result = clusterer.fit(X)
    return result, time.perf_counter() - started


def run_suite(
    X: np.ndarray,
    method_names: tuple[str, ...],
    ctx: MethodContext,
    dataset_name: str = "dataset",
    gt_labels: np.ndarray | None = None,
    sharding: ShardingConfig | None = None,
) -> list[RunRecord]:
    """Run a list of methods on one dataset and score against DBSCAN.

    ``gt_labels`` may be supplied to avoid recomputing the ground truth;
    when omitted it is derived (and when "DBSCAN" is among the methods,
    its own timed run provides the labels). ``sharding`` scopes an
    engine sharding configuration to the whole suite, so every
    cache-routed method fans its range queries across row shards.
    """
    scope = sharded_queries(sharding) if sharding else contextlib.nullcontext()
    with scope:
        return _run_suite(X, method_names, ctx, dataset_name, gt_labels)


def _run_suite(
    X: np.ndarray,
    method_names: tuple[str, ...],
    ctx: MethodContext,
    dataset_name: str,
    gt_labels: np.ndarray | None,
) -> list[RunRecord]:
    records: list[RunRecord] = []
    labels_gt = gt_labels
    # DBSCAN first when present, so its labels serve as ground truth.
    ordered = sorted(method_names, key=lambda n: n != "DBSCAN")
    pending: list[tuple[str, ClusteringResult, float]] = []
    for name in ordered:
        clusterer = build_method(name, ctx, X)
        result, elapsed = run_method(clusterer, X)
        if name == "DBSCAN" and labels_gt is None:
            labels_gt = result.labels
        pending.append((name, result, elapsed))
    if labels_gt is None:
        labels_gt = ground_truth(X, ctx.eps, ctx.tau).labels
    for name, result, elapsed in pending:
        records.append(
            RunRecord(
                method=name,
                dataset=dataset_name,
                eps=ctx.eps,
                tau=ctx.tau,
                elapsed_seconds=elapsed,
                ari=adjusted_rand_index(labels_gt, result.labels),
                ami=adjusted_mutual_info(labels_gt, result.labels),
                n_clusters=result.n_clusters,
                noise_ratio=result.noise_ratio,
                stats=dict(result.stats),
            )
        )
    return records
