"""Timed execution and scoring of clustering methods.

Implements the paper's measurement protocol: the efficiency metric is
the elapsed clustering time *including* cardinality-estimator prediction
time and excluding its training time (prediction happens inside
``fit``; training happens before the run). Quality is ARI/AMI against
original DBSCAN on the same data.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.clustering.dbscan import DBSCAN
from repro.engine_config import ExecutionConfig
from repro.experiments.methods import MethodContext, build_method
from repro.index.sharded import ShardingConfig
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.mutual_info import adjusted_mutual_info

__all__ = ["RunRecord", "ground_truth", "run_method", "run_suite"]


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One (method, dataset, eps, tau) measurement."""

    method: str
    dataset: str
    eps: float
    tau: int
    elapsed_seconds: float
    ari: float
    ami: float
    n_clusters: int
    noise_ratio: float
    stats: dict[str, int | float]

    def as_row(self) -> dict[str, object]:
        """Flat representation for reporting tables.

        When the run executed under engine sharding, the build
        accounting (``shard_inner_builds`` — exactly one inner build per
        live shard per fit — and ``shard_rebalances``) rides along so
        JSON consumers can audit the build-once contract per record.
        """
        row = {
            "method": self.method,
            "dataset": self.dataset,
            "eps": self.eps,
            "tau": self.tau,
            "time_s": round(self.elapsed_seconds, 4),
            "ARI": round(self.ari, 4),
            "AMI": round(self.ami, 4),
            "clusters": self.n_clusters,
            "noise": round(self.noise_ratio, 4),
        }
        for key in ("shard_live_shards", "shard_inner_builds", "shard_rebalances"):
            if key in self.stats:
                row[key] = self.stats[key]
        return row


def ground_truth(
    X: np.ndarray,
    eps: float,
    tau: int,
    execution: ExecutionConfig | None = None,
) -> ClusteringResult:
    """The paper's ground truth: original DBSCAN on the same data.

    ``execution`` threads through the *exactness-preserving* knobs
    (sharding, batching, block sizes); an ``index`` override is dropped
    — the reference every approximate method is scored against must
    stay exact brute force, and e.g. a ``kmeans_tree`` spec below
    ``checks_ratio=1.0`` would silently corrupt every ARI/AMI in the
    run. Time DBSCAN under a custom backend through
    :func:`run_suite` / the clusterer directly instead.
    """
    if execution is not None and execution.index is not None:
        execution = dataclasses.replace(execution, index=None)
    return DBSCAN(eps=eps, tau=tau, execution=execution).fit(X)


def run_method(clusterer: Clusterer, X: np.ndarray) -> tuple[ClusteringResult, float]:
    """Fit and wall-clock one method; returns (result, seconds)."""
    started = time.perf_counter()
    result = clusterer.fit(X)
    return result, time.perf_counter() - started


def run_suite(
    X: np.ndarray,
    method_names: tuple[str, ...],
    ctx: MethodContext,
    dataset_name: str = "dataset",
    gt_labels: np.ndarray | None = None,
    sharding: ShardingConfig | None = None,
    execution: ExecutionConfig | None = None,
) -> list[RunRecord]:
    """Run a list of methods on one dataset and score against DBSCAN.

    ``gt_labels`` may be supplied to avoid recomputing the ground truth;
    when omitted it is derived — when "DBSCAN" is among the methods
    *and* the execution config keeps it exact (no index override), its
    own timed run provides the labels, otherwise :func:`ground_truth`
    recomputes an exact reference (sharding/batching still apply).
    ``execution`` threads an
    :class:`~repro.engine_config.ExecutionConfig` into every method of
    the suite (overriding ``ctx.execution``); ``sharding`` is the
    shorthand that folds one :class:`ShardingConfig` into that config.
    Both are plain parameters — nothing is installed process- or
    thread-wide, so concurrent suites cannot interfere.
    """
    if execution is None:
        execution = ctx.execution
    if sharding is not None:
        execution = dataclasses.replace(
            execution or ExecutionConfig(), sharding=sharding
        )
    if execution is not ctx.execution:
        ctx = dataclasses.replace(ctx, execution=execution)
    records: list[RunRecord] = []
    labels_gt = gt_labels
    # The timed DBSCAN run can double as the ground truth only while it
    # is exact: an execution with an index override (possibly an
    # approximate backend) must not leak into the reference labels every
    # ARI/AMI is scored against — ground_truth() recomputes exactly then.
    exact_reference = execution is None or execution.index is None
    # DBSCAN first when present, so its labels serve as ground truth.
    ordered = sorted(method_names, key=lambda n: n != "DBSCAN")
    pending: list[tuple[str, ClusteringResult, float]] = []
    for name in ordered:
        clusterer = build_method(name, ctx, X)
        result, elapsed = run_method(clusterer, X)
        if name == "DBSCAN" and labels_gt is None and exact_reference:
            labels_gt = result.labels
        pending.append((name, result, elapsed))
    if labels_gt is None:
        labels_gt = ground_truth(X, ctx.eps, ctx.tau, execution=execution).labels
    for name, result, elapsed in pending:
        records.append(
            RunRecord(
                method=name,
                dataset=dataset_name,
                eps=ctx.eps,
                tau=ctx.tau,
                elapsed_seconds=elapsed,
                ari=adjusted_rand_index(labels_gt, result.labels),
                ami=adjusted_mutual_info(labels_gt, result.labels),
                n_clusters=result.n_clusters,
                noise_ratio=result.noise_ratio,
                stats=dict(result.stats),
            )
        )
    return records
