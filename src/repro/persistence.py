"""Versioned on-disk persistence for built indexes and fitted clusterers.

Everything else in this library is fit-and-forget; this module is the
fit-once/query-forever half. An artifact is a *directory* holding one
``manifest.json`` plus one ``.npy`` file per array:

* the manifest is strict JSON carrying the format version, the artifact
  kind, the reconstruction spec (backend name + kwargs for indexes, the
  :class:`~repro.engine_config.ExecutionConfig` wire format for models),
  and per-array dtype/shape/size/sha256 — every load verifies all of it
  and raises a typed :class:`~repro.exceptions.PersistenceError` (never
  a bare numpy traceback) on truncation, checksum mismatch, unknown or
  newer format versions, and manifest drift;
* the arrays are plain ``.npy`` files loaded back with
  ``np.load(mmap_mode="r")``, so reattaching a saved index never copies
  the data matrix into RAM — the remote-worker reattach path
  ("build a shard index once, serialize it, memory-map it from a
  worker") in its local form.

:func:`save_index` / :func:`load_index` cover all four registered
backends plus :class:`~repro.index.sharded.ShardedIndex` (a directory of
per-shard artifacts sharing one memory-mapped ``points.npy``);
:class:`ClusterModel` freezes a fitted clustering — labels, core mask,
core distances, the LAF estimator's fitted parameters — and serves
:meth:`ClusterModel.predict` through the same batched/sharded engine
substrate the fit used.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from pathlib import Path
from typing import Any, TypeVar

import numpy as np

from repro.distances.metric import Metric, get_metric
from repro.engine_config import ExecutionConfig
from repro.exceptions import (
    InvalidParameterError,
    NotFittedError,
    PersistenceError,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILENAME",
    "ClusterModel",
    "load_index",
    "load_model",
    "load_shard_index",
    "read_manifest",
    "save_index",
]

#: Tag every manifest starts with; anything else is not ours.
FORMAT_NAME = "repro-artifact"

#: Version of the on-disk layout this library writes and understands.
#: Backwards-compatible readers bump this only when the layout changes;
#: the golden-file test under ``tests/golden/`` pins version 1.
FORMAT_VERSION = 1

MANIFEST_FILENAME = "manifest.json"

#: Artifact kinds.
KIND_INDEX = "index"
KIND_INDEX_SHARD = "index_shard"
KIND_SHARDED_INDEX = "sharded_index"
KIND_CLUSTER_MODEL = "cluster_model"

_HASH_CHUNK = 1 << 20

#: Wire-format name marking an execution config whose index spec was a
#: non-serializable custom factory (see ``IndexSpec.wire_dict``).
_CUSTOM_SPEC = "custom"


# ----------------------------------------------------------------------
# Manifest + array I/O core
# ----------------------------------------------------------------------


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def write_artifact(
    path: str | Path,
    kind: str,
    arrays: Mapping[str, np.ndarray],
    spec: Mapping | None = None,
    metadata: Mapping | None = None,
) -> Path:
    """Write one artifact directory: arrays first, manifest last.

    The manifest is the commit point — a directory without one is never
    a valid artifact, so a crash mid-write cannot leave something that
    loads. Each array is stored C-contiguous with its dtype, shape,
    on-disk byte size and sha256 recorded in the manifest.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    entries: dict[str, dict] = {}
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(np.asarray(arr))
        filename = f"{name}.npy"
        target = path / filename
        np.save(target, arr, allow_pickle=False)
        entries[name] = {
            "file": filename,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "nbytes": target.stat().st_size,
            "sha256": _sha256_of(target),
        }
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "spec": dict(spec or {}),
        "arrays": entries,
        "metadata": dict(metadata or {}),
    }
    (path / MANIFEST_FILENAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return path


def read_manifest(path: str | Path, expected_kind: str | None = None) -> dict:
    """Read and validate an artifact manifest; every failure is typed.

    Checks, in order: the directory and ``manifest.json`` exist, the
    JSON parses into a mapping, the format tag matches, the version is
    one this library understands (a *newer* version raises with an
    upgrade hint rather than misreading the layout), the required keys
    are present, and — when ``expected_kind`` is given — the artifact
    kind is the one the caller asked for.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_FILENAME
    if not path.is_dir() or not manifest_path.is_file():
        raise PersistenceError(
            f"no artifact at {path}: expected a directory containing "
            f"{MANIFEST_FILENAME}"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(
            f"unreadable manifest at {manifest_path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise PersistenceError(
            f"{manifest_path} is not a {FORMAT_NAME} manifest"
        )
    version = manifest.get("format_version")
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise PersistenceError(
            f"invalid format_version {version!r} in {manifest_path}"
        )
    if version > FORMAT_VERSION:
        raise PersistenceError(
            f"artifact at {path} uses format version {version}, newer than "
            f"the highest this library understands ({FORMAT_VERSION}); "
            "upgrade the library to read it"
        )
    for key in ("kind", "spec", "arrays", "metadata"):
        if key not in manifest:
            raise PersistenceError(f"manifest at {manifest_path} is missing {key!r}")
    if not isinstance(manifest["arrays"], dict):
        raise PersistenceError(
            f"manifest at {manifest_path} has a malformed 'arrays' section"
        )
    if expected_kind is not None and manifest["kind"] != expected_kind:
        raise PersistenceError(
            f"artifact at {path} has kind {manifest['kind']!r}; "
            f"expected {expected_kind!r}"
        )
    return manifest


def load_arrays(
    path: str | Path,
    manifest: Mapping,
    *,
    mmap: bool = True,
    verify: bool = True,
) -> dict[str, np.ndarray]:
    """Load every manifest array, verified, memory-mapped by default.

    Per array, in order: the file exists, its byte size matches the
    manifest (truncation check), its sha256 matches (skippable with
    ``verify=False`` for hot reattach paths), it parses as ``.npy``,
    and its dtype/shape agree with the manifest (drift check). With
    ``mmap=True`` arrays come back as read-only maps — no copy.
    """
    path = Path(path)
    out: dict[str, np.ndarray] = {}
    for name, entry in manifest["arrays"].items():
        target = path / entry["file"]
        if not target.is_file():
            raise PersistenceError(f"array file {entry['file']} missing from {path}")
        size = target.stat().st_size
        if size != entry["nbytes"]:
            raise PersistenceError(
                f"array file {entry['file']} in {path} is truncated or "
                f"padded: {size} bytes on disk, manifest says {entry['nbytes']}"
            )
        if verify and _sha256_of(target) != entry["sha256"]:
            raise PersistenceError(
                f"checksum mismatch for {entry['file']} in {path}: "
                "the file was modified or corrupted after saving"
            )
        try:
            arr = np.load(target, mmap_mode="r" if mmap else None, allow_pickle=False)
        except Exception as exc:
            raise PersistenceError(
                f"could not parse array file {entry['file']} in {path}: {exc}"
            ) from exc
        if arr.dtype.str != entry["dtype"] or list(arr.shape) != list(entry["shape"]):
            raise PersistenceError(
                f"array {name!r} in {path} drifted from its manifest: "
                f"disk has dtype {arr.dtype.str} shape {tuple(arr.shape)}, "
                f"manifest says dtype {entry['dtype']} shape "
                f"{tuple(entry['shape'])}"
            )
        out[name] = arr
    return out


# ----------------------------------------------------------------------
# Index save/load
# ----------------------------------------------------------------------


def save_index(index: Any, path: str | Path) -> Path:
    """Persist a built index as a versioned artifact directory.

    Handles the four registered backends and
    :class:`~repro.index.sharded.ShardedIndex` (saved as a directory of
    per-shard artifacts sharing one ``points.npy``). Indexes without a
    registered rebuild spec — custom types, or a
    :class:`~repro.index.kmeans_tree.KMeansTree` seeded with a live
    Generator — raise :class:`PersistenceError`; an unbuilt index raises
    :class:`~repro.exceptions.NotFittedError`.
    """
    from repro.index.sharded import ShardedIndex, backend_spec_of

    if isinstance(index, ShardedIndex):
        return _save_sharded(index, path)
    if not getattr(index, "is_built", False):
        raise NotFittedError(
            f"{type(index).__name__} has not been built; build() before save()"
        )
    spec = backend_spec_of(index)
    if spec is not None:
        from repro.index.sharded import INNER_BACKENDS

        # backend_spec_of matches by isinstance; a subclass would save
        # under the base backend's name and load back as the wrong type.
        if INNER_BACKENDS.get(spec[0]) is not type(index):
            spec = None
    if spec is None:
        raise PersistenceError(
            f"{type(index).__name__} has no registered rebuild spec and "
            "cannot be saved (custom index types, and k-means trees seeded "
            "with a live Generator, are not reconstructible from disk); "
            "use a registered backend with JSON-safe constructor arguments"
        )
    name, kwargs = spec
    return write_artifact(
        path,
        KIND_INDEX,
        index.to_arrays(),
        spec={"backend": name, "kwargs": kwargs},
        metadata={"n_points": int(index.n_points)},
    )


def load_index(
    path: str | Path,
    *,
    mmap: bool = True,
    verify: bool = True,
    executor: Any = None,
) -> Any:
    """Load a saved index, reattaching arrays via ``np.load(mmap_mode="r")``.

    The inverse of :func:`save_index`: returns a query-ready backend of
    the saved type whose point matrix is a read-only memory map — a
    worker reattaching a shard artifact never copies the data. Pass
    ``verify=False`` to skip the sha256 pass (size/dtype/shape checks
    always run); ``mmap=False`` reads the arrays into RAM instead.

    ``executor`` (sharded artifacts only) overrides the executor spec
    recorded at save time — an :class:`~repro.index.sharded.ExecutorSpec`,
    a registered name, or a wire dict — so one artifact can reattach
    serially on a laptop or onto a worker pool without resaving.
    """
    manifest = read_manifest(path)
    kind = manifest["kind"]
    if kind == KIND_SHARDED_INDEX:
        return _load_sharded(
            Path(path), manifest, mmap=mmap, verify=verify, executor=executor
        )
    if executor is not None:
        raise PersistenceError(
            f"artifact at {path} is not sharded; the executor= override "
            "only applies to sharded artifacts"
        )
    if kind != KIND_INDEX:
        raise PersistenceError(
            f"artifact at {path} has kind {kind!r}; expected an index "
            f"({KIND_INDEX!r} or {KIND_SHARDED_INDEX!r})"
        )
    index = _make_backend(manifest["spec"], path)
    arrays = load_arrays(path, manifest, mmap=mmap, verify=verify)
    return _restore_backend(index, arrays, path)


def _make_backend(spec: Mapping, path: Path) -> Any:
    from repro.index.sharded import make_inner_backend

    backend = spec.get("backend")
    kwargs = spec.get("kwargs", {})
    if not isinstance(backend, str) or not isinstance(kwargs, Mapping):
        raise PersistenceError(
            f"artifact at {path} has a malformed backend spec: {dict(spec)!r}"
        )
    try:
        return make_inner_backend(backend, dict(kwargs))
    except (InvalidParameterError, TypeError) as exc:
        raise PersistenceError(
            f"cannot reconstruct backend {backend!r} from {path}: {exc}"
        ) from exc


def _restore_backend(index: Any, arrays: dict, path: Path) -> Any:
    try:
        return index.from_arrays(arrays)
    except KeyError as exc:
        raise PersistenceError(
            f"artifact at {path} is missing array {exc.args[0]!r} required "
            f"by {type(index).__name__}"
        ) from exc


def _shard_dir(path: Path, shard_id: int) -> Path:
    return path / "shards" / f"{shard_id:05d}"


def _save_sharded(index: Any, path: str | Path) -> Path:
    """ShardedIndex layout: top-level ``points.npy`` + per-shard artifacts.

    The full matrix is stored exactly once; each shard artifact holds
    only its backend's structural arrays, and the loader injects the
    mmap'd row slice ``points[lo:hi]`` back into each shard — so neither
    disk nor a reattaching process ever holds a second copy of the data.

    Works under *any* executor: the local (serial/thread) executors hand
    their built shard indexes over directly, while a worker-held
    executor (process/remote) keeps its indexes out of reach of the
    parent — those shards are rebuilt parent-side one at a time for
    serialization (deterministic: registered backends reconstruct
    bit-identically from the same rows and spec). The executor spec is
    recorded in the artifact, so loading reattaches under the saved
    topology by default — or any other via ``load_index(executor=...)``.
    """
    from repro.index.sharded import make_inner_backend

    index._require_built()
    if callable(index.inner):
        raise PersistenceError(
            "a ShardedIndex built from a factory callable has no "
            "serializable inner spec; use a registered backend name to "
            "make it saveable"
        )
    local_indexes = getattr(index._require_executor(), "_indexes", None)
    points = index.points
    path = Path(path)
    live = [[int(s), int(lo), int(hi)] for s, lo, hi in index._live]
    for s, lo, hi in live:
        if local_indexes is not None:
            shard_index = local_indexes[s]
        else:
            # Worker-held executor: the parent rebuilds this one shard
            # from its rows (and drops it before the next — peak memory
            # is one shard index, not n_shards of them).
            shard_index = make_inner_backend(index.inner, index.inner_kwargs).build(
                np.ascontiguousarray(points[lo:hi])
            )
        inner_arrays = shard_index.to_arrays()
        inner_arrays.pop("points")  # stored once at the top level
        write_artifact(
            _shard_dir(path, s),
            KIND_INDEX_SHARD,
            inner_arrays,
            spec={"backend": index.inner, "kwargs": dict(index.inner_kwargs)},
            metadata={"shard_id": s, "lo": lo, "hi": hi},
        )
    return write_artifact(
        path,
        KIND_SHARDED_INDEX,
        {"points": points},
        spec={
            "inner": index.inner,
            "inner_kwargs": dict(index.inner_kwargs),
            "n_shards": index.n_shards,
            "executor": index.executor.wire_value(),
            "n_workers": index.n_workers,
            "query_block": index.query_block,
        },
        metadata={"offsets": index._offsets.tolist(), "live": live},
    )


def _load_sharded(
    path: Path,
    manifest: Mapping,
    *,
    mmap: bool,
    verify: bool,
    executor: Any = None,
) -> Any:
    from repro.index.sharded import ExecutorSpec, ShardedIndex

    spec = manifest["spec"]
    for key in ("inner", "inner_kwargs", "n_shards", "executor", "query_block"):
        if key not in spec:
            raise PersistenceError(
                f"sharded artifact at {path} is missing spec key {key!r}"
            )
    arrays = load_arrays(path, manifest, mmap=mmap, verify=verify)
    try:
        points = arrays["points"]
    except KeyError:
        raise PersistenceError(
            f"sharded artifact at {path} is missing its 'points' array"
        ) from None
    meta = manifest["metadata"]
    try:
        offsets = np.asarray(meta["offsets"], dtype=np.int64)
        live = [tuple(int(v) for v in entry) for entry in meta["live"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(
            f"sharded artifact at {path} has malformed shard metadata: {exc}"
        ) from exc
    try:
        executor_spec = ExecutorSpec.coerce(
            spec["executor"] if executor is None else executor
        )
        out = ShardedIndex(
            inner=str(spec["inner"]),
            inner_kwargs=dict(spec["inner_kwargs"]),
            n_shards=int(spec["n_shards"]),
            executor=executor_spec,
            n_workers=spec.get("n_workers"),
            query_block=int(spec["query_block"]),
        )
    except (InvalidParameterError, TypeError, ValueError) as exc:
        raise PersistenceError(
            f"cannot reconstruct the ShardedIndex spec of {path}: {exc}"
        ) from exc
    if executor_spec.name == "remote":
        # Remote reattach never deserializes shard indexes parent-side:
        # the artifact path travels to the workers, which load their
        # pinned shards from the shared filesystem and keep them warm.
        return out._attach_loaded(
            points, offsets, live, None, artifact_path=str(path)
        )
    indexes: dict[int, object] = {}
    for s, lo, hi in live:
        shard_path = _shard_dir(path, s)
        shard_manifest = read_manifest(shard_path, expected_kind=KIND_INDEX_SHARD)
        shard_arrays = load_arrays(shard_path, shard_manifest, mmap=mmap, verify=verify)
        shard_arrays["points"] = points[lo:hi]
        inner = _make_backend(shard_manifest["spec"], shard_path)
        indexes[s] = _restore_backend(inner, shard_arrays, shard_path)
    return out._attach_loaded(points, offsets, live, indexes)


def load_shard_index(
    path: str | Path, shard_id: int, *, mmap: bool = True, verify: bool = True
) -> Any:
    """Load one shard's built inner index from a sharded artifact.

    The worker-side reattach primitive of the remote pool: a worker
    pinned to shard ``shard_id`` loads only its own shard artifact plus
    a memory-mapped slice of the shared ``points.npy`` — never the
    sibling shards. Returns the query-ready inner backend.
    """
    path = Path(path)
    manifest = read_manifest(path, expected_kind=KIND_SHARDED_INDEX)
    arrays = load_arrays(path, manifest, mmap=mmap, verify=verify)
    try:
        points = arrays["points"]
    except KeyError:
        raise PersistenceError(
            f"sharded artifact at {path} is missing its 'points' array"
        ) from None
    try:
        live = {
            int(entry[0]): (int(entry[1]), int(entry[2]))
            for entry in manifest["metadata"]["live"]
        }
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise PersistenceError(
            f"sharded artifact at {path} has malformed shard metadata: {exc}"
        ) from exc
    if shard_id not in live:
        raise PersistenceError(
            f"sharded artifact at {path} has no shard {shard_id}; "
            f"live shards: {sorted(live)}"
        )
    lo, hi = live[shard_id]
    shard_path = _shard_dir(path, shard_id)
    shard_manifest = read_manifest(shard_path, expected_kind=KIND_INDEX_SHARD)
    shard_arrays = load_arrays(shard_path, shard_manifest, mmap=mmap, verify=verify)
    shard_arrays["points"] = points[lo:hi]
    inner = _make_backend(shard_manifest["spec"], shard_path)
    return _restore_backend(inner, shard_arrays, shard_path)


# ----------------------------------------------------------------------
# Fitted clusterer persistence + serving
# ----------------------------------------------------------------------


def _estimator_registry() -> dict[str, type]:
    """Estimator types with npz ``save``/``load`` (the LAF family's)."""
    from repro.estimators import MLPRegressor, RMICardinalityEstimator

    return {
        "RMICardinalityEstimator": RMICardinalityEstimator,
        "MLPRegressor": MLPRegressor,
    }


class ClusterModel:
    """A fitted clustering frozen for serving.

    Holds the training points, per-point labels and core mask of one
    fit, plus the metadata to reconstruct its serving path: algorithm
    name, JSON-safe hyperparameters, metric, and the
    :class:`~repro.engine_config.ExecutionConfig` of the fit — so
    :meth:`predict` shards across the same executor topology the fit
    used. Built by ``Clusterer.fit_model`` / :func:`repro.fit_model`,
    persisted with :meth:`save`, reattached with :func:`load_model`.

    Predict semantics (pinned by ``tests/test_predict_differential.py``
    and documented in ``docs/persistence.md``): a new point takes the
    label of its *nearest core point* within ``eps`` (strict ``<``,
    the paper's neighborhood predicate); exact distance ties go to the
    core point with the smallest training index; a point inside no
    core's eps-ball is noise (``-1``). Re-predicting the training set
    therefore reproduces the fit labels on every core point, while a
    border point sitting in two clusters' reach may legitimately flip
    to its nearest core's cluster — fit assigns borders in discovery
    order, predict by proximity.
    """

    def __init__(
        self,
        points: np.ndarray,
        labels: np.ndarray,
        core_mask: np.ndarray,
        *,
        algo: str,
        params: Mapping,
        metric: str | Metric = "cosine",
        execution: ExecutionConfig | None = None,
        estimator: Any = None,
    ) -> None:
        self.points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        self.labels = np.asarray(labels, dtype=np.int64)
        self.core_mask = np.asarray(core_mask, dtype=bool)
        if self.points.ndim != 2:
            raise InvalidParameterError(
                f"points must be 2-d; got shape {self.points.shape}"
            )
        n = self.points.shape[0]
        if self.labels.shape != (n,) or self.core_mask.shape != (n,):
            raise InvalidParameterError(
                "labels and core_mask must be 1-d with one entry per point; "
                f"got shapes {self.labels.shape} and {self.core_mask.shape} "
                f"for {n} points"
            )
        self.algo = str(algo)
        self.params = dict(params)
        if "eps" not in self.params:
            raise InvalidParameterError("model params must include 'eps'")
        self.eps = float(self.params["eps"])
        self.metric = get_metric(metric)
        if execution is None:
            execution = ExecutionConfig()
        self.execution = execution
        self.estimator = estimator
        self._core_global = np.flatnonzero(self.core_mask)
        self._core_points: np.ndarray | None = None
        self._core_index: Any = None
        self._core_index_owned = False
        self._core_distances: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def n_cores(self) -> int:
        return int(self._core_global.size)

    @property
    def n_clusters(self) -> int:
        non_noise = self.labels[self.labels != -1]
        return int(np.unique(non_noise).size)

    @property
    def core_distances(self) -> np.ndarray:
        """Distance from each training point to its nearest core point.

        Zero for core points themselves; ``inf`` when the fit produced
        no cores. Computed lazily on first access (one blocked pass of
        points × cores) and stored in the artifact, so a loaded model
        serves it straight from the memory map.
        """
        if self._core_distances is None:
            self._core_distances = self._nearest_core_distance(self.points)
        return self._core_distances

    def _cores(self) -> np.ndarray:
        # The serving working set: the core rows gathered into a dense
        # matrix (indexes build over a matrix, not a row subset).
        if self._core_points is None:
            self._core_points = np.ascontiguousarray(self.points[self._core_global])
        return self._core_points

    def _nearest_core_distance(self, Q: np.ndarray) -> np.ndarray:
        from repro.distances.matrix import iter_distance_blocks

        out = np.full(Q.shape[0], np.inf)
        cores = self._cores()
        if cores.shape[0] == 0 or Q.shape[0] == 0:
            return out
        for start, stop, block in iter_distance_blocks(
            np.asarray(Q, dtype=np.float64), cores, metric=self.metric.name
        ):
            out[start:stop] = block.min(axis=1)
        return out

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _ensure_core_index(self) -> Any:
        """The range-query index over the core points, built once.

        Resolved through the same seams as a fit: the execution
        config's index spec under the model's metric
        (:func:`repro.clustering.base.resolve_index_spec`), then
        :func:`repro.index.sharded.resolve_engine_index` so a sharding
        config fans prediction across shards exactly like fitting.
        """
        if self._core_index is None:
            from repro.clustering.base import resolve_index_spec
            from repro.index.sharded import ShardingConfig, resolve_engine_index

            unbuilt = resolve_index_spec(self.execution.index, self.metric)
            sharding = self.execution.sharding
            if not isinstance(sharding, ShardingConfig):
                sharding = False  # None and False both mean unsharded
            self._core_index, self._core_index_owned = resolve_engine_index(
                unbuilt, self._cores(), sharding
            )
        return self._core_index

    def predict(self, X_new: np.ndarray) -> np.ndarray:
        """Labels for new points against the frozen model.

        One batched range query (block size ``execution.query_block``)
        against the core points per block of queries, then the
        nearest-core rule described in the class docstring. A 1-d input
        is treated as a single query; the result is always 1-d with one
        label per query row, ``-1`` for noise.
        """
        Q = np.asarray(X_new, dtype=np.float64)
        if Q.ndim == 1:
            Q = Q[None, :]
        if Q.ndim != 2 or (Q.shape[0] and Q.shape[1] != self.points.shape[1]):
            raise InvalidParameterError(
                f"queries must have dimension {self.points.shape[1]}; "
                f"got shape {Q.shape}"
            )
        n_queries = Q.shape[0]
        out = np.full(n_queries, -1, dtype=np.int64)
        if n_queries == 0 or self._core_global.size == 0:
            return out
        Q = self.metric.validate(Q)
        index = self._ensure_core_index()
        cores = self._cores()
        core_labels = self.labels[self._core_global]
        block = int(self.execution.query_block)
        for lo in range(0, n_queries, block):
            hi = min(lo + block, n_queries)
            rows = index.batch_range_query(Q[lo:hi], self.eps)
            for offset, row in enumerate(rows):
                if row.size == 0:
                    continue
                d = self.metric.distance_to_many(Q[lo + offset], cores[row])
                # Nearest core wins; exact ties go to the smallest
                # training index (rows index the cores in ascending
                # global order, so min over the tied subset is it).
                chosen = int(row[d == d.min()].min())
                out[lo + offset] = core_labels[chosen]
        return out

    def close(self) -> None:
        """Release the serving index (pools, shared memory). Idempotent."""
        if self._core_index is not None and self._core_index_owned:
            closer = getattr(self._core_index, "close", None)
            if closer is not None:
                closer()
        self._core_index = None
        self._core_index_owned = False

    def __enter__(self) -> "ClusterModel":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist the model as a versioned artifact directory.

        The LAF estimator's fitted parameters ride along as
        ``estimator.npz`` when its type supports npz persistence (the
        RMI and its MLP stages); other estimator types are recorded by
        name only — predict never needs them, they are fit-time
        machinery. A custom index-spec factory is recorded as a marker
        and turns into an actionable error at load time.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        estimator_entry = None
        if self.estimator is not None:
            type_name = type(self.estimator).__name__
            if type_name in _estimator_registry():
                self.estimator.save(str(path / "estimator.npz"))
                estimator_entry = {"type": type_name, "file": "estimator.npz"}
            else:
                estimator_entry = {"type": type_name, "file": None}
        return write_artifact(
            path,
            KIND_CLUSTER_MODEL,
            {
                "points": self.points,
                "labels": self.labels,
                "core_mask": self.core_mask,
                "core_distances": self.core_distances,
            },
            spec={
                "algo": self.algo,
                "params": self.params,
                "metric": self.metric.name,
                "execution": self.execution.wire_dict(),
            },
            metadata={
                "n_points": self.n_points,
                "n_cores": self.n_cores,
                "n_clusters": self.n_clusters,
                "estimator": estimator_entry,
            },
        )


def load_model(
    path: str | Path, *, mmap: bool = True, verify: bool = True
) -> "ClusterModel":
    """Load a :class:`ClusterModel` saved with :meth:`ClusterModel.save`.

    Arrays reattach as read-only memory maps (``mmap=False`` to read
    into RAM; ``verify=False`` to skip the sha256 pass). A model fit
    under a custom ``IndexSpec`` factory cannot reconstruct its serving
    path and raises :class:`PersistenceError` with the fix.
    """
    path = Path(path)
    manifest = read_manifest(path, expected_kind=KIND_CLUSTER_MODEL)
    spec = manifest["spec"]
    for key in ("algo", "params", "metric", "execution"):
        if key not in spec:
            raise PersistenceError(
                f"model artifact at {path} is missing spec key {key!r}"
            )
    execution_payload = spec["execution"]
    index_payload = (execution_payload or {}).get("index")
    if isinstance(index_payload, Mapping) and index_payload.get("name") == _CUSTOM_SPEC:
        raise PersistenceError(
            f"the model at {path} was fit with a custom IndexSpec factory, "
            "which cannot be reconstructed from disk; refit with a "
            "registered backend (IndexSpec(name, kwargs)) to make the "
            "model loadable, or rebuild the ClusterModel in code around "
            "the original factory"
        )
    try:
        execution = ExecutionConfig.from_dict(execution_payload)
    except InvalidParameterError as exc:
        raise PersistenceError(
            f"cannot reconstruct the execution config of {path}: {exc}"
        ) from exc
    arrays = load_arrays(path, manifest, mmap=mmap, verify=verify)
    estimator = None
    entry = manifest["metadata"].get("estimator")
    if isinstance(entry, Mapping) and entry.get("file"):
        registry = _estimator_registry()
        est_cls = registry.get(str(entry.get("type")))
        if est_cls is None:
            raise PersistenceError(
                f"model artifact at {path} references unknown estimator "
                f"type {entry.get('type')!r}"
            )
        est_path = path / str(entry["file"])
        if not est_path.is_file():
            raise PersistenceError(
                f"estimator file {entry['file']} missing from {path}"
            )
        estimator = est_cls.load(str(est_path))
    try:
        model = ClusterModel(
            points=arrays["points"],
            labels=arrays["labels"],
            core_mask=arrays["core_mask"],
            algo=str(spec["algo"]),
            params=dict(spec["params"]),
            metric=str(spec["metric"]),
            execution=execution,
            estimator=estimator,
        )
    except KeyError as exc:
        raise PersistenceError(
            f"model artifact at {path} is missing array {exc.args[0]!r}"
        ) from exc
    except InvalidParameterError as exc:
        raise PersistenceError(
            f"model artifact at {path} is internally inconsistent: {exc}"
        ) from exc
    stored = arrays.get("core_distances")
    if stored is not None:
        model._core_distances = np.asarray(stored, dtype=np.float64)
    return model


_IndexT = TypeVar("_IndexT")


def _check_loaded_type(index: Any, cls: type[_IndexT], path: Path) -> _IndexT:
    """Shared type guard for ``SomeIndex.load(path)`` classmethods."""
    if not isinstance(index, cls):
        raise PersistenceError(
            f"artifact at {path} holds a {type(index).__name__}, "
            f"not a {cls.__name__}"
        )
    return index
