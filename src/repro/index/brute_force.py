"""Exact brute-force index over vectors, metric-pluggable.

One matrix-vector product per query. This is the "range query" primitive
of Algorithm 1 and the reference answer that every approximate index is
tested against. Also provides batched forms used by DBSCAN++ (core-point
detection over a sample) and the estimator training-set builder.

The default metric is cosine distance on unit vectors (the paper's
setting); Euclidean distance is available through the ``metric``
parameter (the paper's future-work extension, see
:mod:`repro.distances.metric`).
"""

from __future__ import annotations

import numpy as np

from repro.distances.matrix import iter_distance_blocks
from repro.distances.metric import COSINE, Metric, get_metric
from repro.exceptions import InvalidParameterError
from repro.index.base import NeighborIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(NeighborIndex):
    """Exact distance index backed by dense matrix products.

    Parameters
    ----------
    block_size:
        Row-block size for the batched query paths; bounds peak memory at
        ``block_size * n_points`` floats.
    metric:
        "cosine" (default, requires unit rows) or "euclidean".

    Examples
    --------
    >>> import numpy as np
    >>> from repro.distances import normalize_rows
    >>> X = normalize_rows(np.random.default_rng(0).normal(size=(100, 16)))
    >>> index = BruteForceIndex().build(X)
    >>> neighbors = index.range_query(X[0], eps=0.5)
    >>> bool(np.isin(0, neighbors))  # a point is its own neighbor (d=0 < eps)
    True
    """

    def __init__(self, block_size: int = 1024, metric: str | Metric = COSINE) -> None:
        if block_size <= 0:
            raise InvalidParameterError(
                f"block_size must be positive; got {block_size}"
            )
        self.block_size = block_size
        self.metric = get_metric(metric)
        self._points: np.ndarray | None = None

    def build(self, X: np.ndarray) -> "BruteForceIndex":
        self._points = self.metric.validate(X)
        return self

    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        self._require_built()
        dists = self.metric.distance_to_many(
            np.asarray(q, dtype=np.float64), self._points
        )
        return np.flatnonzero(dists < eps)

    def range_count(self, q: np.ndarray, eps: float) -> int:
        self._require_built()
        dists = self.metric.distance_to_many(
            np.asarray(q, dtype=np.float64), self._points
        )
        return int(np.count_nonzero(dists < eps))

    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        self._require_built()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive; got {k}")
        k = min(k, self.n_points)
        dists = self.metric.distance_to_many(
            np.asarray(q, dtype=np.float64), self._points
        )
        nearest = np.argpartition(dists, k - 1)[:k]
        order = np.argsort(dists[nearest], kind="stable")
        idx = nearest[order]
        return idx, dists[idx]

    # ------------------------------------------------------------------
    # Batched forms (exact, blockwise)
    # ------------------------------------------------------------------

    def _iter_blocks(self, Q: np.ndarray):
        yield from iter_distance_blocks(
            self._as_query_matrix(Q),
            self._points,
            block_size=self.block_size,
            metric=self.metric.name,
        )

    def batch_range_query(self, Q: np.ndarray, eps: float) -> list[np.ndarray]:
        """Exact neighbor index arrays for every row of ``Q``, blockwise.

        One matrix product per block replaces ``len(Q)`` matrix-vector
        products; peak memory stays at ``block_size * n_points`` floats.
        """
        self._require_built()
        results: list[np.ndarray] = []
        for _, _, block in self._iter_blocks(Q):
            results.extend(np.flatnonzero(row < eps) for row in block)
        return results

    def batch_range_count(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Exact neighbor counts for every row of ``Q`` at threshold ``eps``."""
        self._require_built()
        Q = self._as_query_matrix(Q)
        counts = np.empty(Q.shape[0], dtype=np.int64)
        for start, stop, block in self._iter_blocks(Q):
            counts[start:stop] = np.count_nonzero(block < eps, axis=1)
        return counts

    def batch_knn_query(
        self, Q: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Exact blocked KNN: argpartition per distance block."""
        self._require_built()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive; got {k}")
        k = min(k, self.n_points)
        indices: list[np.ndarray] = []
        dists: list[np.ndarray] = []
        for _, _, block in self._iter_blocks(Q):
            if k < block.shape[1]:
                part = np.argpartition(block, k - 1, axis=1)[:, :k]
            else:
                part = np.broadcast_to(
                    np.arange(block.shape[1]), (block.shape[0], block.shape[1])
                )
            part_d = np.take_along_axis(block, part, axis=1)
            order = np.argsort(part_d, axis=1, kind="stable")
            row_idx = np.take_along_axis(part, order, axis=1)
            row_d = np.take_along_axis(part_d, order, axis=1)
            # Copy rows out so returned arrays don't pin the whole block.
            indices.extend(np.array(r, dtype=np.int64) for r in row_idx)
            dists.extend(np.array(r) for r in row_d)
        return indices, dists

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        self._require_built()
        return {"points": self._points}

    def from_arrays(self, arrays: dict) -> "BruteForceIndex":
        # Rows were validated at the original build; reattach without
        # copying so a memory-mapped matrix stays a map.
        self._points = np.asarray(arrays["points"], dtype=np.float64)
        return self

    # Backwards-compatible aliases for the pre-engine batched names.
    def range_count_many(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Alias of :meth:`batch_range_count` (pre-engine name)."""
        return self.batch_range_count(Q, eps)

    def range_query_many(self, Q: np.ndarray, eps: float) -> list[np.ndarray]:
        """Alias of :meth:`batch_range_query` (pre-engine name)."""
        return self.batch_range_query(Q, eps)

    def range_count_multi_eps(
        self, Q: np.ndarray, eps_values: np.ndarray
    ) -> np.ndarray:
        """Counts for every (query row, eps value) pair.

        Returns shape ``(len(Q), len(eps_values))``. Used by the estimator
        training-set builder, which needs counts at many radii per query.
        """
        self._require_built()
        eps_values = np.asarray(eps_values, dtype=np.float64)
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        counts = np.empty((Q.shape[0], eps_values.size), dtype=np.int64)
        for start, stop, block in self._iter_blocks(Q):
            counts[start:stop] = np.count_nonzero(
                block[:, :, None] < eps_values[None, None, :], axis=1
            )
        return counts
