"""Exact brute-force index over vectors, metric-pluggable.

One matrix-vector product per query. This is the "range query" primitive
of Algorithm 1 and the reference answer that every approximate index is
tested against. Also provides batched forms used by DBSCAN++ (core-point
detection over a sample) and the estimator training-set builder.

The default metric is cosine distance on unit vectors (the paper's
setting); Euclidean distance is available through the ``metric``
parameter (the paper's future-work extension, see
:mod:`repro.distances.metric`).
"""

from __future__ import annotations

import numpy as np

from repro.distances.matrix import euclidean_distance_matrix
from repro.distances.metric import COSINE, Metric, get_metric
from repro.exceptions import InvalidParameterError
from repro.index.base import NeighborIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(NeighborIndex):
    """Exact distance index backed by dense matrix products.

    Parameters
    ----------
    block_size:
        Row-block size for the batched query paths; bounds peak memory at
        ``block_size * n_points`` floats.
    metric:
        "cosine" (default, requires unit rows) or "euclidean".

    Examples
    --------
    >>> import numpy as np
    >>> from repro.distances import normalize_rows
    >>> X = normalize_rows(np.random.default_rng(0).normal(size=(100, 16)))
    >>> index = BruteForceIndex().build(X)
    >>> neighbors = index.range_query(X[0], eps=0.5)
    >>> bool(np.isin(0, neighbors))  # a point is its own neighbor (d=0 < eps)
    True
    """

    def __init__(self, block_size: int = 1024, metric: str | Metric = COSINE) -> None:
        if block_size <= 0:
            raise InvalidParameterError(f"block_size must be positive; got {block_size}")
        self.block_size = block_size
        self.metric = get_metric(metric)
        self._points: np.ndarray | None = None

    def build(self, X: np.ndarray) -> "BruteForceIndex":
        self._points = self.metric.validate(X)
        return self

    def _block(self, Q: np.ndarray) -> np.ndarray:
        """Distance block between query rows and all indexed points."""
        if self.metric.name == "cosine":
            return 1.0 - Q @ self._points.T
        return euclidean_distance_matrix(Q, self._points)

    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        self._require_built()
        dists = self.metric.distance_to_many(np.asarray(q, dtype=np.float64), self._points)
        return np.flatnonzero(dists < eps)

    def range_count(self, q: np.ndarray, eps: float) -> int:
        self._require_built()
        dists = self.metric.distance_to_many(np.asarray(q, dtype=np.float64), self._points)
        return int(np.count_nonzero(dists < eps))

    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        self._require_built()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive; got {k}")
        k = min(k, self.n_points)
        dists = self.metric.distance_to_many(np.asarray(q, dtype=np.float64), self._points)
        nearest = np.argpartition(dists, k - 1)[:k]
        order = np.argsort(dists[nearest], kind="stable")
        idx = nearest[order]
        return idx, dists[idx]

    # ------------------------------------------------------------------
    # Batched forms (exact, blockwise)
    # ------------------------------------------------------------------

    def _iter_blocks(self, Q: np.ndarray):
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        for start in range(0, Q.shape[0], self.block_size):
            stop = min(start + self.block_size, Q.shape[0])
            yield start, stop, self._block(Q[start:stop])

    def range_count_many(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Exact neighbor counts for every row of ``Q`` at threshold ``eps``."""
        self._require_built()
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        counts = np.empty(Q.shape[0], dtype=np.int64)
        for start, stop, block in self._iter_blocks(Q):
            counts[start:stop] = np.count_nonzero(block < eps, axis=1)
        return counts

    def range_query_many(self, Q: np.ndarray, eps: float) -> list[np.ndarray]:
        """Exact neighbor index arrays for every row of ``Q``."""
        self._require_built()
        results: list[np.ndarray] = []
        for _, _, block in self._iter_blocks(Q):
            results.extend(np.flatnonzero(row < eps) for row in block)
        return results

    def range_count_multi_eps(self, Q: np.ndarray, eps_values: np.ndarray) -> np.ndarray:
        """Counts for every (query row, eps value) pair.

        Returns shape ``(len(Q), len(eps_values))``. Used by the estimator
        training-set builder, which needs counts at many radii per query.
        """
        self._require_built()
        eps_values = np.asarray(eps_values, dtype=np.float64)
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        counts = np.empty((Q.shape[0], eps_values.size), dtype=np.int64)
        for start, stop, block in self._iter_blocks(Q):
            counts[start:stop] = np.count_nonzero(
                block[:, :, None] < eps_values[None, None, :], axis=1
            )
        return counts
