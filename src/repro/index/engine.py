"""Batched range-query engine shared by every clusterer.

The clustering algorithms in this repo are frontier expansions: they
discover, in data-dependent order, which points need their
eps-neighborhood. Executing those queries one ``index.range_query`` call
at a time leaves the dominant cost path as a Python loop of
matrix-vector products. :class:`NeighborhoodCache` turns the same
workload into blockwise ``batch_range_query`` calls without changing
*which* queries run or *when* their results become visible to the
algorithm:

* the clusterer **plans** the points whose neighborhoods it knows it
  will eventually need (for DBSCAN that is every point; for LAF-DBSCAN
  every predicted-core point);
* every **fetch** of an uncached point computes one block — the fetched
  point plus the next planned, still-uncached points — in a single
  batched index call;
* results are cached, so each point's neighborhood is computed at most
  once per fit.

Correctness contract: computation is *pure* (a neighborhood depends only
on the immutable index, the query point and ``eps``), so prefetching a
planned point early yields bit-identical results to querying it at its
algorithmic execution time. Side effects tied to query execution — the
LAF plugin's ``PartialNeighborMap.update`` (Algorithm 2), statistics
counters — remain the host algorithm's job at the moment it *uses* a
fetched neighborhood, which keeps the batched and per-point paths
observationally identical (the differential tests in
``tests/test_engine_equivalence.py`` assert exactly this). Because the
engine is demand-driven, a planned point whose fetch never happens costs
nothing, so planning is a prefetch-ordering hint, never speculation.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["NeighborhoodCache", "PerPointQueries", "fresh_engine_index"]


def fresh_engine_index(index, X: np.ndarray):
    """Prepare a freshly constructed backend for :class:`NeighborhoodCache`.

    Backends exposing the ``is_built`` seam are returned *unbuilt* — the
    cache builds them exactly once, shard-first when sharding is active.
    A duck-typed index without the seam keeps its legacy contract and is
    built here over ``X`` (the cache then only queries it). This is the
    one place the hand-over policy lives;
    :meth:`repro.clustering.base.Clusterer._engine` routes every
    clusterer's backend through it.
    """
    if getattr(index, "is_built", None) is None:
        return index.build(X)
    return index


#: Default number of queries computed per batched index call.
DEFAULT_QUERY_BLOCK = 1024


class PerPointQueries:
    """Per-point reference engine behind the :class:`NeighborhoodCache`
    surface.

    The ``batch_queries=False`` escape hatch of every clusterer: same
    ``plan`` / ``fetch`` / ``count`` / ``stats`` interface as the cache,
    but every query executes as one scalar index call at its algorithmic
    position — the reference path the differential harness diffs the
    batched engine against. ``plan`` is a no-op (there is nothing to
    prefetch) and ``stats`` is empty (no engine ran).
    """

    def __init__(self, index, X: np.ndarray, eps: float) -> None:
        self._index = index
        self._X = np.asarray(X, dtype=np.float64)
        self.eps = float(eps)

    def plan(self, indices) -> None:
        """Accepted for interface parity; per-point execution never
        prefetches."""

    def fetch(self, point: int) -> np.ndarray:
        """The eps-neighborhood of dataset row ``point`` (one scalar call)."""
        return self._index.range_query(self._X[int(point)], self.eps)

    def count(self, indices) -> np.ndarray:
        """Range counts of dataset rows, one scalar call per row."""
        ids = np.asarray(indices, dtype=np.int64)
        return np.fromiter(
            (self._index.range_count(self._X[i], self.eps) for i in ids),
            dtype=np.int64,
            count=ids.size,
        )

    def close(self) -> None:
        """Nothing to release: the host built and owns the index."""

    def stats(self) -> dict[str, int]:
        """No engine counters: nothing batched, nothing cached."""
        return {}


class NeighborhoodCache:
    """Caches eps-neighborhoods, computing them in planned batches.

    Parameters
    ----------
    index:
        Any object exposing ``batch_range_query(Q, eps) -> list[np.ndarray]``
        over the dataset ``X`` (every :class:`~repro.index.base.NeighborIndex`
        qualifies; :class:`~repro.index.brute_force.BruteForceIndex` makes
        the batch a true blocked matrix product). An *unbuilt* index
        (``is_built`` False) may be handed over instead: the cache builds
        it over ``X`` exactly once — and when sharding is active and the
        index has a registered rebuild spec, it builds the per-shard
        indexes *directly* (the shard-before-build path), so no
        whole-dataset index is ever constructed just to be discarded.
    X:
        The indexed point matrix; ``fetch`` takes row indices into it.
    eps:
        Cosine-distance threshold of every cached query.
    block_size:
        Maximum queries per batched index call. ``1`` degenerates to the
        per-point path (useful for differential testing).
    sharding:
        Optional :class:`~repro.index.sharded.ShardingConfig` for this
        cache — normally threaded in from
        :attr:`~repro.engine_config.ExecutionConfig.sharding`. When
        omitted, the *thread-local* configuration installed by the
        deprecated :func:`~repro.index.sharded.sharded_queries` shim
        applies (None when no shim is active); ``False`` disables
        sharding outright, shim or not. When a
        configuration is active and ``index`` is a recognised backend,
        the cache routes through a
        :class:`~repro.index.sharded.ShardedIndex` — built directly from
        an unbuilt index (shard-before-build, no discarded whole-dataset
        build) or rebuilt over a fitted index's points (fallback) — and
        this is how every clusterer that routes neighborhoods through the
        engine gains sharded execution without code changes. Results are
        bit-identical for exact backends (a neighborhood is the disjoint
        union of its per-shard neighborhoods).
    evict_on_fetch:
        When True, a neighborhood is released as soon as it is served.
        Safe (and memory-bounding: only prefetched-but-unserved results
        stay resident) for hosts that fetch each point at most once —
        which every clusterer in this repo does. A re-fetch after
        eviction transparently recomputes, so this only ever trades
        compute for memory, never correctness.
    """

    def __init__(
        self,
        index,
        X: np.ndarray,
        eps: float,
        block_size: int = DEFAULT_QUERY_BLOCK,
        sharding=None,
        evict_on_fetch: bool = False,
    ) -> None:
        if block_size <= 0:
            raise InvalidParameterError(
                f"block_size must be positive; got {block_size}"
            )
        # Imported here so the engine stays importable without pulling the
        # whole backend registry in at module-import time.
        from repro.index.sharded import resolve_engine_index

        self._X = np.asarray(X, dtype=np.float64)
        # When the cache built (or shard-wrapped) the index itself, the
        # result — and its worker pool / shared memory, for the process
        # executor — belongs to this cache: close() releases it
        # deterministically. Hosts that never call close still get
        # prompt release when the cache goes out of scope at the end of
        # a fit (the executor's weakref.finalize fires on refcount
        # collection).
        self._index, self._owns_index = resolve_engine_index(index, self._X, sharding)
        self.eps = float(eps)
        self.block_size = int(block_size)
        self.evict_on_fetch = bool(evict_on_fetch)
        n = self._X.shape[0]
        self._cached = np.zeros(n, dtype=bool)
        # Points computed at least once; evicted points stay marked so
        # the plan never re-batches something already served.
        self._ever_computed = np.zeros(n, dtype=bool)
        self._neighborhoods: list[np.ndarray | None] = [None] * n
        self._plan: list[int] = []
        self._plan_pos = 0
        self.n_fetches = 0
        self.n_cache_hits = 0
        self.n_computed = 0
        self.n_blocks = 0

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, indices: Iterable[int] | np.ndarray) -> None:
        """Append points to the prefetch order.

        Plan the points the algorithm knows it will query, in the order
        it is likely to query them. Already-cached or duplicate entries
        are skipped lazily at fill time.
        """
        indices = np.asarray(indices, dtype=np.int64)
        self._plan.extend(indices.tolist())

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------

    def fetch(self, point: int) -> np.ndarray:
        """The eps-neighborhood of dataset row ``point``.

        A cache miss computes ``point`` together with the next planned,
        still-uncached points in one batched index call.
        """
        point = int(point)
        self.n_fetches += 1
        if self._cached[point]:
            self.n_cache_hits += 1
        else:
            self._fill_block(point)
        neighbors = self._neighborhoods[point]
        if self.evict_on_fetch:
            self._neighborhoods[point] = None
            self._cached[point] = False
        return neighbors

    def is_cached(self, point: int) -> bool:
        """Whether ``point``'s neighborhood is already computed."""
        return bool(self._cached[point])

    def count(self, indices) -> np.ndarray:
        """Batched range counts of dataset rows (uncached).

        Routes through the index's ``batch_range_count`` kernel — which
        never materializes neighbor lists on backends that can count
        directly — and therefore bypasses the neighborhood cache: hosts
        use it for count-only phases (DBSCAN++'s core test), where
        caching would only cost memory. Sharded indexes sum per-shard
        counts, so sharding applies here exactly as it does to ``fetch``.
        """
        ids = np.asarray(indices, dtype=np.int64)
        counter = getattr(self._index, "batch_range_count", None)
        if counter is None:
            rows = self._index.batch_range_query(self._X[ids], self.eps)
            return np.array([len(row) for row in rows], dtype=np.int64)
        return np.asarray(counter(self._X[ids], self.eps), dtype=np.int64)

    def _fill_block(self, point: int) -> None:
        batch = [point]
        in_batch = {point}
        plan = self._plan
        while len(batch) < self.block_size and self._plan_pos < len(plan):
            candidate = plan[self._plan_pos]
            self._plan_pos += 1
            if candidate not in in_batch and not self._ever_computed[candidate]:
                batch.append(candidate)
                in_batch.add(candidate)
        ids = np.asarray(batch, dtype=np.int64)
        results = self._index.batch_range_query(self._X[ids], self.eps)
        for idx, neighbors in zip(batch, results):
            self._neighborhoods[idx] = neighbors
            self._cached[idx] = True
        self._ever_computed[ids] = True
        self.n_computed += len(batch)
        self.n_blocks += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release an index this cache built or shard-wrapped. Idempotent.

        Ownership follows the build: a *fitted* index the caller handed
        in stays the caller's (closing the cache is then a no-op), but
        an index the cache built — including an unbuilt object the
        caller passed, which the cache built in place — belongs to the
        cache and is released here. Don't hand the engine an unbuilt
        index you intend to keep querying after the cache closes.
        """
        if self._owns_index:
            closer = getattr(self._index, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "NeighborhoodCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Engine counters, merged into the host's ClusteringResult.

        When the cache routes through a :class:`ShardedIndex`, its build
        accounting (``shard_inner_builds`` / ``shard_live_shards`` /
        ``shard_rebalances``) is merged in, so every cache-routed
        clusterer surfaces the build-once evidence for free.
        """
        stats = {
            "engine_batches": self.n_blocks,
            "engine_computed": self.n_computed,
            "engine_cache_hits": self.n_cache_hits,
        }
        index_stats = getattr(self._index, "stats", None)
        if callable(index_stats):
            stats.update(index_stats())
        return stats
