"""Spatial index substrates used by the clustering algorithms.

Four indexes back the paper's methods:

* :class:`BruteForceIndex` — exact, vectorized range/KNN queries; used by
  DBSCAN, DBSCAN++ and the LAF-enhanced variants (the paper's "range
  query" primitive).
* :class:`CoverTree` — metric tree with configurable base; used by
  BLOCK-DBSCAN, whose trade-off knob is the cover-tree basis.
* :class:`KMeansTree` — FLANN-style hierarchical k-means tree for
  approximate KNN; used by KNN-BLOCK DBSCAN (knobs: branching factor and
  ratio of leaves to check).
* :class:`GridIndex` — cells of side ``eps / sqrt(d)``; used by
  rho-approximate DBSCAN.

All tree indexes operate in the Euclidean metric on unit vectors and
convert cosine thresholds with the paper's Equation 1, because cosine
distance itself violates the triangle inequality.

Every index answers both scalar queries (``range_query``, ``knn_query``)
and batched ones (``batch_range_query``, ``batch_range_count``,
``batch_knn_query``); :class:`NeighborhoodCache` is the engine the
clusterers use to route frontier expansions through the batched forms —
see ``docs/engine.md``.
"""

from repro.index.base import NeighborIndex
from repro.index.brute_force import BruteForceIndex
from repro.index.cover_tree import CoverTree
from repro.index.engine import NeighborhoodCache
from repro.index.grid import GridIndex
from repro.index.kmeans_tree import KMeansTree
from repro.index.sharded import (
    ExecutorSpec,
    ShardedIndex,
    ShardingConfig,
    register_executor,
    registered_executors,
    set_sharding,
    sharded_queries,
    sharding_config,
)

__all__ = [
    "BruteForceIndex",
    "CoverTree",
    "ExecutorSpec",
    "GridIndex",
    "KMeansTree",
    "NeighborIndex",
    "NeighborhoodCache",
    "ShardedIndex",
    "ShardingConfig",
    "register_executor",
    "registered_executors",
    "set_sharding",
    "sharded_queries",
    "sharding_config",
]
