"""Simplified cover tree over unit vectors.

This is the range-query substrate of BLOCK-DBSCAN, whose speed/quality
knob in the paper's trade-off study is the cover-tree *basis* ``b``
(default 2, varied 1.1-5).

The tree follows the simplified cover-tree formulation: a node at level
``l`` covers each of its children within ``covdist(l) = b**l``, children
sit exactly one level below their parent, and the whole subtree of a
level-``l`` node lies within ``subtree_radius(l) = b**l * b / (b - 1)``.
Separation between siblings is not enforced (it affects balance, not
correctness), which keeps insertion simple and exact.

Cosine distance violates the triangle inequality, so the tree operates in
the Euclidean metric on the unit sphere and converts thresholds with the
paper's Equation 1 (``d_euc = sqrt(2 * d_cos)``). Distances between unit
vectors never exceed 2, so the root level is fixed at build time to cover
the sphere and never needs raising.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances import (
    check_unit_norm,
    euclidean_distance_to_many,
    euclidean_from_cosine,
)
from repro.exceptions import InvalidParameterError
from repro.index.base import NeighborIndex

__all__ = ["CoverTree"]

#: Maximum Euclidean distance between two unit vectors.
_SPHERE_DIAMETER = 2.0


class CoverTree(NeighborIndex):
    """Exact metric-tree index with configurable base.

    Parameters
    ----------
    base:
        Expansion constant ``b > 1``. Smaller bases give finer levels
        (deeper trees, tighter pruning but more nodes); this is
        BLOCK-DBSCAN's trade-off parameter in the paper.

    Notes
    -----
    ``range_query`` is exact: tests verify it returns the same index set
    as :class:`~repro.index.brute_force.BruteForceIndex` on random data.
    """

    def __init__(self, base: float = 2.0) -> None:
        if not base > 1.0:
            raise InvalidParameterError(f"cover tree base must exceed 1; got {base}")
        self.base = float(base)
        self._points: np.ndarray | None = None
        # Parallel node arrays: the node id is the position in these lists.
        self._node_point: list[int] = []
        self._node_level: list[int] = []
        self._node_children: list[list[int]] = []
        self._root: int | None = None

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------

    def _covdist(self, level: int) -> float:
        return self.base**level

    def _subtree_radius(self, level: int) -> float:
        return self.base**level * self.base / (self.base - 1.0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self, X: np.ndarray) -> "CoverTree":
        self._points = check_unit_norm(X)
        self._node_point.clear()
        self._node_level.clear()
        self._node_children.clear()
        # Root level chosen so covdist(root) >= sphere diameter: every
        # later point is guaranteed to fit under the root.
        root_level = max(1, math.ceil(math.log(_SPHERE_DIAMETER, self.base))) + 1
        self._root = self._new_node(0, root_level)
        for idx in range(1, self._points.shape[0]):
            self._insert(idx)
        self._freeze()
        return self

    def _new_node(self, point_idx: int, level: int) -> int:
        self._node_point.append(point_idx)
        self._node_level.append(level)
        self._node_children.append([])
        return len(self._node_point) - 1

    def _insert(self, point_idx: int) -> None:
        """Greedy simplified-cover-tree insertion (iterative)."""
        assert self._points is not None and self._root is not None
        p = self._points[point_idx]
        node = self._root
        while True:
            children = self._node_children[node]
            if children:
                child_pts = self._points[[self._node_point[c] for c in children]]
                dists = euclidean_distance_to_many(p, child_pts)
                # Descend into the nearest child that still covers p.
                order = int(np.argmin(dists))
                best_child = children[order]
                if dists[order] <= self._covdist(self._node_level[best_child]):
                    node = best_child
                    continue
            # No child covers p: attach it here, one level below.
            child = self._new_node(point_idx, self._node_level[node] - 1)
            self._node_children[node].append(child)
            return

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _freeze(self) -> None:
        """Build the vectorized query arrays after all insertions."""
        self._np_point = np.asarray(self._node_point, dtype=np.int64)
        levels = np.asarray(self._node_level, dtype=np.int64)
        # Subtree radius per node, precomputed once: b**level * b/(b-1).
        self._np_subtree_radius = (
            self.base ** levels.astype(np.float64) * self.base / (self.base - 1.0)
        )

    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        """Exact range query; ``eps`` is a cosine-distance threshold."""
        self._require_built()
        r = euclidean_from_cosine(min(max(eps, 0.0), 2.0))
        q = np.asarray(q, dtype=np.float64)
        result: list[np.ndarray] = []
        children = self._node_children
        frontier = np.array([self._root], dtype=np.int64)
        frontier_dists = euclidean_distance_to_many(
            q, self._points[self._np_point[frontier]]
        )
        while frontier.size:
            # Strict < matches the paper's N = {Q | d(P,Q) < eps}.
            hits = frontier_dists < r
            if hits.any():
                result.append(self._np_point[frontier[hits]])
            next_ids: list[int] = []
            for node in frontier.tolist():
                next_ids.extend(children[node])
            if not next_ids:
                break
            next_frontier = np.asarray(next_ids, dtype=np.int64)
            dists = euclidean_distance_to_many(q, self._points[self._np_point[next_frontier]])
            keep = dists <= r + self._np_subtree_radius[next_frontier]
            frontier = next_frontier[keep]
            frontier_dists = dists[keep]
        if not result:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(result))

    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact KNN via best-first branch and bound.

        Returns cosine distances (converted back from the internal
        Euclidean metric).
        """
        self._require_built()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive; got {k}")
        import heapq

        q = np.asarray(q, dtype=np.float64)
        k = min(k, self.n_points)
        root_dist = float(
            euclidean_distance_to_many(q, self._points[[self._node_point[self._root]]])[0]
        )
        # Min-heap of (lower bound on any descendant distance, node, exact dist).
        candidates = [(max(0.0, root_dist - self._np_subtree_radius[self._root]), self._root, root_dist)]
        best: list[tuple[float, int]] = []  # max-heap via negated distances

        def worst() -> float:
            return -best[0][0] if len(best) == k else math.inf

        while candidates:
            bound, node, dist = heapq.heappop(candidates)
            if bound > worst():
                break
            entry = (-dist, self._node_point[node])
            if len(best) < k:
                heapq.heappush(best, entry)
            elif dist < -best[0][0]:
                heapq.heapreplace(best, entry)
            children = self._node_children[node]
            if not children:
                continue
            child_ids = np.asarray(children, dtype=np.int64)
            pts = self._points[self._np_point[child_ids]]
            dists = euclidean_distance_to_many(q, pts)
            bounds = np.maximum(0.0, dists - self._np_subtree_radius[child_ids])
            limit = worst()
            for child, d, child_bound in zip(children, dists, bounds):
                if child_bound <= limit:
                    heapq.heappush(candidates, (float(child_bound), child, float(d)))
        ordered = sorted((-negd, idx) for negd, idx in best)
        idx = np.array([i for _, i in ordered], dtype=np.int64)
        d_euc = np.array([d for d, _ in ordered])
        return idx, (d_euc**2) / 2.0

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total number of tree nodes (one per indexed point)."""
        return len(self._node_point)

    def validate_invariants(self) -> None:
        """Check the covering invariant on every edge; raise on violation.

        Exposed for the test suite; O(n) distance evaluations.
        """
        self._require_built()
        for parent, children in enumerate(self._node_children):
            if not children:
                continue
            p = self._points[self._node_point[parent]]
            pts = self._points[[self._node_point[c] for c in children]]
            dists = euclidean_distance_to_many(p, pts)
            cov = self._covdist(self._node_level[parent])
            if np.any(dists > cov + 1e-9):
                raise AssertionError(
                    f"covering invariant violated at node {parent}: "
                    f"child distance {dists.max():.6f} > covdist {cov:.6f}"
                )
            for child in children:
                if self._node_level[child] != self._node_level[parent] - 1:
                    raise AssertionError("child level must be parent level - 1")
