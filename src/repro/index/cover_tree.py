"""Simplified cover tree over unit vectors.

This is the range-query substrate of BLOCK-DBSCAN, whose speed/quality
knob in the paper's trade-off study is the cover-tree *basis* ``b``
(default 2, varied 1.1-5).

The tree follows the simplified cover-tree formulation: a node at level
``l`` covers each of its children within ``covdist(l) = b**l``, children
sit exactly one level below their parent, and the whole subtree of a
level-``l`` node lies within ``subtree_radius(l) = b**l * b / (b - 1)``.
Separation between siblings is not enforced (it affects balance, not
correctness), which keeps insertion simple and exact.

Cosine distance violates the triangle inequality, so the tree operates in
the Euclidean metric on the unit sphere and converts thresholds with the
paper's Equation 1 (``d_euc = sqrt(2 * d_cos)``). Distances between unit
vectors never exceed 2, so the root level is fixed at build time to cover
the sphere and never needs raising.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances import (
    check_unit_norm,
    euclidean_distance_to_many,
    euclidean_from_cosine,
    iter_distance_blocks,
    squared_euclidean_distance_to_many,
)
from repro.exceptions import InvalidParameterError
from repro.index.base import (
    NeighborIndex,
    expand_csr,
    group_hit_pairs,
    grouped_pair_distances,
)

__all__ = ["CoverTree"]

#: Maximum Euclidean distance between two unit vectors.
_SPHERE_DIAMETER = 2.0


class CoverTree(NeighborIndex):
    """Exact metric-tree index with configurable base.

    Parameters
    ----------
    base:
        Expansion constant ``b > 1``. Smaller bases give finer levels
        (deeper trees, tighter pruning but more nodes); this is
        BLOCK-DBSCAN's trade-off parameter in the paper.

    Notes
    -----
    ``range_query`` is exact: tests verify it returns the same index set
    as :class:`~repro.index.brute_force.BruteForceIndex` on random data.
    """

    def __init__(self, base: float = 2.0) -> None:
        if not base > 1.0:
            raise InvalidParameterError(f"cover tree base must exceed 1; got {base}")
        self.base = float(base)
        self._points: np.ndarray | None = None
        # Parallel node arrays: the node id is the position in these lists.
        self._node_point: list[int] = []
        self._node_level: list[int] = []
        self._node_children: list[list[int]] = []
        self._root: int | None = None

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------

    def _covdist(self, level: int) -> float:
        return self.base**level

    def _subtree_radius(self, level: int) -> float:
        return self.base**level * self.base / (self.base - 1.0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self, X: np.ndarray) -> "CoverTree":
        self._points = check_unit_norm(X)
        self._node_point.clear()
        self._node_level.clear()
        self._node_children.clear()
        # Root level chosen so covdist(root) >= sphere diameter: every
        # later point is guaranteed to fit under the root.
        root_level = max(1, math.ceil(math.log(_SPHERE_DIAMETER, self.base))) + 1
        self._root = self._new_node(0, root_level)
        for idx in range(1, self._points.shape[0]):
            self._insert(idx)
        self._freeze()
        return self

    def _new_node(self, point_idx: int, level: int) -> int:
        self._node_point.append(point_idx)
        self._node_level.append(level)
        self._node_children.append([])
        return len(self._node_point) - 1

    def _insert(self, point_idx: int) -> None:
        """Greedy simplified-cover-tree insertion (iterative)."""
        assert self._points is not None and self._root is not None
        p = self._points[point_idx]
        node = self._root
        while True:
            children = self._node_children[node]
            if children:
                child_pts = self._points[[self._node_point[c] for c in children]]
                dists = euclidean_distance_to_many(p, child_pts)
                # Descend into the nearest child that still covers p.
                order = int(np.argmin(dists))
                best_child = children[order]
                if dists[order] <= self._covdist(self._node_level[best_child]):
                    node = best_child
                    continue
            # No child covers p: attach it here, one level below.
            child = self._new_node(point_idx, self._node_level[node] - 1)
            self._node_children[node].append(child)
            return

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _freeze(self) -> None:
        """Build the vectorized query arrays after all insertions."""
        self._np_point = np.asarray(self._node_point, dtype=np.int64)
        levels = np.asarray(self._node_level, dtype=np.int64)
        # Subtree radius per node, precomputed once: b**level * b/(b-1).
        self._np_subtree_radius = (
            self.base ** levels.astype(np.float64) * self.base / (self.base - 1.0)
        )
        # Children in CSR form for the batched level-synchronous traversal.
        counts = np.fromiter(
            (len(c) for c in self._node_children),
            dtype=np.int64,
            count=len(self._node_children),
        )
        self._np_child_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        self._np_child_flat = np.array(
            [c for children in self._node_children for c in children], dtype=np.int64
        )
        # Squared norms of each node's point, for the pairwise distance
        # path. Norms are computed per point and gathered per node so a
        # memory-mapped point matrix is streamed once instead of being
        # copied through an (n_nodes, dim) gather.
        point_sq = np.einsum("ij,ij->i", self._points, self._points)
        self._np_point_sq = point_sq[self._np_point]

    def range_query(self, q: np.ndarray, eps: float) -> np.ndarray:
        """Exact range query; ``eps`` is a cosine-distance threshold.

        Works on squared Euclidean distances: Equation 1 squares to
        ``r^2 = 2 * eps`` exactly, so the hit comparison never takes a
        sqrt round-trip (and agrees bit-for-bit with the batched path
        on exactly-representable distances).
        """
        self._require_built()
        eps = min(max(eps, 0.0), 2.0)
        r_sq = 2.0 * eps
        r = euclidean_from_cosine(eps)
        q = np.asarray(q, dtype=np.float64)
        result: list[np.ndarray] = []
        children = self._node_children
        frontier = np.array([self._root], dtype=np.int64)
        frontier_sq = squared_euclidean_distance_to_many(
            q, self._points[self._np_point[frontier]]
        )
        while frontier.size:
            # Strict < matches the paper's N = {Q | d(P,Q) < eps}.
            hits = frontier_sq < r_sq
            if hits.any():
                result.append(self._np_point[frontier[hits]])
            next_ids: list[int] = []
            for node in frontier.tolist():
                next_ids.extend(children[node])
            if not next_ids:
                break
            next_frontier = np.asarray(next_ids, dtype=np.int64)
            sq = squared_euclidean_distance_to_many(
                q, self._points[self._np_point[next_frontier]]
            )
            bound = r + self._np_subtree_radius[next_frontier]
            keep = sq <= bound * bound
            frontier = next_frontier[keep]
            frontier_sq = sq[keep]
        if not result:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(result))

    # ------------------------------------------------------------------
    # Batched queries (vectorized level-synchronous traversal)
    # ------------------------------------------------------------------

    def _batch_range_pairs(
        self, Q: np.ndarray, eps: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (query row, hit point) pairs of a batched range query.

        Runs every query's traversal simultaneously, one tree level per
        iteration. The live frontier is kept column-major: an array of
        distinct level nodes, each with the CSR list of queries whose
        ball may intersect its subtree (distinctness is free — a node
        has one parent, so no sorting or deduplication is ever needed).
        Each step expands all children with CSR gathers, evaluates every
        (query, node) pair with one blocked distance kernel, emits hits
        (``d < r``) and prunes with the same triangle-inequality bound
        as the scalar path (``d <= r + subtree_radius``), so the
        surviving pairs are exactly the scalar frontiers stacked.
        """
        eps = min(max(eps, 0.0), 2.0)
        r_sq = 2.0 * eps  # Equation 1 squared, exact — matches the scalar path
        r = euclidean_from_cosine(eps)
        n_queries = Q.shape[0]
        empty = np.empty(0, dtype=np.int64)
        if n_queries == 0 or self._root is None:
            return empty, empty
        Q_sq = np.einsum("ij,ij->i", Q, Q)
        hit_qs: list[np.ndarray] = []
        hit_ps: list[np.ndarray] = []

        # All comparisons run on squared distances against squared
        # thresholds (monotone, so the same pairs pass), skipping a sqrt
        # over every frontier pair.

        # Phase 1 — unprunable levels. While r + subtree_radius(level)
        # covers the whole sphere (diameter 2), the pruning bound can
        # never fire, so every query keeps every node: no per-pair
        # bookkeeping exists and each level is just a blocked dense
        # distance matrix from which hits (d < r) are read off.
        nodes = np.array([self._root], dtype=np.int64)
        while nodes.size:
            if r + self._np_subtree_radius[nodes[0]] < _SPHERE_DIAMETER:
                break
            pts = self._points[self._np_point[nodes]]
            for start, _, block in iter_distance_blocks(pts, Q, metric="sqeuclidean"):
                rows, cols = np.nonzero(block < r_sq)
                if rows.size:
                    hit_qs.append(cols)
                    hit_ps.append(self._np_point[nodes[rows + start]])
            _, nodes = expand_csr(self._np_child_offsets, self._np_child_flat, nodes)
        if nodes.size == 0:
            return self._concat_hits(hit_qs, hit_ps)

        # Phase 1 -> 2 handoff: the first prunable level still sees every
        # query, so its distance matrix is dense too; hits and the first
        # per-node CSR query lists (d <= r + subtree_radius) come from
        # the same blocks. np.nonzero walks the mask row-major, which is
        # exactly the column-major (node-grouped) CSR layout.
        bound_sq = (r + self._np_subtree_radius[nodes]) ** 2
        counts = np.empty(nodes.size, dtype=np.int64)
        q_lists: list[np.ndarray] = []
        pts = self._points[self._np_point[nodes]]
        for start, stop, block in iter_distance_blocks(pts, Q, metric="sqeuclidean"):
            rows, cols = np.nonzero(block < r_sq)
            if rows.size:
                hit_qs.append(cols)
                hit_ps.append(self._np_point[nodes[rows + start]])
            mask = block <= bound_sq[start:stop, None]
            counts[start:stop] = np.count_nonzero(mask, axis=1)
            q_lists.append(np.nonzero(mask)[1])
        q_flat = np.concatenate(q_lists) if q_lists else empty
        live = counts > 0
        nodes = nodes[live]
        q_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts[live])]
        )

        # Phase 2 — pruned levels. The frontier is column-major CSR: an
        # array of distinct level nodes, each with the list of queries
        # whose ball may still intersect its subtree (distinctness is
        # free — a node has one parent — so no sorting or deduplication
        # is ever needed). Children inherit their parent's query list,
        # all pair distances of a level come from one blocked kernel,
        # and the scalar path's triangle-inequality bound drops pairs.
        while q_flat.size and nodes.size:
            child_counts, children = expand_csr(
                self._np_child_offsets, self._np_child_flat, nodes
            )
            if children.size == 0:
                break
            parent_of_child = np.repeat(
                np.arange(nodes.size, dtype=np.int64), child_counts
            )
            q_counts, child_q_flat = expand_csr(q_offsets, q_flat, parent_of_child)
            child_q_offsets = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(q_counts)]
            )
            child_d = grouped_pair_distances(
                Q,
                child_q_flat,
                child_q_offsets,
                self._points[self._np_point[children]],
                Q_sq=Q_sq,
                C_sq=self._np_point_sq[children],
                squared=True,
            )
            hits = child_d < r_sq
            col_of_entry = np.repeat(np.arange(children.size, dtype=np.int64), q_counts)
            if hits.any():
                hit_qs.append(child_q_flat[hits])
                hit_ps.append(self._np_point[children[col_of_entry[hits]]])
            bound = r + self._np_subtree_radius[children[col_of_entry]]
            keep = child_d <= bound * bound
            kept_counts = np.bincount(col_of_entry[keep], minlength=children.size)
            live = kept_counts > 0
            nodes = children[live]
            q_flat = child_q_flat[keep]
            q_offsets = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(kept_counts[live])]
            )
        return self._concat_hits(hit_qs, hit_ps)

    @staticmethod
    def _concat_hits(
        hit_qs: list[np.ndarray], hit_ps: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        if not hit_qs:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(hit_qs), np.concatenate(hit_ps)

    def batch_range_query(self, Q: np.ndarray, eps: float) -> list[np.ndarray]:
        """Exact batched range query; row ``i`` equals ``range_query(Q[i], eps)``.

        Vectorized level-synchronous traversal instead of the base
        class's per-point loop — same frontier, same pruning bound, all
        queries advanced per level with NumPy kernels.
        """
        self._require_built()
        Q = self._as_query_matrix(Q)
        hit_q, hit_p = self._batch_range_pairs(Q, eps)
        return group_hit_pairs(hit_q, hit_p, self.n_points, Q.shape[0])

    def batch_range_count(self, Q: np.ndarray, eps: float) -> np.ndarray:
        """Exact batched counts, from the same traversal as the queries."""
        self._require_built()
        Q = self._as_query_matrix(Q)
        hit_q, _ = self._batch_range_pairs(Q, eps)
        return np.bincount(hit_q, minlength=Q.shape[0]).astype(np.int64)

    def knn_query(self, q: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact KNN via best-first branch and bound.

        Returns cosine distances (converted back from the internal
        Euclidean metric).
        """
        self._require_built()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive; got {k}")
        import heapq

        q = np.asarray(q, dtype=np.float64)
        k = min(k, self.n_points)
        root_pt = self._points[[self._node_point[self._root]]]
        root_dist = float(euclidean_distance_to_many(q, root_pt)[0])
        # Min-heap of (lower bound on any descendant distance, node, exact dist).
        root_bound = max(0.0, root_dist - self._np_subtree_radius[self._root])
        candidates = [(root_bound, self._root, root_dist)]
        best: list[tuple[float, int]] = []  # max-heap via negated distances

        def worst() -> float:
            return -best[0][0] if len(best) == k else math.inf

        while candidates:
            bound, node, dist = heapq.heappop(candidates)
            if bound > worst():
                break
            entry = (-dist, self._node_point[node])
            if len(best) < k:
                heapq.heappush(best, entry)
            elif dist < -best[0][0]:
                heapq.heapreplace(best, entry)
            children = self._node_children[node]
            if not children:
                continue
            child_ids = np.asarray(children, dtype=np.int64)
            pts = self._points[self._np_point[child_ids]]
            dists = euclidean_distance_to_many(q, pts)
            bounds = np.maximum(0.0, dists - self._np_subtree_radius[child_ids])
            limit = worst()
            for child, d, child_bound in zip(children, dists, bounds):
                if child_bound <= limit:
                    heapq.heappush(candidates, (float(child_bound), child, float(d)))
        ordered = sorted((-negd, idx) for negd, idx in best)
        idx = np.array([i for _, i in ordered], dtype=np.int64)
        d_euc = np.array([d for d, _ in ordered])
        return idx, (d_euc**2) / 2.0

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        self._require_built()
        return {
            "points": self._points,
            "node_point": self._np_point,
            "node_level": np.asarray(self._node_level, dtype=np.int64),
            "child_offsets": self._np_child_offsets,
            "child_flat": self._np_child_flat,
        }

    def from_arrays(self, arrays: dict) -> "CoverTree":
        self._points = np.asarray(arrays["points"], dtype=np.float64)
        node_point = np.asarray(arrays["node_point"], dtype=np.int64)
        node_level = np.asarray(arrays["node_level"], dtype=np.int64)
        offsets = np.asarray(arrays["child_offsets"], dtype=np.int64)
        flat = np.asarray(arrays["child_flat"], dtype=np.int64)
        # The scalar query/insert paths walk Python lists; restore them,
        # then _freeze() rebuilds the vectorized arrays from the same
        # state — so batched answers match the pre-save ones exactly.
        self._node_point = node_point.tolist()
        self._node_level = node_level.tolist()
        self._node_children = [
            flat[offsets[i] : offsets[i + 1]].tolist() for i in range(node_point.size)
        ]
        self._root = 0 if node_point.size else None
        self._freeze()
        return self

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total number of tree nodes (one per indexed point)."""
        return len(self._node_point)

    def validate_invariants(self) -> None:
        """Check the covering invariant on every edge; raise on violation.

        Exposed for the test suite; O(n) distance evaluations.
        """
        self._require_built()
        for parent, children in enumerate(self._node_children):
            if not children:
                continue
            p = self._points[self._node_point[parent]]
            pts = self._points[[self._node_point[c] for c in children]]
            dists = euclidean_distance_to_many(p, pts)
            cov = self._covdist(self._node_level[parent])
            if np.any(dists > cov + 1e-9):
                raise AssertionError(
                    f"covering invariant violated at node {parent}: "
                    f"child distance {dists.max():.6f} > covdist {cov:.6f}"
                )
            for child in children:
                if self._node_level[child] != self._node_level[parent] - 1:
                    raise AssertionError("child level must be parent level - 1")
