"""Grid index with cells of side ``eps / sqrt(d)`` for rho-approximate DBSCAN.

Gan & Tao's rho-approximate DBSCAN partitions space into cells whose
diagonal equals ``eps``, so all points sharing a cell are mutually within
``eps``. In low dimensions neighbor cells are enumerated directly; in
high dimensions (the regime this paper studies) the number of adjacent
cells ``3^d`` is astronomically large while almost every point occupies
its own cell, so this implementation finds candidate cells by scanning
the non-empty cell centers with vectorized distance filters — the honest
high-dimensional adaptation, and precisely why the paper measures
rho-approximate DBSCAN to be *slower* than plain DBSCAN at d >= 200
(Table 4).

Approximate counting contract (the "rho guarantee"): for every query,

    |N_eps(q)|  <=  approx_count(q)  <=  |N_eps(1+rho)(q)|

implemented with three cell classes per query: cells entirely inside the
``eps(1+rho)`` ball are counted wholesale, cells entirely outside the
``eps`` ball are skipped, and straddling cells fall back to exact
point-level checks against ``eps``.

All geometry is in the Euclidean metric on the unit sphere; thresholds
convert from cosine via Equation 1.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances import (
    check_unit_norm,
    euclidean_distance_to_many,
    euclidean_from_cosine,
    iter_distance_blocks,
)
from repro.exceptions import InvalidParameterError, NotFittedError

__all__ = ["GridIndex"]


class GridIndex:
    """Hash grid over unit vectors, specialized for rho-approximate DBSCAN.

    Parameters
    ----------
    eps:
        Cosine-distance radius the grid is sized for (cell diagonal equals
        the Euclidean equivalent of ``eps``).
    rho:
        Approximation factor (> 0) of rho-approximate DBSCAN.
    """

    def __init__(self, eps: float, rho: float = 1.0) -> None:
        if not 0.0 < eps <= 2.0:
            raise InvalidParameterError(f"eps must lie in (0, 2]; got {eps}")
        if rho <= 0.0:
            raise InvalidParameterError(f"rho must be positive; got {rho}")
        self.eps = float(eps)
        self.rho = float(rho)
        self._points: np.ndarray | None = None
        self._r_euc = euclidean_from_cosine(eps)
        self._side: float = 0.0
        self._cell_of_point: np.ndarray | None = None  # point -> cell id
        self._cell_points: list[np.ndarray] = []  # cell id -> point indices
        self._cell_centers: np.ndarray | None = None  # geometric center of members

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self, X: np.ndarray) -> "GridIndex":
        X = check_unit_norm(X)
        self._points = X
        dim = X.shape[1]
        self._side = self._r_euc / math.sqrt(dim)
        keys = np.floor(X / self._side).astype(np.int64)
        cell_ids: dict[tuple, int] = {}
        members: list[list[int]] = []
        cell_of_point = np.empty(X.shape[0], dtype=np.int64)
        for i, key_row in enumerate(keys):
            key = tuple(key_row)
            cell = cell_ids.get(key)
            if cell is None:
                cell = len(members)
                cell_ids[key] = cell
                members.append([])
            members[cell].append(i)
            cell_of_point[i] = cell
        self._cell_of_point = cell_of_point
        self._cell_points = [np.array(m, dtype=np.int64) for m in members]
        # True bounding center/radius of the members, tighter than the
        # geometric cell center in sparse high-d grids.
        self._cell_centers = np.stack([X[m].mean(axis=0) for m in self._cell_points])
        self._cell_radii = np.array(
            [
                float(euclidean_distance_to_many(c, X[m]).max())
                for c, m in zip(self._cell_centers, self._cell_points)
            ]
        )
        return self

    def _require_built(self) -> None:
        if self._points is None:
            raise NotFittedError("GridIndex has not been built yet")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return 0 if self._points is None else int(self._points.shape[0])

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has run (so queries and ``points`` work)."""
        return self._points is not None

    @property
    def points(self) -> np.ndarray:
        """The indexed point matrix, shape ``(n_points, dim)``.

        Same public accessor contract as
        :class:`~repro.index.base.NeighborIndex.points` (the grid is not
        a :class:`NeighborIndex` subclass, but sharding treats it as a
        registered backend and needs the same seam). Raises
        :class:`NotFittedError` before :meth:`build`.
        """
        if self._points is None:
            raise NotFittedError("GridIndex has not been built yet")
        return self._points

    @property
    def n_cells(self) -> int:
        """Number of non-empty cells."""
        self._require_built()
        return len(self._cell_points)

    @property
    def cell_points(self) -> list[np.ndarray]:
        """Point indices per cell (cell id is the list position)."""
        self._require_built()
        return self._cell_points

    def cell_of(self, point_idx: int) -> int:
        """Cell id of an indexed point."""
        self._require_built()
        return int(self._cell_of_point[point_idx])

    def cell_sizes(self) -> np.ndarray:
        """Number of points per cell."""
        self._require_built()
        return np.array([m.size for m in self._cell_points], dtype=np.int64)

    # ------------------------------------------------------------------
    # Approximate counting
    # ------------------------------------------------------------------

    def _approx_count_row(self, q: np.ndarray, center_dists: np.ndarray) -> int:
        """Rho-sandwich count for one query given its center distances."""
        r = self._r_euc
        r_outer = r * (1.0 + self.rho)
        full = center_dists + self._cell_radii <= r_outer
        empty = center_dists - self._cell_radii >= r
        straddle = ~(full | empty)
        count = int(sum(self._cell_points[c].size for c in np.flatnonzero(full)))
        eps_cos = self.eps
        for c in np.flatnonzero(straddle):
            pts = self._points[self._cell_points[c]]
            dists = np.maximum(0.0, 1.0 - pts @ q)
            count += int(np.count_nonzero(dists < eps_cos))
        return count

    def approx_range_count(self, q: np.ndarray) -> int:
        """Approximate |N_eps(q)| obeying the rho sandwich guarantee."""
        self._require_built()
        q = np.asarray(q, dtype=np.float64)
        center_dists = euclidean_distance_to_many(q, self._cell_centers)
        return self._approx_count_row(q, center_dists)

    def batch_approx_range_count(self, Q: np.ndarray) -> np.ndarray:
        """Approximate counts for every row of ``Q``.

        Row ``i`` equals ``approx_range_count(Q[i])``; the cell-center
        distance matrix — the dominant cost when nearly every point owns
        its own cell, the high-d regime — is computed blockwise instead
        of one matrix-vector product per query.
        """
        self._require_built()
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        counts = np.empty(Q.shape[0], dtype=np.int64)
        for start, stop, block in iter_distance_blocks(
            Q, self._cell_centers, metric="euclidean"
        ):
            for offset, center_dists in enumerate(block):
                i = start + offset
                counts[i] = self._approx_count_row(Q[i], center_dists)
        return counts

    def _exact_query_row(
        self, q: np.ndarray, center_dists: np.ndarray, eps_cos: float, r: float
    ) -> np.ndarray:
        """Exact range query for one row given its center distances."""
        candidates = np.flatnonzero(center_dists - self._cell_radii < r)
        hits: list[np.ndarray] = []
        for c in candidates:
            member_idx = self._cell_points[c]
            dists = np.maximum(0.0, 1.0 - self._points[member_idx] @ q)
            hits.append(member_idx[dists < eps_cos])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def exact_range_query(self, q: np.ndarray, eps: float | None = None) -> np.ndarray:
        """Exact range query via cell-level pruning (used for borders)."""
        self._require_built()
        q = np.asarray(q, dtype=np.float64)
        eps_cos = self.eps if eps is None else eps
        r = euclidean_from_cosine(eps_cos)
        center_dists = euclidean_distance_to_many(q, self._cell_centers)
        return self._exact_query_row(q, center_dists, eps_cos, r)

    def range_query(self, q: np.ndarray, eps: float | None = None) -> np.ndarray:
        """Alias of :meth:`exact_range_query` (NeighborIndex-shaped
        surface, so the grid slots behind the shared engine seam)."""
        return self.exact_range_query(q, eps)

    def range_count(self, q: np.ndarray, eps: float | None = None) -> int:
        """Exact neighbor count (NeighborIndex-shaped surface)."""
        return int(self.exact_range_query(q, eps).size)

    def batch_range_count(self, Q: np.ndarray, eps: float | None = None) -> np.ndarray:
        """Exact neighbor counts for every row of ``Q``."""
        return np.array(
            [row.size for row in self.batch_range_query(Q, eps)], dtype=np.int64
        )

    def batch_range_query(
        self, Q: np.ndarray, eps: float | None = None
    ) -> list[np.ndarray]:
        """Exact neighbor arrays for every row of ``Q`` (blockwise pruning)."""
        self._require_built()
        Q = np.atleast_2d(np.asarray(Q, dtype=np.float64))
        eps_cos = self.eps if eps is None else eps
        r = euclidean_from_cosine(eps_cos)
        results: list[np.ndarray] = []
        for start, stop, block in iter_distance_blocks(
            Q, self._cell_centers, metric="euclidean"
        ):
            for offset, center_dists in enumerate(block):
                results.append(
                    self._exact_query_row(Q[start + offset], center_dists, eps_cos, r)
                )
        return results

    # ------------------------------------------------------------------
    # Persistence (same contract as NeighborIndex.to_arrays/from_arrays;
    # the grid is not a subclass but persists as a registered backend)
    # ------------------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        self._require_built()
        sizes = np.array([m.size for m in self._cell_points], dtype=np.int64)
        indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(sizes)])
        if self._cell_points:
            index_flat = np.concatenate(self._cell_points)
        else:
            index_flat = np.empty(0, dtype=np.int64)
        return {
            "points": self._points,
            "cell_of_point": self._cell_of_point,
            "cell_indptr": indptr,
            "cell_index_flat": index_flat,
            "cell_centers": self._cell_centers,
            "cell_radii": self._cell_radii,
        }

    def from_arrays(self, arrays: dict) -> "GridIndex":
        points = np.asarray(arrays["points"], dtype=np.float64)
        indptr = np.asarray(arrays["cell_indptr"], dtype=np.int64)
        flat = np.asarray(arrays["cell_index_flat"], dtype=np.int64)
        self._points = points
        self._side = self._r_euc / math.sqrt(points.shape[1])
        self._cell_of_point = np.asarray(arrays["cell_of_point"], dtype=np.int64)
        self._cell_points = [
            flat[indptr[i] : indptr[i + 1]] for i in range(indptr.size - 1)
        ]
        self._cell_centers = np.asarray(arrays["cell_centers"], dtype=np.float64)
        self._cell_radii = np.asarray(arrays["cell_radii"], dtype=np.float64)
        return self

    def save(self, path) -> "GridIndex":
        """Persist the built grid; see :func:`repro.persistence.save_index`."""
        from repro.persistence import save_index

        save_index(self, path)
        return self

    @classmethod
    def load(cls, path, *, mmap: bool = True, verify: bool = True) -> "GridIndex":
        """Load a grid saved with :meth:`save`, memory-mapped by default."""
        from repro.persistence import _check_loaded_type, load_index

        return _check_loaded_type(load_index(path, mmap=mmap, verify=verify), cls, path)

    def cells_within(self, cell: int, max_dist_euc: float) -> np.ndarray:
        """Cells whose member balls could contain a point within
        ``max_dist_euc`` (Euclidean) of some point in ``cell``.

        Uses center distance minus both radii as the lower bound; the
        caller refines with point-level checks.
        """
        self._require_built()
        center = self._cell_centers[cell]
        center_dists = euclidean_distance_to_many(center, self._cell_centers)
        lower_bounds = center_dists - self._cell_radii - self._cell_radii[cell]
        return np.flatnonzero(lower_bounds <= max_dist_euc)
